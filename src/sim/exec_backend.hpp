#pragma once

/// \file exec_backend.hpp
/// Simulated execution of one tuning section. An Invocation binds a
/// concrete workload (context-variable values plus memory contents); the
/// backend prices it by interpreting the IR under the machine cost model,
/// scaling by the flag-effect multiplier of the code version, a cache
/// warmth factor, and measurement noise. It also implements the RBR
/// re-execution protocol (basic and improved, Section 2.4) with faithful
/// overhead accounting, which the tuning-time experiments (Figure 7 c,d)
/// read back.

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "fault/injector.hpp"
#include "ir/bytecode.hpp"
#include "ir/interpreter.hpp"
#include "search/opt_config.hpp"
#include "sim/cache_model.hpp"
#include "sim/flag_effects.hpp"
#include "sim/machine.hpp"
#include "sim/perturbation.hpp"

namespace peak::sim {

/// One dynamic invocation of the tuning section.
struct Invocation {
  /// Unique id within the trace (> 0). The interpreter result of an
  /// invocation is deterministic given its binder, so repeated passes over
  /// a trace (tuning cycles, whole-program trials) reuse the base run even
  /// for data-dependent sections. 0 = never reuse.
  std::uint64_t id = 0;
  /// Context-variable values (the CBR key; also the base-run cache key for
  /// sections whose execution path is fully determined by the context).
  std::vector<double> context;
  /// Populate the memory image (scalars, arrays, pointer bindings).
  std::function<void(ir::Memory&)> bind;
  /// True when `context` fully determines the execution path, so the
  /// interpreter result can be reused across invocations with equal
  /// context. Irregular sections (data-dependent control flow) set false.
  bool context_determines_time = true;
  /// Data-dependent execution-speed factor of this invocation (cache and
  /// branch behaviour of this particular input). Unlike measurement noise
  /// it is a property of the *workload*, so two executions under the same
  /// restored context share it — which is precisely why RBR's
  /// within-invocation ratio cancels it while MBR's regression sees it as
  /// unexplained residual (the "highly irregular behavior" that sends the
  /// integer codes to RBR in Table 1).
  double irregularity = 1.0;
};

struct InvocationResult {
  double time = 0.0;  ///< simulated cycles, noise included
  /// Instrumentation counters. Shared with the backend's base-run cache
  /// (counters are a function of the invocation's data, not of the flag
  /// configuration), so repeated invocations under different configs do
  /// not copy the vector. Never null after invoke(). Do not mutate.
  std::shared_ptr<const std::vector<std::uint64_t>> counters;
  /// Digest of the post-run Modified_Input memory effects. Equals
  /// reference_digest(inv) for a correct code version; an injected
  /// miscompile corrupts it, which is how the guarded executor's
  /// validation step detects wrong-answer configurations.
  std::uint64_t output_digest = 0;
};

/// Which engine executes base runs. Both produce bit-identical results
/// (enforced by tests/test_ir_bytecode.cpp); the tree-walker is kept as
/// the reference oracle and for debugging.
enum class ExecEngine {
  kBytecode,    ///< compiled dispatch loop (default)
  kTreeWalker,  ///< recursive ir::Interpreter
};

struct RbrOptions {
  /// Improved method (Section 2.4.2): precondition run, order swapping,
  /// and Modified_Input-only save/restore. Basic method otherwise.
  bool improved = true;
  /// Batch several measurement pairs into one invocation's checkpoint
  /// cycle — the paper's "combination of a number of experimental runs
  /// into a batch" overhead reduction. 1 = no batching.
  std::size_t batch_pairs = 1;
};

struct RbrPairResult {
  double time_best = 0.0;  ///< timed run of the current best version
  double time_exp = 0.0;   ///< timed run of the experimental version
  /// Tuning overhead beyond a production execution of the best version:
  /// save/restore traffic, the precondition run, and the extra version.
  double overhead = 0.0;
  bool swapped = false;  ///< experimental version ran first
};

/// Thread-compatibility: a backend is confined to one thread at a time
/// (no internal locking). Concurrent evaluation uses one clone per worker
/// slot — clones share only `fn`/`effects` (const) — and serializes all
/// cross-clone merging through cost_deltas()/absorb_cost_deltas().
class SimExecutionBackend {
public:
  SimExecutionBackend(const ir::Function& fn, TsTraits traits,
                      const MachineModel& machine,
                      const FlagEffectModel& effects, std::uint64_t seed);

  /// Non-copyable: the VM holds a pointer into the member program.
  SimExecutionBackend(const SimExecutionBackend&) = delete;
  SimExecutionBackend& operator=(const SimExecutionBackend&) = delete;

  /// Production-like execution of one invocation under `cfg`.
  InvocationResult invoke(const search::FlagConfig& cfg,
                          const Invocation& inv);

  /// RBR: both versions executed within this single invocation, same
  /// context (paper Figures 3 and 4).
  RbrPairResult invoke_rbr_pair(const search::FlagConfig& best,
                                const search::FlagConfig& exp,
                                const Invocation& inv,
                                const RbrOptions& opts);

  /// Batched RBR: `opts.batch_pairs` measurement pairs under one
  /// invocation, amortizing the save and precondition work. Returns one
  /// result per pair; the shared overhead is attributed to the first.
  std::vector<RbrPairResult> invoke_rbr_batch(
      const search::FlagConfig& best, const search::FlagConfig& exp,
      const Invocation& inv, const RbrOptions& opts);

  /// Configure checkpoint sizes (from analysis::InputSetInfo) used to
  /// price RBR save/restore traffic.
  void set_checkpoint_bytes(std::size_t full_input_bytes,
                            std::size_t modified_input_bytes) {
    full_input_bytes_ = full_input_bytes;
    modified_input_bytes_ = modified_input_bytes;
  }

  /// Noise-free expected execution time under `cfg` for one invocation —
  /// the ground truth the consistency experiments compare ratings against.
  double expected_time(const search::FlagConfig& cfg, const Invocation& inv);

  /// Layer a fault injector onto this backend (nullptr = fault-free).
  /// With an injector installed, invoke() and the RBR entry points may
  /// throw fault::FaultError subclasses or report corrupted results, per
  /// the injector's verdict for (config, invocation, attempt). The
  /// fault-free path is bit-identical to a backend without an injector:
  /// fault checks consume no randomness.
  void set_fault_injector(const fault::FaultInjector* injector) {
    injector_ = injector;
  }
  [[nodiscard]] const fault::FaultInjector* fault_injector() const {
    return injector_;
  }

  /// Retry attempt number the next invocation runs under (the guarded
  /// executor bumps this so transient faults can clear on retry).
  void set_fault_attempt(std::size_t attempt) { fault_attempt_ = attempt; }

  /// Process-level attempt number (the worker supervisor bumps this when
  /// it respawns a crashed worker and requeues its task). A hard-crash
  /// verdict is re-queried with this attempt before aborting, so a
  /// transient hard crash fires only in the first worker process and the
  /// respawned retry survives — while a deterministic one aborts every
  /// attempt until the supervisor gives up and quarantines the config.
  void set_process_attempt(std::size_t attempt) {
    process_attempt_ = attempt;
  }

  /// Arm the watchdog deadline: an injected hang charges this many cycles
  /// and surfaces as fault::DeadlineExceeded instead of never returning.
  /// 0 disarms the watchdog (hangs then throw fault::HangFault).
  void set_deadline_cycles(double cycles) { deadline_cycles_ = cycles; }
  [[nodiscard]] double deadline_cycles() const { return deadline_cycles_; }

  /// Charge tuning overhead that did not come from a simulated run;
  /// attributed to the faulted phase (partial crashed runs and similar
  /// write-offs the caller prices itself).
  void charge_penalty(double cycles) {
    accumulated_ += cycles;
    breakdown_.faulted += cycles;
  }

  /// Like charge_penalty(), but attributed to the retry phase — backoff
  /// waits before a re-measurement, which the cost ledger reports
  /// separately from cycles lost to the faults themselves.
  void charge_retry(double cycles) {
    accumulated_ += cycles;
    breakdown_.retry += cycles;
  }

  /// Digest of the reference (correct) post-run memory effects for this
  /// invocation — what validation compares an experimental version's
  /// InvocationResult::output_digest against.
  std::uint64_t reference_digest(const Invocation& inv) {
    return base_run(inv).digest;
  }

  /// Reset the measurement stream to a pure function of `seed`: reseed
  /// the noise RNG, drop cache warmth to cold, and reset the RBR swap
  /// order. Batched evaluation calls this at the start of every candidate
  /// rating, which makes the rating a function of (seed, base, cfg) alone
  /// — independent of which backend clone runs it and of everything that
  /// clone measured before. Cost tallies are left untouched (the caller
  /// extracts them as snapshot deltas).
  void reset_measurement_stream(std::uint64_t seed) {
    noise_.rng().reseed(seed);
    warmth_.set_warmth(0.0);
    swap_toggle_ = false;
  }

  /// Bit-exact snapshot of the backend's mutable stochastic state, enough
  /// to resume an interrupted tuning run deterministically. The base-run
  /// and multiplier caches are deliberately absent: they memoize pure
  /// functions and rebuild on demand without consuming randomness.
  struct Snapshot {
    std::array<std::uint64_t, 4> rng_state{};
    double warmth = 0.0;
    double accumulated = 0.0;
    double timed = 0.0;
    double precondition = 0.0;
    double checkpoint = 0.0;
    double faulted = 0.0;
    double retry = 0.0;
    std::uint64_t saves = 0;
    std::uint64_t restores = 0;
    std::uint64_t checkpoint_bytes = 0;
    bool swap_toggle = false;
  };
  [[nodiscard]] Snapshot snapshot_state() const;
  void restore_state(const Snapshot& snap);

  /// Accumulated simulated wall time of everything this backend executed
  /// (timed runs, preconditioning, save/restore). This is the tuning cost.
  [[nodiscard]] double accumulated_time() const { return accumulated_; }
  void reset_accumulated_time() {
    accumulated_ = 0.0;
    breakdown_ = CycleBreakdown{};
  }

  /// Attribution of accumulated_time() to simulator phases, plus RBR
  /// checkpoint traffic tallies — the per-phase cycle data the obs layer
  /// exports after each tuning run.
  struct CycleBreakdown {
    double timed = 0.0;         ///< production-like and experimental runs
    double precondition = 0.0;  ///< untimed cache-warming runs
    double checkpoint = 0.0;    ///< save/restore traffic
    /// Cycles lost to injected faults: partial crashed runs, hang time up
    /// to the watchdog deadline.
    double faulted = 0.0;
    /// Backoff waits before re-measurements (charge_retry), separated
    /// from `faulted` so the ledger can report retry cost on its own.
    double retry = 0.0;
    std::uint64_t saves = 0;
    std::uint64_t restores = 0;
    std::uint64_t checkpoint_bytes = 0;  ///< total bytes saved + restored
  };
  [[nodiscard]] const CycleBreakdown& breakdown() const {
    return breakdown_;
  }

  /// Cost tallies a span of work accumulated on one backend, expressed as
  /// the difference between two of its snapshots. Exchange currency of
  /// batched evaluation: a worker's clone measures a candidate, the merge
  /// step folds the clone's deltas into the primary backend.
  struct CostDeltas {
    double accumulated = 0.0;
    double timed = 0.0;
    double precondition = 0.0;
    double checkpoint = 0.0;
    double faulted = 0.0;
    double retry = 0.0;
    std::uint64_t saves = 0;
    std::uint64_t restores = 0;
    std::uint64_t checkpoint_bytes = 0;
  };
  [[nodiscard]] static CostDeltas cost_deltas(const Snapshot& before,
                                              const Snapshot& after) {
    CostDeltas d;
    d.accumulated = after.accumulated - before.accumulated;
    d.timed = after.timed - before.timed;
    d.precondition = after.precondition - before.precondition;
    d.checkpoint = after.checkpoint - before.checkpoint;
    d.faulted = after.faulted - before.faulted;
    d.retry = after.retry - before.retry;
    d.saves = after.saves - before.saves;
    d.restores = after.restores - before.restores;
    d.checkpoint_bytes = after.checkpoint_bytes - before.checkpoint_bytes;
    return d;
  }

  /// Fold cost deltas measured on a clone into this backend's tallies.
  /// Only the cost side is touched — rng, warmth, and swap order stay as
  /// they are, so a backend that merges batch results never perturbs its
  /// own (unconsumed) measurement stream.
  void absorb_cost_deltas(const CostDeltas& d) {
    accumulated_ += d.accumulated;
    breakdown_.timed += d.timed;
    breakdown_.precondition += d.precondition;
    breakdown_.checkpoint += d.checkpoint;
    breakdown_.faulted += d.faulted;
    breakdown_.retry += d.retry;
    breakdown_.saves += d.saves;
    breakdown_.restores += d.restores;
    breakdown_.checkpoint_bytes += d.checkpoint_bytes;
  }

  [[nodiscard]] const ir::Function& function() const { return fn_; }
  [[nodiscard]] TsTraits& traits() { return traits_; }
  [[nodiscard]] const MachineModel& machine() const { return machine_; }

  /// The production workload changed scale (an application phase change):
  /// flag effects may flip, so cached multipliers are invalidated.
  void set_workload_scale(double scale) {
    traits_.workload_scale = scale;
    mult_cache_.clear();
  }

  /// Select the base-run execution engine. The switch exists so tests can
  /// cross-check the engines against each other; production paths keep the
  /// bytecode default.
  void set_engine(ExecEngine engine) { engine_ = engine; }
  [[nodiscard]] ExecEngine engine() const { return engine_; }

private:
  struct BaseRun {
    double cycles = 0.0;
    /// Shared with every InvocationResult derived from this base run.
    std::shared_ptr<const std::vector<std::uint64_t>> counters;
    /// FNV-1a over the post-run memory image (the reference output).
    std::uint64_t digest = 0;
  };

  /// Hashed multiplier-cache key: flag bitset words plus (only when the
  /// effect model is context-sensitive for this section) the raw context
  /// values. Replaces string concatenation of FlagConfig::key() and
  /// std::to_string(double) on the per-invocation hot path.
  struct MultKey {
    std::vector<std::uint64_t> flag_words;
    std::vector<double> context;
    bool operator==(const MultKey&) const = default;
  };
  struct MultKeyHash {
    std::size_t operator()(const MultKey& k) const;
  };

  /// Returns the interpreter result for this invocation's data under the
  /// machine cost model, independent of flags/noise/warmth.
  ///
  /// Caching contract: results are memoized by context when
  /// `context_determines_time`, else by non-zero `id`. An invocation with
  /// `id == 0 && !context_determines_time` is *uncacheable* and re-executes
  /// on every call — deliberate for one-shot probes, silent waste when a
  /// trace producer forgets to assign ids. The obs counters
  /// `sim.base_cache.{hit,miss,uncacheable}` make the split visible;
  /// tests assert Table-1 workload traces never take the uncacheable path.
  const BaseRun& base_run(const Invocation& inv);
  double multiplier(const search::FlagConfig& cfg, const Invocation& inv);
  /// Injector verdict for this (config, invocation) under the current
  /// retry attempt; kNone when no injector is installed.
  fault::FaultKind fault_kind(const search::FlagConfig& cfg,
                              const Invocation& inv) const;
  /// Price and raise an injected crash/hang/checkpoint fault. `nominal`
  /// is the noise-free expected duration of the faulted run. Fault paths
  /// deliberately consume no randomness: a retried transient fault
  /// resumes the noise stream exactly where a fault-free run would be.
  [[noreturn]] void raise_fault(fault::FaultKind kind,
                                const search::FlagConfig& cfg,
                                const Invocation& inv, double nominal);
  double checkpoint_cost(std::size_t bytes) const;
  double timed_run(const BaseRun& base, double mult, double irregularity,
                   bool precondition = false);
  /// Price a checkpoint save/restore: accumulates time, attributes it to
  /// the checkpoint phase, and (restore only) resets cache warmth.
  double charge_save(std::size_t bytes);
  double charge_restore(std::size_t bytes);

  const ir::Function& fn_;
  TsTraits traits_;
  /// By value: machine models are small and callers often pass
  /// temporaries (sparc2(), pentium4()).
  MachineModel machine_;
  const FlagEffectModel& effects_;
  ir::Interpreter interp_;
  MachineCostModel cost_model_;
  /// fn_ lowered once against cost_model_ (which is fixed per backend);
  /// every base run reuses the compiled program.
  ir::BytecodeProgram program_;
  ir::BytecodeVm vm_;
  ExecEngine engine_ = ExecEngine::kBytecode;
  Perturbation noise_;
  WarmthModel warmth_;

  std::map<std::vector<double>, BaseRun> base_cache_;
  std::map<std::uint64_t, BaseRun> base_cache_by_id_;
  std::unordered_map<MultKey, double, MultKeyHash> mult_cache_;
  BaseRun scratch_base_;
  /// Pooled memory image for base-run cache misses: reset() reuses the
  /// buffers instead of reallocating the vector-of-vectors per miss.
  ir::Memory pool_memory_;

  std::size_t full_input_bytes_ = 4096;
  std::size_t modified_input_bytes_ = 1024;
  double accumulated_ = 0.0;
  CycleBreakdown breakdown_;
  bool swap_toggle_ = false;

  const fault::FaultInjector* injector_ = nullptr;
  std::size_t fault_attempt_ = 0;
  std::size_t process_attempt_ = 0;
  double deadline_cycles_ = 0.0;
};

}  // namespace peak::sim
