#pragma once

/// \file flag_effects.hpp
/// The simulated optimizing compiler. PEAK treats the backend compiler as
/// a black box mapping an optimization configuration to a code version
/// with some execution speed; this model supplies that mapping as a
/// deterministic multiplicative time factor per (tuning section, machine,
/// configuration).
///
/// The factor composes:
///  * per-flag effects driven by flag category × section traits × machine
///    (branch optimizations help branchy code; scheduling helps FP codes;
///    redundancy elimination raises register pressure; ...);
///  * curated "story" effects reproducing the paper's headline phenomena —
///    most prominently strict aliasing on ART: longer live ranges cause
///    spilling on the register-starved Pentium 4 (large penalty, hence the
///    178% win from disabling it) but are tolerated by the SPARC II's
///    larger register file (Section 5.2);
///  * deterministic per-(section, flag, machine) jitter, so every section
///    has a few mildly harmful flags for Iterative Elimination to find —
///    the paper's observation that optimization effects are significant
///    and unpredictable;
///  * pairwise interactions between flags, making the search space
///    non-additive.
///
/// Multipliers are relative to the all-flags-off baseline; lower = faster.

#include <string>

#include "search/opt_config.hpp"
#include "sim/machine.hpp"

namespace peak::sim {

/// Behavioural summary of one tuning section, the features the effect
/// model keys on. Workloads set these to match the character of the
/// original SPEC section they stand in for.
struct TsTraits {
  std::string key;        ///< "ART.match" — seeds per-section jitter
  std::string benchmark;  ///< "ART" — selects curated story effects
  double branchiness = 0.1;       ///< branch share of the op mix
  double memory_intensity = 0.3;  ///< load/store share
  double fp_intensity = 0.0;      ///< FP share
  double call_intensity = 0.0;    ///< call share
  double reg_pressure = 8.0;      ///< simultaneously live values (est.)
  double loop_regularity = 0.8;   ///< 1 = perfectly nested regular loops
  double noise_scale = 1.0;       ///< per-TS timing-noise multiplier
  double workload_scale = 1.0;    ///< dataset size (train < ref)
};

/// Estimate traits from the IR (op-mix totals, scalar counts). Workloads
/// typically start from this and override a few fields.
TsTraits derive_traits(const ir::Function& fn, std::string benchmark);

class FlagEffectModel {
public:
  explicit FlagEffectModel(const search::OptimizationSpace& space,
                           std::uint64_t seed = 0x9eac);

  /// Multiplicative time factor of one configuration (lower = faster).
  [[nodiscard]] double time_multiplier(const TsTraits& ts,
                                       const MachineModel& machine,
                                       const search::FlagConfig& cfg) const;

  /// Context-dependent variant: some optimizations pay off only for some
  /// workload shapes (the paper's §2.2 point that "the best versions for
  /// different contexts may be different"). `context` is the invocation's
  /// context-variable vector; sections without context-dependent effects
  /// return time_multiplier() unchanged.
  [[nodiscard]] double time_multiplier(
      const TsTraits& ts, const MachineModel& machine,
      const search::FlagConfig& cfg,
      const std::vector<double>& context) const;

  /// True when this section has context-dependent flag effects (callers
  /// must then key their multiplier caches by context too).
  [[nodiscard]] bool context_sensitive(const TsTraits& ts) const;

  /// Effect of a single flag when enabled (multiplier > 1 = harmful).
  [[nodiscard]] double flag_effect(const TsTraits& ts,
                                   const MachineModel& machine,
                                   std::size_t flag) const;

  [[nodiscard]] const search::OptimizationSpace& space() const {
    return space_;
  }

private:
  [[nodiscard]] double interaction(const TsTraits& ts,
                                   const MachineModel& machine,
                                   const search::FlagConfig& cfg) const;

  const search::OptimizationSpace& space_;
  std::uint64_t seed_;
};

}  // namespace peak::sim
