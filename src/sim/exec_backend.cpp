#include "sim/exec_backend.hpp"

#include <bit>
#include <cstdlib>
#include <limits>

#include "obs/metrics.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace peak::sim {

namespace {

/// Statically cached metric references (registry lookups are mutex-guarded).
struct BaseCacheMetrics {
  obs::Counter& hit = obs::counter("sim.base_cache.hit");
  obs::Counter& miss = obs::counter("sim.base_cache.miss");
  obs::Counter& uncacheable = obs::counter("sim.base_cache.uncacheable");
};

BaseCacheMetrics& base_cache_metrics() {
  static BaseCacheMetrics metrics;
  return metrics;
}

struct FaultMetrics {
  obs::Counter& injected = obs::counter("fault.injected");
  obs::Counter& deadline = obs::counter("fault.deadline_exceeded");
};

FaultMetrics& fault_metrics() {
  static FaultMetrics metrics;
  return metrics;
}

/// FNV-1a over the bit patterns of a post-run memory image — the
/// Modified_Input digest that validation compares against the reference.
std::uint64_t memory_digest(const ir::Memory& memory) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(memory.scalars.size());
  for (double v : memory.scalars) mix(std::bit_cast<std::uint64_t>(v));
  mix(memory.arrays.size());
  for (const auto& arr : memory.arrays) {
    mix(arr.size());
    for (double v : arr) mix(std::bit_cast<std::uint64_t>(v));
  }
  return h;
}

/// Nonzero, config-dependent corruption applied to a miscompiled
/// version's output digest.
std::uint64_t digest_corruption(const search::FlagConfig& cfg) {
  std::uint64_t h = 0x6d69736f757470ULL;  // "misoutp"
  for (std::uint64_t w : cfg.bits().words()) h = support::hash_combine(h, w);
  return h | 1;
}

}  // namespace

SimExecutionBackend::SimExecutionBackend(const ir::Function& fn,
                                         TsTraits traits,
                                         const MachineModel& machine,
                                         const FlagEffectModel& effects,
                                         std::uint64_t seed)
    : fn_(fn),
      traits_(std::move(traits)),
      machine_(machine),
      effects_(effects),
      interp_(fn),
      cost_model_(machine_),
      program_(ir::BytecodeProgram::compile(fn, cost_model_)),
      vm_(program_),
      noise_(machine.noise, support::Rng(seed)) {
  noise_.scale_sigma(traits_.noise_scale);
}

const SimExecutionBackend::BaseRun& SimExecutionBackend::base_run(
    const Invocation& inv) {
  BaseCacheMetrics& metrics = base_cache_metrics();
  if (inv.context_determines_time) {
    auto it = base_cache_.find(inv.context);
    if (it != base_cache_.end()) {
      metrics.hit.inc();
      return it->second;
    }
  } else if (inv.id != 0) {
    auto it = base_cache_by_id_.find(inv.id);
    if (it != base_cache_by_id_.end()) {
      metrics.hit.inc();
      return it->second;
    }
  }
  pool_memory_.reset(fn_);
  PEAK_CHECK(static_cast<bool>(inv.bind), "invocation has no binder");
  inv.bind(pool_memory_);
  ir::RunResult run = engine_ == ExecEngine::kBytecode
                          ? vm_.run(pool_memory_)
                          : interp_.run(pool_memory_, cost_model_);

  BaseRun base;
  base.cycles = run.cycles;
  base.counters = std::make_shared<const std::vector<std::uint64_t>>(
      std::move(run.counters));
  // Both engines leave bit-identical memory images (the differential
  // contract in tests/test_ir_bytecode.cpp), so the digest is
  // engine-independent.
  base.digest = memory_digest(pool_memory_);
  if (inv.context_determines_time) {
    metrics.miss.inc();
    auto [it, inserted] = base_cache_.emplace(inv.context, std::move(base));
    (void)inserted;
    return it->second;
  }
  if (inv.id != 0) {
    metrics.miss.inc();
    auto [it, inserted] =
        base_cache_by_id_.emplace(inv.id, std::move(base));
    (void)inserted;
    return it->second;
  }
  metrics.uncacheable.inc();
  scratch_base_ = std::move(base);
  return scratch_base_;
}

std::size_t SimExecutionBackend::MultKeyHash::operator()(
    const MultKey& k) const {
  // FNV-1a over the flag words and the context value bit patterns.
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  mix(k.flag_words.size());
  for (std::uint64_t w : k.flag_words) mix(w);
  mix(k.context.size());
  for (double v : k.context) mix(std::bit_cast<std::uint64_t>(v));
  return static_cast<std::size_t>(h);
}

double SimExecutionBackend::multiplier(const search::FlagConfig& cfg,
                                       const Invocation& inv) {
  const bool ctx_sensitive = effects_.context_sensitive(traits_);
  MultKey key;
  key.flag_words = cfg.bits().words();
  if (ctx_sensitive) key.context = inv.context;
  auto it = mult_cache_.find(key);
  if (it != mult_cache_.end()) return it->second;
  const double m =
      ctx_sensitive
          ? effects_.time_multiplier(traits_, machine_, cfg, inv.context)
          : effects_.time_multiplier(traits_, machine_, cfg);
  mult_cache_.emplace(std::move(key), m);
  return m;
}

double SimExecutionBackend::checkpoint_cost(std::size_t bytes) const {
  const double doubles = static_cast<double>(bytes) / sizeof(double);
  return doubles * (machine_.load_cost + machine_.store_cost);
}

double SimExecutionBackend::timed_run(const BaseRun& base, double mult,
                                      double irregularity,
                                      bool precondition) {
  const double time =
      base.cycles * mult * irregularity * warmth_.execute() *
          noise_.sample() +
      noise_.sample_additive();
  accumulated_ += time;
  (precondition ? breakdown_.precondition : breakdown_.timed) += time;
  return time;
}

double SimExecutionBackend::charge_save(std::size_t bytes) {
  const double cost = checkpoint_cost(bytes);
  accumulated_ += cost;
  breakdown_.checkpoint += cost;
  breakdown_.checkpoint_bytes += bytes;
  ++breakdown_.saves;
  return cost;
}

double SimExecutionBackend::charge_restore(std::size_t bytes) {
  const double cost = checkpoint_cost(bytes);
  accumulated_ += cost;
  breakdown_.checkpoint += cost;
  breakdown_.checkpoint_bytes += bytes;
  ++breakdown_.restores;
  warmth_.on_restore();
  return cost;
}

fault::FaultKind SimExecutionBackend::fault_kind(
    const search::FlagConfig& cfg, const Invocation& inv) const {
  if (injector_ == nullptr) return fault::FaultKind::kNone;
  const fault::FaultKind kind = injector_->fire(cfg, inv.id, fault_attempt_);
  if (kind == fault::FaultKind::kHardCrash) {
    // A hard crash is process death, not an exception. The verdict is
    // re-queried with the *process*-level attempt: a respawned worker
    // retries under attempt > 0, so a transient hard crash clears on the
    // second process, while a deterministic (or sticky scripted) one
    // aborts every attempt until the supervisor gives up and the config
    // lands in quarantine. Nothing is charged and no randomness is
    // consumed before the abort, so a survived retry is bit-identical to
    // a run that never crashed. Only --isolate-workers runs survive this.
    if (injector_->fire(cfg, inv.id, process_attempt_) ==
        fault::FaultKind::kHardCrash)
      std::abort();
    return fault::FaultKind::kNone;
  }
  return kind;
}

void SimExecutionBackend::raise_fault(fault::FaultKind kind,
                                      const search::FlagConfig& cfg,
                                      const Invocation& inv,
                                      double nominal) {
  fault_metrics().injected.inc();
  const bool transient = !injector_->decide(cfg).deterministic;
  const std::string where =
      " (config " + cfg.key() + ", invocation " + std::to_string(inv.id) +
      ")";
  switch (kind) {
    case fault::FaultKind::kCrash: {
      // The run aborted partway: half the nominal duration was spent.
      const double partial = 0.5 * nominal;
      accumulated_ += partial;
      breakdown_.faulted += partial;
      throw fault::CrashFault(transient, "injected crash" + where);
    }
    case fault::FaultKind::kHang: {
      if (deadline_cycles_ > 0.0) {
        // The watchdog waited out the full deadline before giving up.
        accumulated_ += deadline_cycles_;
        breakdown_.faulted += deadline_cycles_;
        fault_metrics().deadline.inc();
        throw fault::DeadlineExceeded(
            deadline_cycles_, "injected hang hit the deadline" + where);
      }
      throw fault::HangFault("injected hang with no deadline armed" +
                             where);
    }
    case fault::FaultKind::kTimerGlitch: {
      // RBR path: the pair ran (charge its duration) but the timer
      // glitched, so the measurements are unusable and discarded.
      accumulated_ += nominal;
      breakdown_.faulted += nominal;
      throw fault::FaultError(fault::FaultKind::kTimerGlitch, transient,
                              "injected timer glitch" + where);
    }
    case fault::FaultKind::kCheckpointCorrupt: {
      // The save completed (and is charged) but verification of the
      // restored image failed; the measurement pair is lost.
      charge_save(modified_input_bytes_);
      throw fault::CheckpointCorruptFault(
          transient, "injected checkpoint corruption" + where);
    }
    case fault::FaultKind::kNone:
    case fault::FaultKind::kMiscompile:
    case fault::FaultKind::kHardCrash:  // handled (fatally) in fault_kind
      break;
  }
  PEAK_CHECK(false, "raise_fault called with a non-raising kind");
}

InvocationResult SimExecutionBackend::invoke(const search::FlagConfig& cfg,
                                             const Invocation& inv) {
  const BaseRun& base = base_run(inv);
  const double mult = multiplier(cfg, inv);
  const fault::FaultKind fk = fault_kind(cfg, inv);
  const double nominal = base.cycles * mult * inv.irregularity;
  // Fault paths throw before any noise draw: a retried transient fault
  // resumes the perturbation stream exactly where a fault-free run would
  // be, so transient faults cost time but never skew samples.
  if (fk == fault::FaultKind::kCrash || fk == fault::FaultKind::kHang)
    raise_fault(fk, cfg, inv, nominal);
  warmth_.on_new_data();
  InvocationResult result;
  if (fk == fault::FaultKind::kTimerGlitch) {
    // The run completes (charge its nominal duration) but the timer
    // wrapped: report an absurd reading, again without a noise draw.
    fault_metrics().injected.inc();
    accumulated_ += nominal;
    breakdown_.faulted += nominal;
    result.time = std::numeric_limits<double>::infinity();
  } else {
    result.time = timed_run(base, mult, inv.irregularity);
  }
  result.counters = base.counters;
  result.output_digest = base.digest;
  if (fk == fault::FaultKind::kMiscompile) {
    fault_metrics().injected.inc();
    result.output_digest ^= digest_corruption(cfg);
  }
  return result;
}

double SimExecutionBackend::expected_time(const search::FlagConfig& cfg,
                                          const Invocation& inv) {
  const BaseRun& base = base_run(inv);
  // Expected value over noise is ~exp(sigma^2/2) ≈ 1. A production
  // invocation always runs on fresh data, so the cold-start factor and the
  // data-dependent irregularity both belong in the expectation.
  return base.cycles * multiplier(cfg, inv) * inv.irregularity *
         warmth_.fresh_multiplier();
}

std::vector<RbrPairResult> SimExecutionBackend::invoke_rbr_batch(
    const search::FlagConfig& best, const search::FlagConfig& exp,
    const Invocation& inv, const RbrOptions& opts) {
  std::vector<RbrPairResult> results;
  const std::size_t pairs = std::max<std::size_t>(opts.batch_pairs, 1);
  results.reserve(pairs);

  // The invocation's data is bound once; save and precondition happen for
  // the first pair only. Subsequent pairs re-time both versions under the
  // already-warm, already-checkpointed state — only the restore between
  // timed runs repeats.
  for (std::size_t p = 0; p < pairs; ++p) {
    RbrOptions one = opts;
    one.batch_pairs = 1;
    if (p == 0) {
      results.push_back(invoke_rbr_pair(best, exp, inv, one));
      continue;
    }
    const BaseRun& base = base_run(inv);
    const double m_best = multiplier(best, inv);
    const double m_exp = multiplier(exp, inv);
    RbrPairResult r;
    r.swapped = swap_toggle_;
    swap_toggle_ = !swap_toggle_;
    r.overhead += charge_restore(modified_input_bytes_);
    const double first =
        timed_run(base, r.swapped ? m_exp : m_best, inv.irregularity);
    r.overhead += charge_restore(modified_input_bytes_);
    const double second =
        timed_run(base, r.swapped ? m_best : m_exp, inv.irregularity);
    r.time_best = r.swapped ? second : first;
    r.time_exp = r.swapped ? first : second;
    // Both runs are pure tuning work: the production execution already
    // happened in the first pair of the batch.
    r.overhead += r.time_best + r.time_exp;
    results.push_back(r);
  }
  return results;
}

RbrPairResult SimExecutionBackend::invoke_rbr_pair(
    const search::FlagConfig& best, const search::FlagConfig& exp,
    const Invocation& inv, const RbrOptions& opts) {
  const BaseRun& base = base_run(inv);
  const double m_best = multiplier(best, inv);
  const double m_exp = multiplier(exp, inv);

  // Faults are attributed to the experimental version (the current best
  // already survived validation). All raising kinds throw here, before
  // any noise draw; a miscompiled version times normally and is caught by
  // the guarded executor's digest validation instead.
  const fault::FaultKind fk = fault_kind(exp, inv);
  if (fk != fault::FaultKind::kNone && fk != fault::FaultKind::kMiscompile)
    raise_fault(fk, exp, inv, base.cycles * m_exp * inv.irregularity);

  RbrPairResult result;
  warmth_.on_new_data();

  if (opts.improved) {
    // Improved method (Fig. 4): swap, save Modified_Input, precondition,
    // restore, time first, restore, time second.
    result.swapped = swap_toggle_;
    swap_toggle_ = !swap_toggle_;

    result.overhead += charge_save(modified_input_bytes_);

    // Precondition run: brings the data into the cache; not timed.
    const double precond =
        timed_run(base, m_best, inv.irregularity, /*precondition=*/true);
    result.overhead += precond;

    result.overhead += charge_restore(modified_input_bytes_);

    const double first =
        timed_run(base, result.swapped ? m_exp : m_best, inv.irregularity);

    result.overhead += charge_restore(modified_input_bytes_);

    const double second =
        timed_run(base, result.swapped ? m_best : m_exp, inv.irregularity);

    result.time_best = result.swapped ? second : first;
    result.time_exp = result.swapped ? first : second;
    // One of the two timed runs would have happened in production anyway;
    // count the slower bookkeeping view: the experimental run is overhead.
    result.overhead += result.time_exp;
  } else {
    // Basic method (Fig. 3): save full input, time v1 cold, restore,
    // time v2 — which then enjoys the cache v1 warmed (the bias the
    // improved method exists to remove).
    result.swapped = false;

    result.overhead += charge_save(full_input_bytes_);

    result.time_best = timed_run(base, m_best, inv.irregularity);  // cold

    result.overhead += charge_restore(full_input_bytes_);

    result.time_exp =
        timed_run(base, m_exp, inv.irregularity);  // warm: biased faster
    result.overhead += result.time_exp;
  }
  return result;
}

SimExecutionBackend::Snapshot SimExecutionBackend::snapshot_state() const {
  Snapshot s;
  s.rng_state = noise_.rng().state();
  s.warmth = warmth_.warmth();
  s.accumulated = accumulated_;
  s.timed = breakdown_.timed;
  s.precondition = breakdown_.precondition;
  s.checkpoint = breakdown_.checkpoint;
  s.faulted = breakdown_.faulted;
  s.retry = breakdown_.retry;
  s.saves = breakdown_.saves;
  s.restores = breakdown_.restores;
  s.checkpoint_bytes = breakdown_.checkpoint_bytes;
  s.swap_toggle = swap_toggle_;
  return s;
}

void SimExecutionBackend::restore_state(const Snapshot& snap) {
  noise_.rng().set_state(snap.rng_state);
  warmth_.set_warmth(snap.warmth);
  accumulated_ = snap.accumulated;
  breakdown_.timed = snap.timed;
  breakdown_.precondition = snap.precondition;
  breakdown_.checkpoint = snap.checkpoint;
  breakdown_.faulted = snap.faulted;
  breakdown_.retry = snap.retry;
  breakdown_.saves = snap.saves;
  breakdown_.restores = snap.restores;
  breakdown_.checkpoint_bytes = snap.checkpoint_bytes;
  swap_toggle_ = snap.swap_toggle;
}

}  // namespace peak::sim
