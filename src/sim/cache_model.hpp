#pragma once

/// \file cache_model.hpp
/// Cache effects for RBR. Two tools:
///
/// 1. SetAssocCache — a faithful set-associative LRU cache simulator,
///    used by tests and micro-benchmarks to validate the warm-up
///    assumptions the improved RBR method relies on.
///
/// 2. WarmthModel — the cheap surrogate the execution backend uses: a
///    per-tuning-section warmth score in [0,1]. The first execution after
///    new input data is cold; re-executions of the same data are warm.
///    This reproduces the bias the basic RBR method suffers (Version 1
///    preconditions the cache for Version 2) and that the improved method
///    removes with a precondition run plus order swapping (Section 2.4.2).

#include <cstdint>
#include <vector>

namespace peak::sim {

class SetAssocCache {
public:
  SetAssocCache(std::size_t size_bytes, std::size_t line_bytes,
                std::size_t associativity);

  /// Access one byte address; returns true on hit. LRU replacement.
  bool access(std::uint64_t address);

  void flush();

  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] std::size_t num_sets() const { return sets_; }

private:
  struct Line {
    std::uint64_t tag = ~0ULL;
    std::uint64_t lru = 0;
    bool valid = false;
  };

  std::size_t sets_;
  std::size_t ways_;
  std::size_t line_bytes_;
  std::vector<Line> lines_;
  std::uint64_t tick_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

/// Scalar cache-warmth surrogate for the execution backend.
class WarmthModel {
public:
  /// \param cold_penalty extra time fraction when fully cold (e.g. 0.25 =
  ///   a cold run is 25% slower than a warm one).
  /// \param warmup_rate fraction of remaining coldness removed per run.
  explicit WarmthModel(double cold_penalty = 0.25, double warmup_rate = 0.9)
      : cold_penalty_(cold_penalty), warmup_rate_(warmup_rate) {}

  /// New input data arrived (trace advanced to a fresh invocation).
  void on_new_data() { warmth_ = 0.0; }

  /// Restoring saved input touches the working set: partially warm.
  void on_restore() { warmth_ = std::max(warmth_, restore_warmth_); }

  /// Time multiplier for the next execution, then warm up.
  double execute() {
    const double mult = 1.0 + cold_penalty_ * (1.0 - warmth_);
    warmth_ += warmup_rate_ * (1.0 - warmth_);
    return mult;
  }

  /// Multiplier of an execution on entirely fresh data (what a production
  /// invocation pays).
  [[nodiscard]] double fresh_multiplier() const {
    return 1.0 + cold_penalty_;
  }

  [[nodiscard]] double warmth() const { return warmth_; }

  /// Restore a previously observed warmth verbatim (snapshot/resume).
  void set_warmth(double warmth) { warmth_ = warmth; }

private:
  double cold_penalty_;
  double warmup_rate_;
  double restore_warmth_ = 0.8;  ///< restore streams the data through cache
  double warmth_ = 0.0;
};

}  // namespace peak::sim
