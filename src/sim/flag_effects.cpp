#include "sim/flag_effects.hpp"

#include <algorithm>
#include <cmath>

#include "ir/loops.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace peak::sim {

using search::FlagCategory;
using support::hash_combine;
using support::stable_hash;

TsTraits derive_traits(const ir::Function& fn, std::string benchmark) {
  TsTraits t;
  t.key = benchmark + "." + fn.name();
  t.benchmark = std::move(benchmark);

  // Weight each block's static op mix by its loop-nesting depth (natural
  // loops from the dominator tree): deeply nested blocks dominate the
  // dynamic instruction stream.
  const ir::LoopInfo loops = ir::find_natural_loops(fn);
  auto depth_weight = [&](ir::BlockId b) {
    return std::pow(8.0, static_cast<double>(loops.depth_of(b)));
  };

  double int_ops = 0, fp_ops = 0, mem = 0, branches = 0, calls = 0;
  double header_branch_weight = 0, data_branch_weight = 0;
  for (ir::BlockId b = 0; b < fn.num_blocks(); ++b) {
    const ir::BlockTraits& bt = fn.block(b).traits;
    const double w = depth_weight(b);
    int_ops += w * bt.int_ops;
    fp_ops += w * (bt.fp_ops + bt.fp_transcend);
    mem += w * (bt.loads + bt.stores);
    branches += w * bt.branches;
    calls += w * bt.calls;
    if (fn.block(b).term.kind == ir::TermKind::kBranch) {
      // Loop-header branches are trip-count tests — predictable, regular.
      // Any other conditional is data-driven control flow.
      bool is_header = false;
      for (const ir::NaturalLoop& loop : loops.loops)
        is_header |= loop.header == b;
      (is_header ? header_branch_weight : data_branch_weight) += w;
    }
  }
  const double total =
      std::max(1.0, int_ops + fp_ops + mem + branches + calls);
  t.branchiness = branches / total;
  t.memory_intensity = mem / total;
  t.fp_intensity = fp_ops / total;
  t.call_intensity = calls / total;

  std::size_t scalars = 0;
  for (ir::VarId v = 0; v < fn.num_vars(); ++v)
    if (fn.var(v).kind == ir::VarKind::kScalar) ++scalars;
  t.reg_pressure = static_cast<double>(scalars);

  // Regularity: share of branch work spent on loop trip-count tests.
  const double branch_total = header_branch_weight + data_branch_weight;
  t.loop_regularity =
      branch_total > 0.0 ? header_branch_weight / branch_total : 1.0;
  return t;
}

FlagEffectModel::FlagEffectModel(const search::OptimizationSpace& space,
                                 std::uint64_t seed)
    : space_(space), seed_(seed) {}

namespace {

/// Curated story effect: multiplier applied when `flag` is enabled for a
/// section of `benchmark` on `machine` ("*" = any machine). When
/// `scale_threshold` >= 0 the effect flips with the dataset size — the
/// mechanism behind the paper's train-vs-ref divergences (MGRID and ART on
/// SPARC II, Figure 7a).
struct StoryEffect {
  const char* benchmark;
  const char* flag;
  const char* machine;  // "*" = both
  double multiplier;
  double scale_threshold = -1.0;  ///< workload_scale >= threshold ⇒ use
                                  ///< multiplier_large instead
  double multiplier_large = 1.0;
};

constexpr StoryEffect kStories[] = {
    // ART / strict aliasing: live ranges lengthen, spills flood memory on
    // the 8-register P4; the SPARC II register file absorbs the pressure.
    {"ART", "-fstrict-aliasing", "p4", 2.70, -1.0, 1.0},
    {"ART", "-fstrict-aliasing", "sparc2", 0.965, -1.0, 1.0},
    // ART on SPARC II: rename-registers helps the small train input but
    // hurts ref (divergence seen in Fig. 7a's left-vs-right bars), while
    // delayed-branch scheduling mildly hurts on both inputs.
    {"ART", "-frename-registers", "sparc2", 0.98, 0.5, 1.030},
    {"ART", "-fdelayed-branch", "sparc2", 1.022, -1.0, 1.0},
    // SWIM: instruction scheduling backfires on the register-starved P4
    // (spill-heavy FP inner loops); milder on SPARC II.
    {"SWIM", "-fschedule-insns", "p4", 1.050, -1.0, 1.0},
    {"SWIM", "-fschedule-insns", "sparc2", 1.028, -1.0, 1.0},
    {"SWIM", "-fgcse-sm", "*", 1.022, -1.0, 1.0},
    // MGRID: caller-saves and force-mem hurt the stencil's tight loops.
    {"MGRID", "-fcaller-saves", "*", 1.038, -1.0, 1.0},
    {"MGRID", "-fforce-mem", "sparc2", 1.020, -1.0, 1.0},
    // MGRID on SPARC II: gcse-lm helps the small training grids but hurts
    // the ref grid (cache geometry), another train/ref divergence.
    {"MGRID", "-fgcse-lm", "sparc2", 0.975, 0.5, 1.028},
    // EQUAKE: if-conversion and gcse mis-fire on the sparse irregular code.
    {"EQUAKE", "-fif-conversion", "*", 1.055, -1.0, 1.0},
    {"EQUAKE", "-fgcse", "*", 1.035, -1.0, 1.0},
    {"EQUAKE", "-fstrict-aliasing", "sparc2", 1.018, -1.0, 1.0},
};

}  // namespace

double FlagEffectModel::flag_effect(const TsTraits& ts,
                                    const MachineModel& machine,
                                    std::size_t flag) const {
  const search::FlagInfo& info = space_.flag(flag);

  // --- curated story effects take precedence -----------------------------
  for (const StoryEffect& s : kStories) {
    if (ts.benchmark != s.benchmark) continue;
    if (info.name != s.flag) continue;
    if (std::string_view(s.machine) != "*" && machine.name != s.machine)
      continue;
    if (s.scale_threshold >= 0.0 && ts.workload_scale >= s.scale_threshold)
      return s.multiplier_large;
    return s.multiplier;
  }

  // --- generic category-driven benefit ------------------------------------
  double benefit = 0.0;
  const double reg_ratio =
      ts.reg_pressure / std::max(1.0, static_cast<double>(
                                          machine.int_registers));
  switch (info.category) {
    case FlagCategory::kBranch:
      benefit = 0.004 + 0.020 * ts.branchiness;
      // Deep pipelines lose from if-converting well-predicted branches in
      // irregular code.
      if (ts.loop_regularity < 0.3 && machine.mispredict_penalty > 10.0)
        benefit -= 0.004;
      break;
    case FlagCategory::kLoop:
      benefit = 0.004 + 0.025 * ts.loop_regularity;
      break;
    case FlagCategory::kRedundancy:
      benefit = 0.006 + 0.015 * (1.0 - ts.memory_intensity);
      // CSE keeps more values live: pressure penalty on small reg files.
      if (reg_ratio > 1.0) benefit -= 0.008 * (reg_ratio - 1.0);
      break;
    case FlagCategory::kScheduling:
      benefit = 0.005 + 0.020 * ts.fp_intensity;
      if (reg_ratio > 1.2) benefit -= 0.010 * (reg_ratio - 1.2);
      break;
    case FlagCategory::kRegister:
      benefit = 0.003 + 0.012 * std::min(reg_ratio, 2.0);
      break;
    case FlagCategory::kInline:
      benefit = 0.002 + 0.060 * ts.call_intensity;
      break;
    case FlagCategory::kAlias:
      benefit = 0.006 + 0.015 * ts.memory_intensity;
      if (reg_ratio > 1.5) benefit -= 0.012 * (reg_ratio - 1.5);
      break;
    case FlagCategory::kLayout:
      benefit = 0.0015;
      break;
    case FlagCategory::kMisc:
      benefit = 0.002;
      break;
  }

  // --- deterministic per-(section, flag, machine) jitter ------------------
  std::uint64_t h = hash_combine(seed_, stable_hash(ts.key));
  h = hash_combine(h, stable_hash(info.name));
  h = hash_combine(h, stable_hash(machine.name));
  support::Rng rng(h);
  // Centered slightly positive; ~22% of flags end up mildly harmful for
  // any given section, matching the paper's experience that O3 is rarely
  // optimal but usually decent.
  benefit += rng.uniform(-0.006, 0.010);

  return std::clamp(1.0 - benefit, 0.80, 3.0);
}

double FlagEffectModel::interaction(const TsTraits& ts,
                                    const MachineModel& machine,
                                    const search::FlagConfig& cfg) const {
  // A deterministic subset of flag pairs interacts for each section: when
  // both members are enabled, a small extra factor applies. Eight pairs
  // per section keeps the space non-additive without swamping the
  // first-order effects.
  std::uint64_t h = hash_combine(seed_ ^ 0x17ac, stable_hash(ts.key));
  h = hash_combine(h, stable_hash(machine.name));
  support::Rng rng(h);

  double factor = 1.0;
  const std::size_t n = space_.size();
  for (int p = 0; p < 8; ++p) {
    const auto a = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const auto b = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    const double f = rng.uniform(0.995, 1.008);
    if (a != b && cfg.enabled(a) && cfg.enabled(b)) factor *= f;
  }
  return factor;
}

double FlagEffectModel::time_multiplier(const TsTraits& ts,
                                        const MachineModel& machine,
                                        const search::FlagConfig& cfg) const {
  PEAK_CHECK(cfg.size() == space_.size(), "config built for another space");
  double factor = 1.0;
  for (std::size_t f = 0; f < space_.size(); ++f)
    if (cfg.enabled(f)) factor *= flag_effect(ts, machine, f);
  factor *= interaction(ts, machine, cfg);
  return factor;
}

namespace {

/// Context-dependent story: a loop optimization whose benefit depends on
/// the invocation's shape. radb4's re-run loop optimization pays for
/// itself only when the inner trip count (ido, context[0]) is large
/// enough to amortize the restructured loop's setup — tiny butterflies
/// lose (the mechanism behind §2.2's context-specific winners).
struct ContextStory {
  const char* benchmark;
  const char* flag;
  std::size_t context_index;
  double threshold;
  double multiplier_small;  ///< when context[idx] < threshold
  double multiplier_large;
};

constexpr ContextStory kContextStories[] = {
    {"APSI", "-frerun-loop-opt", 0, 8.0, 1.06, 0.95},
};

}  // namespace

bool FlagEffectModel::context_sensitive(const TsTraits& ts) const {
  for (const ContextStory& s : kContextStories)
    if (ts.benchmark == s.benchmark) return true;
  return false;
}

double FlagEffectModel::time_multiplier(
    const TsTraits& ts, const MachineModel& machine,
    const search::FlagConfig& cfg,
    const std::vector<double>& context) const {
  double factor = time_multiplier(ts, machine, cfg);
  if (context.empty()) return factor;
  for (const ContextStory& s : kContextStories) {
    if (ts.benchmark != s.benchmark) continue;
    const auto idx = space_.index_of(s.flag);
    if (!idx || !cfg.enabled(*idx)) continue;
    if (s.context_index >= context.size()) continue;
    // The context-independent path already charged the flag's generic
    // effect; replace it with the shape-dependent one.
    factor /= flag_effect(ts, machine, *idx);
    factor *= context[s.context_index] < s.threshold
                  ? s.multiplier_small
                  : s.multiplier_large;
  }
  return factor;
}

}  // namespace peak::sim
