#include "sim/cache_model.hpp"

#include "support/check.hpp"

namespace peak::sim {

SetAssocCache::SetAssocCache(std::size_t size_bytes, std::size_t line_bytes,
                             std::size_t associativity)
    : sets_(0), ways_(associativity), line_bytes_(line_bytes) {
  PEAK_CHECK(line_bytes > 0 && associativity > 0 && size_bytes > 0,
             "degenerate cache geometry");
  PEAK_CHECK(size_bytes % (line_bytes * associativity) == 0,
             "cache size must be a multiple of line*ways");
  sets_ = size_bytes / (line_bytes * associativity);
  lines_.assign(sets_ * ways_, Line{});
}

bool SetAssocCache::access(std::uint64_t address) {
  const std::uint64_t line_addr = address / line_bytes_;
  const std::size_t set = static_cast<std::size_t>(line_addr % sets_);
  const std::uint64_t tag = line_addr / sets_;
  Line* base = &lines_[set * ways_];
  ++tick_;

  for (std::size_t w = 0; w < ways_; ++w) {
    if (base[w].valid && base[w].tag == tag) {
      base[w].lru = tick_;
      ++hits_;
      return true;
    }
  }
  // Miss: fill the LRU way.
  std::size_t victim = 0;
  for (std::size_t w = 1; w < ways_; ++w) {
    if (!base[w].valid) {
      victim = w;
      break;
    }
    if (base[w].lru < base[victim].lru) victim = w;
  }
  base[victim].valid = true;
  base[victim].tag = tag;
  base[victim].lru = tick_;
  ++misses_;
  return false;
}

void SetAssocCache::flush() {
  for (Line& l : lines_) l = Line{};
  hits_ = 0;
  misses_ = 0;
  tick_ = 0;
}

}  // namespace peak::sim
