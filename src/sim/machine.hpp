#pragma once

/// \file machine.hpp
/// Simulated target machines. The paper evaluates on a SPARC II and a
/// Pentium IV; we model the architectural properties its analysis actually
/// leans on: integer register count (the strict-aliasing/register-pressure
/// story of Section 5.2), per-operation-class costs, cache geometry, and
/// measurement-noise character. Costs are in abstract cycles.

#include <cstdint>
#include <string>

#include "ir/function.hpp"
#include "ir/interpreter.hpp"

namespace peak::sim {

struct CacheGeometry {
  std::size_t size_bytes = 16 * 1024;
  std::size_t line_bytes = 32;
  std::size_t associativity = 4;
  double miss_penalty = 40.0;  ///< cycles per miss
};

struct NoiseProfile {
  double sigma = 0.01;        ///< lognormal multiplicative jitter
  double outlier_prob = 0.002;  ///< interrupt-like perturbation probability
  double outlier_scale_lo = 1.5;  ///< outlier multiplies time by U[lo,hi]
  double outlier_scale_hi = 4.0;
  /// Additive jitter in cycles (timer granularity, bus contention). Small
  /// tuning sections are relatively noisier — the paper's observation that
  /// small TS's exhibit more measurement variation.
  double sigma_additive = 20.0;
};

struct MachineModel {
  std::string name;
  int int_registers = 8;
  int fp_registers = 8;

  // Per-operation costs (cycles).
  double int_op_cost = 1.0;
  double fp_op_cost = 2.0;
  double load_cost = 2.0;
  double store_cost = 2.0;
  double branch_cost = 1.0;
  double mispredict_penalty = 10.0;  ///< charged on a fraction of branches
  double div_cost = 20.0;
  double transcend_cost = 30.0;
  double call_cost = 10.0;
  /// Fraction of conditional branches assumed mispredicted for pricing.
  double mispredict_rate = 0.05;

  CacheGeometry l1;
  NoiseProfile noise;

  /// Instrumentation counter bump, priced per machine (paper: little
  /// influence, but nonzero — MBR's accuracy cost).
  double counter_cost = 0.5;
};

/// 450 MHz UltraSPARC-II-like: many general-purpose registers (register
/// windows), shallow pipeline, mild mispredict penalty, quiet timing.
MachineModel sparc2();

/// 2 GHz Pentium-4-like: 8 architectural integer registers, very deep
/// pipeline (large mispredict penalty), noisier timing.
MachineModel pentium4();

/// ir::CostModel pricing block entries from BlockTraits with this machine's
/// per-op costs. This is the *unoptimized* price; the flag-effect model
/// scales it per optimization configuration.
class MachineCostModel final : public ir::CostModel {
public:
  explicit MachineCostModel(const MachineModel& machine)
      : machine_(machine) {}

  [[nodiscard]] double block_entry_cost(const ir::Function& fn,
                                        ir::BlockId block) const override;

  [[nodiscard]] double counter_cost() const override {
    return machine_.counter_cost;
  }

private:
  const MachineModel& machine_;
};

}  // namespace peak::sim
