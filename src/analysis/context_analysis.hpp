#pragma once

/// \file context_analysis.hpp
/// The paper's context-variable analysis (Figure 1). Starting from every
/// control statement (conditional branch) of the tuning section, it walks
/// UD chains backwards to the section inputs. Inputs that influence control
/// flow are the *context variables*; they determine the section's workload.
/// CBR is applicable only if every context variable is scalar, where
/// "scalar" admits three shapes (Section 2.2):
///   1. plain scalar variables,
///   2. array references with constant subscripts,
///   3. memory references through pointers that are not changed within the
///      tuning section (established via simple points-to analysis).

#include <cstdint>
#include <string>
#include <vector>

#include "ir/function.hpp"
#include "ir/points_to.hpp"
#include "ir/use_def.hpp"

namespace peak::analysis {

/// Shape of one context-set member.
enum class ContextVarKind : std::uint8_t {
  kScalar,        ///< plain scalar variable
  kElement,       ///< array element with constant subscript
  kArrayContent,  ///< whole array read with varying subscripts but never
                  ///< written by the TS; admissible only if the profile
                  ///< proves its contents are a run-time constant
};

/// One member of the context set.
struct ContextVar {
  ContextVarKind kind = ContextVarKind::kScalar;
  ir::VarId var = ir::kNoVar;
  std::int64_t element = -1;   ///< >= 0 for kElement
  bool via_pointer = false;

  friend bool operator==(const ContextVar&, const ContextVar&) = default;
  friend auto operator<=>(const ContextVar&, const ContextVar&) = default;
};

struct ContextAnalysisResult {
  bool cbr_applicable = false;
  std::vector<ContextVar> context_vars;  ///< sorted, deduplicated
  std::string failure_reason;  ///< set when !cbr_applicable

  /// True when kArrayContent members exist: CBR remains applicable only if
  /// the profile run shows those arrays carry identical contents in every
  /// invocation (the paper's run-time-constant elimination, Section 2.2).
  [[nodiscard]] bool needs_runtime_constant_check() const;

  /// Render "n, lo" style listing for reports.
  [[nodiscard]] std::string describe(const ir::Function& fn) const;
};

/// Run the Figure 1 algorithm. `pt` and `ud` must be built over `fn`.
ContextAnalysisResult analyze_context_variables(const ir::Function& fn,
                                                const ir::PointsTo& pt,
                                                const ir::UseDefChains& ud);

/// Convenience overload constructing the prerequisite analyses.
ContextAnalysisResult analyze_context_variables(const ir::Function& fn);

}  // namespace peak::analysis
