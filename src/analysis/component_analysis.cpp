#include "analysis/component_analysis.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/check.hpp"

namespace peak::analysis {

namespace {

double dot(std::span<const double> a, std::span<const double> b) {
  PEAK_DCHECK(a.size() == b.size());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm(std::span<const double> a) { return std::sqrt(dot(a, a)); }

}  // namespace

std::vector<double> ComponentModel::count_row(
    std::span<const std::uint64_t> block_entries) const {
  std::vector<double> row;
  row.reserve(num_components());
  for (const Component& comp : varying) {
    PEAK_CHECK(comp.representative < block_entries.size(),
               "count row shorter than the block space");
    row.push_back(static_cast<double>(block_entries[comp.representative]));
  }
  row.push_back(1.0);  // constant component
  return row;
}

ComponentModel analyze_components(
    const ir::Function& fn,
    const std::vector<std::vector<std::uint64_t>>& profiles,
    const ComponentModelOptions& options) {
  ComponentModel model;
  const std::size_t nb = fn.num_blocks();
  if (profiles.size() < 2) {
    model.failure_reason = "profile has fewer than 2 invocations";
    return model;
  }
  for (const auto& row : profiles)
    PEAK_CHECK(row.size() == nb, "profile row arity mismatch");

  // Transpose: per-block count series.
  std::vector<std::vector<double>> series(nb,
                                          std::vector<double>(profiles.size()));
  for (std::size_t j = 0; j < profiles.size(); ++j)
    for (std::size_t b = 0; b < nb; ++b)
      series[b][j] = static_cast<double>(profiles[j][b]);

  // Classify constant blocks (paper: "components that exhibit constant
  // behavior are put into the constant component"). Small-workload blocks
  // are folded the same way when the option is enabled.
  std::vector<bool> is_constant(nb, false);
  double max_total = 0.0;
  std::vector<double> totals(nb, 0.0);
  for (std::size_t b = 0; b < nb; ++b) {
    totals[b] = std::accumulate(series[b].begin(), series[b].end(), 0.0);
    max_total = std::max(max_total, totals[b]);
  }
  for (std::size_t b = 0; b < nb; ++b) {
    const bool constant =
        std::all_of(series[b].begin(), series[b].end(),
                    [&](double v) { return v == series[b][0]; });
    const bool small = max_total > 0.0 &&
                       totals[b] < options.small_block_fraction * max_total;
    is_constant[b] = constant || small;
  }

  // Greedy basis selection over the varying count series. The constant
  // (all-ones) direction is always in the basis — it is the constant
  // component. Heavier blocks are preferred as representatives so the
  // component counts are the loop-body counters one would instrument.
  std::vector<std::size_t> varying_blocks;
  for (std::size_t b = 0; b < nb; ++b)
    if (!is_constant[b]) varying_blocks.push_back(b);
  std::sort(varying_blocks.begin(), varying_blocks.end(),
            [&](std::size_t a, std::size_t b) {
              return totals[a] != totals[b] ? totals[a] > totals[b] : a < b;
            });

  const std::size_t nsamples = profiles.size();
  std::vector<std::vector<double>> basis;  // orthonormal
  {
    std::vector<double> ones(nsamples,
                             1.0 / std::sqrt(static_cast<double>(nsamples)));
    basis.push_back(std::move(ones));
  }

  for (std::size_t b : varying_blocks) {
    // Residual of this block's series after projecting onto the basis.
    std::vector<double> residual = series[b];
    for (const auto& q : basis) {
      const double c = dot(residual, q);
      for (std::size_t i = 0; i < nsamples; ++i) residual[i] -= c * q[i];
    }
    const double scale = norm(series[b]);
    if (scale > 0.0 &&
        norm(residual) > options.affine_tolerance * scale) {
      Component comp;
      comp.representative = static_cast<ir::BlockId>(b);
      comp.blocks.push_back(static_cast<ir::BlockId>(b));
      model.varying.push_back(std::move(comp));
      const double rnorm = norm(residual);
      for (double& v : residual) v /= rnorm;
      basis.push_back(std::move(residual));
    } else {
      // Linearly dependent: fold into the component it tracks closest.
      std::size_t best = model.varying.size();
      double best_corr = 0.0;
      for (std::size_t ci = 0; ci < model.varying.size(); ++ci) {
        const auto& rep = series[model.varying[ci].representative];
        const double denom = norm(rep) * scale;
        if (denom == 0.0) continue;
        const double corr = std::fabs(dot(series[b], rep)) / denom;
        if (corr > best_corr) {
          best_corr = corr;
          best = ci;
        }
      }
      if (best < model.varying.size())
        model.varying[best].blocks.push_back(static_cast<ir::BlockId>(b));
      else
        is_constant[b] = true;  // tracks only the constant direction
    }
  }
  // Keep components in block order for stable counter numbering.
  std::sort(model.varying.begin(), model.varying.end(),
            [](const Component& a, const Component& b) {
              return a.representative < b.representative;
            });

  for (std::size_t b = 0; b < nb; ++b)
    if (is_constant[b])
      model.constant_blocks.push_back(static_cast<ir::BlockId>(b));

  if (model.num_components() > options.max_components) {
    model.failure_reason =
        "model needs " + std::to_string(model.num_components()) +
        " components (max " + std::to_string(options.max_components) + ")";
    model.mbr_applicable = false;
    return model;
  }
  model.mbr_applicable = true;
  return model;
}

}  // namespace peak::analysis
