#pragma once

/// \file runtime_constants.hpp
/// Elimination of unnecessary context variables (paper Section 2.2, last
/// paragraph): a context variable whose value is identical across *all*
/// invocations of the tuning section is a run-time constant — it cannot
/// distinguish workloads, so it is removed from the context set. The check
/// requires observed values, which the offline scenario obtains from the
/// profile run.

#include <vector>

#include "analysis/context_analysis.hpp"

namespace peak::analysis {

/// Values of the context variables at one TS invocation, in the same order
/// as ContextAnalysisResult::context_vars.
using ContextValues = std::vector<double>;

struct RuntimeConstantResult {
  std::vector<ContextVar> kept;      ///< still-varying context variables
  std::vector<ContextVar> constant;  ///< pruned run-time constants
  /// Index map: kept[i] corresponds to original column column_of_kept[i].
  std::vector<std::size_t> column_of_kept;
};

/// Partition context variables into varying and run-time-constant sets
/// based on the profiled per-invocation values (rows of `observations`).
RuntimeConstantResult prune_runtime_constants(
    const std::vector<ContextVar>& context_vars,
    const std::vector<ContextValues>& observations);

/// Project an observation onto the kept columns (the runtime context key).
ContextValues project_context(const RuntimeConstantResult& pruning,
                              const ContextValues& full);

}  // namespace peak::analysis
