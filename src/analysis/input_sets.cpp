#include "analysis/input_sets.hpp"

#include <sstream>

namespace peak::analysis {

namespace {

std::size_t bytes_of(const ir::Function& fn,
                     const std::vector<ir::VarId>& vars) {
  std::size_t total = 0;
  for (ir::VarId v : vars) {
    const ir::VarInfo& info = fn.var(v);
    total += info.kind == ir::VarKind::kArray
                 ? info.array_size * sizeof(double)
                 : sizeof(double);
  }
  return total;
}

}  // namespace

std::size_t InputSetInfo::input_bytes(const ir::Function& fn) const {
  return bytes_of(fn, input);
}

std::size_t InputSetInfo::modified_input_bytes(
    const ir::Function& fn) const {
  return bytes_of(fn, modified_input);
}

std::string InputSetInfo::describe(const ir::Function& fn) const {
  std::ostringstream os;
  auto list = [&](const char* label, const std::vector<ir::VarId>& vars) {
    os << label << "={";
    bool first = true;
    for (ir::VarId v : vars) {
      if (!first) os << ", ";
      first = false;
      os << fn.var(v).name;
    }
    os << "}";
  };
  list("Input", input);
  os << ' ';
  list("Def", defs);
  os << ' ';
  list("ModifiedInput", modified_input);
  return os.str();
}

InputSetInfo analyze_input_sets(const ir::Function& fn,
                                const ir::PointsTo& pt) {
  InputSetInfo info;
  const ir::Liveness live(fn, pt);
  info.input = live.input_set();
  info.defs = ir::def_set(fn, pt);
  info.modified_input = ir::modified_input_set(fn, pt);
  return info;
}

InputSetInfo analyze_input_sets(const ir::Function& fn) {
  const ir::PointsTo pt(fn);
  return analyze_input_sets(fn, pt);
}

std::size_t CheckpointRegion::bytes(const ir::Function& fn) const {
  if (fn.var(var).kind != ir::VarKind::kArray) return sizeof(double);
  if (whole) return fn.var(var).array_size * sizeof(double);
  return hi >= lo ? (hi - lo + 1) * sizeof(double) : 0;
}

std::size_t CheckpointPlan::bytes(const ir::Function& fn) const {
  std::size_t total = 0;
  for (const CheckpointRegion& r : regions) total += r.bytes(fn);
  return total;
}

std::string CheckpointPlan::describe(const ir::Function& fn) const {
  std::ostringstream os;
  bool first = true;
  for (const CheckpointRegion& r : regions) {
    if (!first) os << ", ";
    first = false;
    os << fn.var(r.var).name;
    if (fn.var(r.var).kind == ir::VarKind::kArray) {
      if (r.whole)
        os << "[*]";
      else
        os << '[' << r.lo << ".." << r.hi << ']';
    }
  }
  return os.str();
}

CheckpointPlan plan_checkpoint(const ir::Function& fn,
                               const InputSetInfo& inputs,
                               const ir::RangeAnalysis& ranges) {
  CheckpointPlan plan;
  const auto& written = ranges.written_ranges();
  for (ir::VarId v : inputs.modified_input) {
    CheckpointRegion region;
    region.var = v;
    if (fn.var(v).kind == ir::VarKind::kArray) {
      const auto it = written.find(v);
      if (it != written.end() && it->second.bounded &&
          it->second.hi >= it->second.lo) {
        region.whole = false;
        region.lo = it->second.lo;
        region.hi = it->second.hi;
      }
    }
    plan.regions.push_back(region);
  }
  return plan;
}

}  // namespace peak::analysis
