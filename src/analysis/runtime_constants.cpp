#include "analysis/runtime_constants.hpp"

#include "support/check.hpp"

namespace peak::analysis {

RuntimeConstantResult prune_runtime_constants(
    const std::vector<ContextVar>& context_vars,
    const std::vector<ContextValues>& observations) {
  RuntimeConstantResult result;
  if (observations.empty()) {
    // No evidence: keep everything (conservative — more contexts, never a
    // wrong merge).
    result.kept = context_vars;
    result.column_of_kept.resize(context_vars.size());
    for (std::size_t i = 0; i < context_vars.size(); ++i)
      result.column_of_kept[i] = i;
    return result;
  }

  for (const ContextValues& row : observations)
    PEAK_CHECK(row.size() == context_vars.size(),
               "observation arity mismatch");

  for (std::size_t c = 0; c < context_vars.size(); ++c) {
    const double first = observations.front()[c];
    bool varies = false;
    for (const ContextValues& row : observations) {
      if (row[c] != first) {
        varies = true;
        break;
      }
    }
    if (varies) {
      result.kept.push_back(context_vars[c]);
      result.column_of_kept.push_back(c);
    } else {
      result.constant.push_back(context_vars[c]);
    }
  }
  return result;
}

ContextValues project_context(const RuntimeConstantResult& pruning,
                              const ContextValues& full) {
  ContextValues out;
  out.reserve(pruning.column_of_kept.size());
  for (std::size_t col : pruning.column_of_kept) {
    PEAK_CHECK(col < full.size(), "context projection out of range");
    out.push_back(full[col]);
  }
  return out;
}

}  // namespace peak::analysis
