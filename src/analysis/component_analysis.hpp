#pragma once

/// \file component_analysis.hpp
/// MBR component analysis (paper Section 2.3). Every basic block is a
/// candidate component of the execution-time model T_TS = Σ T_b · C_b.
/// From a profile run's per-invocation block-entry counts, blocks whose
/// counts are affinely dependent on each other (C_b1 = α·C_b2 + β for all
/// observed invocations) are merged into one component; blocks with
/// constant counts fold into the constant component (which always exists,
/// with C_n = 1). The result is the compact model MBR fits at tuning time.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "ir/function.hpp"

namespace peak::analysis {

struct ComponentModelOptions {
  /// MBR is skipped when the model needs more components than this — the
  /// regression would need too many invocations to converge (paper §2.3).
  std::size_t max_components = 8;
  /// A block folds into the existing components when its count series is
  /// a linear combination of theirs to within this relative tolerance.
  double affine_tolerance = 1e-7;
  /// Blocks whose total profiled entries fall below this fraction of the
  /// busiest block are treated as constant-overhead (the paper's "small
  /// workload in conditional statements" simplification).
  double small_block_fraction = 0.0;
};

struct Component {
  /// Blocks folded into this component (the representative plus blocks
  /// whose counts are linear combinations dominated by it).
  std::vector<ir::BlockId> blocks;
  ir::BlockId representative = ir::kNoBlock;  ///< count source
};

struct ComponentModel {
  /// Varying components, in representative-block order. The constant
  /// component is implicit and always last in count vectors.
  ///
  /// The merge criterion generalizes the paper's pairwise test
  /// C_b1 = α·C_b2 + β: the representatives form a *basis* of the count
  /// space, so every other block's count series is a linear combination
  /// of component counts (plus the constant). Folding it is sound because
  /// Σ_b T_b·C_b = Σ_i (Σ_b T_b·λ_bi)·C_i — the block's time spreads over
  /// the component times.
  std::vector<Component> varying;
  std::vector<ir::BlockId> constant_blocks;
  bool mbr_applicable = false;
  std::string failure_reason;

  /// Number of regression columns: varying components + the constant one.
  [[nodiscard]] std::size_t num_components() const {
    return varying.size() + 1;
  }

  /// Build the component-count row for one invocation from raw per-block
  /// entry counts (the trailing constant column is 1).
  [[nodiscard]] std::vector<double> count_row(
      std::span<const std::uint64_t> block_entries) const;
};

/// Derive the component model from profiled counts.
/// `profiles[j][b]` = entries of block b during invocation j.
ComponentModel analyze_components(
    const ir::Function& fn,
    const std::vector<std::vector<std::uint64_t>>& profiles,
    const ComponentModelOptions& options = {});

}  // namespace peak::analysis
