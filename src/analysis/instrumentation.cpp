#include "analysis/instrumentation.hpp"

#include <algorithm>

namespace peak::analysis {

ir::Function instrument_all_blocks(const ir::Function& fn) {
  ir::Function out = fn;  // value type: symbol table, exprs, blocks copy
  for (ir::BlockId b = 0; b < out.num_blocks(); ++b) {
    ir::Stmt s;
    s.kind = ir::StmtKind::kCounter;
    s.counter_id = b;
    auto& stmts = out.block(b).stmts;
    stmts.insert(stmts.begin(), std::move(s));
  }
  return out;
}

ir::Function instrument_components(const ir::Function& fn,
                                   const ComponentModel& model) {
  ir::Function out = fn;
  for (std::size_t i = 0; i < model.varying.size(); ++i) {
    ir::Stmt s;
    s.kind = ir::StmtKind::kCounter;
    s.counter_id = static_cast<std::uint32_t>(i);
    auto& stmts = out.block(model.varying[i].representative).stmts;
    stmts.insert(stmts.begin(), std::move(s));
  }
  return out;
}

ir::Function strip_counters(const ir::Function& fn) {
  ir::Function out = fn;
  for (ir::BlockId b = 0; b < out.num_blocks(); ++b) {
    auto& stmts = out.block(b).stmts;
    stmts.erase(std::remove_if(stmts.begin(), stmts.end(),
                               [](const ir::Stmt& s) {
                                 return s.kind == ir::StmtKind::kCounter;
                               }),
                stmts.end());
  }
  return out;
}

std::size_t count_counter_stmts(const ir::Function& fn) {
  std::size_t n = 0;
  for (ir::BlockId b = 0; b < fn.num_blocks(); ++b)
    for (const ir::Stmt& s : fn.block(b).stmts)
      if (s.kind == ir::StmtKind::kCounter) ++n;
  return n;
}

}  // namespace peak::analysis
