#pragma once

/// \file input_sets.hpp
/// RBR's data-set analysis (paper Section 2.4): Input(TS) via liveness,
/// Def(TS), and Modified_Input(TS) = Input ∩ Def — the only state that must
/// be checkpointed before and restored between the two timed executions.
/// The improved RBR saves Modified_Input instead of the full input set,
/// which is one of the paper's three overhead reductions.

#include <string>
#include <vector>

#include "ir/function.hpp"
#include "ir/liveness.hpp"
#include "ir/points_to.hpp"
#include "ir/range_analysis.hpp"

namespace peak::analysis {

struct InputSetInfo {
  std::vector<ir::VarId> input;           ///< LiveIn(entry)
  std::vector<ir::VarId> defs;            ///< Def(TS)
  std::vector<ir::VarId> modified_input;  ///< Input ∩ Def

  /// Bytes the basic method would checkpoint (full input set) vs the
  /// improved method (modified input only), under the memory image sizes
  /// of `fn`. Quantifies the paper's save/restore overhead reduction.
  [[nodiscard]] std::size_t input_bytes(const ir::Function& fn) const;
  [[nodiscard]] std::size_t modified_input_bytes(
      const ir::Function& fn) const;

  [[nodiscard]] std::string describe(const ir::Function& fn) const;
};

InputSetInfo analyze_input_sets(const ir::Function& fn,
                                const ir::PointsTo& pt);
InputSetInfo analyze_input_sets(const ir::Function& fn);

/// One region of the RBR checkpoint: a scalar, a whole array, or — when
/// symbolic range analysis bounds every store — just the written slice.
struct CheckpointRegion {
  ir::VarId var = ir::kNoVar;
  std::size_t lo = 0;   ///< first array element (0 for scalars)
  std::size_t hi = 0;   ///< last array element, inclusive
  bool whole = true;    ///< checkpoint the entire variable

  [[nodiscard]] std::size_t bytes(const ir::Function& fn) const;
};

/// The concrete save/restore plan for the improved RBR method (paper
/// §2.4.2): Modified_Input(TS) narrowed per array to the provably written
/// index range. This is the paper's cited symbolic-range-analysis
/// optimization for regular data accesses [1].
struct CheckpointPlan {
  std::vector<CheckpointRegion> regions;

  [[nodiscard]] std::size_t bytes(const ir::Function& fn) const;
  [[nodiscard]] std::string describe(const ir::Function& fn) const;
};

/// Build the plan from the modified-input set and a range analysis seeded
/// with profile-observed parameter bounds.
CheckpointPlan plan_checkpoint(const ir::Function& fn,
                               const InputSetInfo& inputs,
                               const ir::RangeAnalysis& ranges);

}  // namespace peak::analysis
