#pragma once

/// \file ts_partitioner.hpp
/// Tuning-section selection and eligibility screening (paper Sections 2.4
/// and 4.1). TS's are the most time-consuming functions/loops according to
/// an execution profile; RBR-eligible sections must not call library
/// functions with side effects (malloc, free, rand, I/O) because those
/// cannot be rolled back by restoring Modified_Input.

#include <string>
#include <vector>

#include "ir/function.hpp"

namespace peak::analysis {

/// Library routines whose effects escape the TS memory image.
bool callee_has_side_effects(const std::string& callee);

struct RbrScreenResult {
  bool eligible = true;
  std::vector<std::string> blocking_calls;  ///< offending callees
};

/// Check every call site of the section against the side-effect table.
RbrScreenResult screen_for_rbr(const ir::Function& fn);

/// Profile entry for one candidate section.
struct TsCandidate {
  std::string name;
  double time_fraction = 0.0;    ///< share of whole-program time
  std::uint64_t invocations = 0;
};

/// Pick tuning sections: sort by time share, keep those above the
/// threshold, stopping once `cumulative_target` of program time is covered.
std::vector<TsCandidate> select_tuning_sections(
    std::vector<TsCandidate> candidates, double min_time_fraction = 0.05,
    double cumulative_target = 0.95);

}  // namespace peak::analysis
