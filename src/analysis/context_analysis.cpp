#include "analysis/context_analysis.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "ir/liveness.hpp"

#include "support/check.hpp"

namespace peak::analysis {

namespace {

using ir::BlockId;
using ir::ExprId;
using ir::ExprOp;
using ir::Function;
using ir::kNoExpr;
using ir::Stmt;
using ir::StmtKind;
using ir::VarId;
using ir::VarKind;

/// A use extracted from an expression, classified per the paper's scalar
/// taxonomy.
struct UseRef {
  enum class Kind {
    kScalar,         ///< plain scalar (or pointer value)
    kArrayConst,     ///< array[const]
    kArrayVarying,   ///< array[expr] — non-scalar
    kDerefConst,     ///< (*ptr)[const]
    kDerefVarying,   ///< (*ptr)[expr] — non-scalar
  };
  Kind kind = Kind::kScalar;
  VarId var = ir::kNoVar;
  std::int64_t element = -1;
};

void collect_uses(const Function& fn, ExprId e, std::vector<UseRef>& out) {
  if (e == kNoExpr) return;
  const ir::Expr& node = fn.expr(e);
  switch (node.op) {
    case ExprOp::kVarRef:
      out.push_back({UseRef::Kind::kScalar, node.var, -1});
      return;
    case ExprOp::kArrayRef: {
      const ir::Expr& idx = fn.expr(node.lhs);
      if (idx.op == ExprOp::kConst) {
        out.push_back({UseRef::Kind::kArrayConst, node.var,
                       static_cast<std::int64_t>(idx.constant)});
      } else {
        out.push_back({UseRef::Kind::kArrayVarying, node.var, -1});
        collect_uses(fn, node.lhs, out);
      }
      return;
    }
    case ExprOp::kDeref: {
      const ir::Expr& idx = fn.expr(node.lhs);
      if (idx.op == ExprOp::kConst) {
        out.push_back({UseRef::Kind::kDerefConst, node.var,
                       static_cast<std::int64_t>(idx.constant)});
      } else {
        out.push_back({UseRef::Kind::kDerefVarying, node.var, -1});
        collect_uses(fn, node.lhs, out);
      }
      return;
    }
    case ExprOp::kAddressOf:
      return;  // address formation reads no data
    default:
      collect_uses(fn, node.lhs, out);
      collect_uses(fn, node.rhs, out);
      return;
  }
}

/// Uses appearing in a statement (rhs plus any index expressions).
void stmt_uses(const Function& fn, const Stmt& s, std::vector<UseRef>& out) {
  switch (s.kind) {
    case StmtKind::kAssign:
      collect_uses(fn, s.rhs, out);
      if (!s.lhs.is_scalar()) {
        collect_uses(fn, s.lhs.index, out);
        if (s.lhs.via_pointer)
          out.push_back({UseRef::Kind::kScalar, s.lhs.var, -1});
      }
      break;
    case StmtKind::kCall:
      for (ExprId a : s.args) collect_uses(fn, a, out);
      break;
    default:
      break;
  }
}

class Walker {
public:
  Walker(const Function& fn, const ir::PointsTo& pt,
         const ir::UseDefChains& ud)
      : fn_(fn), pt_(pt), ud_(ud) {
    std::set<VarId> defined;
    for (VarId v : ir::def_set(fn, pt)) defined.insert(v);
    defined_ = std::move(defined);
  }

  /// Figure 1, GetStmtContextSet: returns false when a non-scalar context
  /// variable is encountered.
  bool visit_use(const UseRef& use, BlockId block, std::uint32_t stmt_idx) {
    switch (use.kind) {
      case UseRef::Kind::kScalar:
        return visit_scalar(use.var, block, stmt_idx);
      case UseRef::Kind::kArrayConst:
        // Scalar-like only when the element cannot be redefined inside the
        // TS (the array is never stored to).
        if (defined_.contains(use.var)) {
          fail("array '" + fn_.var(use.var).name +
               "' has constant-subscript reads but is modified in the TS");
          return false;
        }
        context_.insert(
            {ContextVarKind::kElement, use.var, use.element, false});
        return true;
      case UseRef::Kind::kDerefConst:
        if (pt_.pointer_modified(use.var)) {
          fail("pointer '" + fn_.var(use.var).name +
               "' changes within the TS");
          return false;
        }
        context_.insert(
            {ContextVarKind::kElement, use.var, use.element, true});
        return true;
      case UseRef::Kind::kArrayVarying:
        // A whole array feeding control flow is non-scalar — unless the TS
        // never writes it, in which case its contents may turn out to be a
        // run-time constant (checked against the profile; Section 2.2).
        if (defined_.contains(use.var)) {
          fail("array '" + fn_.var(use.var).name +
               "' is both read by control flow and modified in the TS");
          return false;
        }
        context_.insert(
            {ContextVarKind::kArrayContent, use.var, -1, false});
        return true;
      case UseRef::Kind::kDerefVarying: {
        if (pt_.pointer_modified(use.var)) {
          fail("pointer '" + fn_.var(use.var).name +
               "' dereferenced with varying subscript changes in the TS");
          return false;
        }
        bool pointee_defined = pt_.unknown(use.var);
        for (ir::VarId t : pt_.may_store_targets(use.var))
          pointee_defined |= defined_.contains(t);
        if (pointee_defined) {
          fail("pointer '" + fn_.var(use.var).name +
               "' may reference data modified in the TS");
          return false;
        }
        context_.insert(
            {ContextVarKind::kArrayContent, use.var, -1, true});
        return true;
      }
    }
    return false;
  }

  [[nodiscard]] const std::set<ContextVar>& context() const {
    return context_;
  }
  [[nodiscard]] const std::string& failure() const { return failure_; }

private:
  bool visit_scalar(VarId v, BlockId block, std::uint32_t stmt_idx) {
    for (const ir::DefSite& def : ud_.reaching_defs(v, block, stmt_idx)) {
      if (def.is_entry) {
        // v ∈ Input(TS): admissible iff scalar-kind (pointers qualify —
        // their *value* is a scalar; the data behind them is handled when
        // the pointer is dereferenced).
        if (fn_.var(v).kind == VarKind::kArray) {
          fail("whole array '" + fn_.var(v).name + "' flows into control");
          return false;
        }
        context_.insert({ContextVarKind::kScalar, v, -1, false});
        continue;
      }
      // Avoid loops: a visited definition statement is already expanded.
      const auto key = std::make_pair(def.block, def.stmt);
      if (!visited_.insert(key).second) continue;

      const Stmt& m = fn_.block(def.block).stmts[def.stmt];
      std::vector<UseRef> uses;
      stmt_uses(fn_, m, uses);
      for (const UseRef& r : uses)
        if (!visit_use(r, def.block, def.stmt)) return false;
    }
    return true;
  }

  void fail(std::string reason) {
    if (failure_.empty()) failure_ = std::move(reason);
  }

  const Function& fn_;
  const ir::PointsTo& pt_;
  const ir::UseDefChains& ud_;
  std::set<ContextVar> context_;
  std::set<std::pair<BlockId, std::uint32_t>> visited_;
  std::set<VarId> defined_;
  std::string failure_;
};

}  // namespace

ContextAnalysisResult analyze_context_variables(const ir::Function& fn,
                                                const ir::PointsTo& pt,
                                                const ir::UseDefChains& ud) {
  Walker walker(fn, pt, ud);
  ContextAnalysisResult result;

  for (BlockId b = 0; b < fn.num_blocks(); ++b) {
    const ir::BasicBlock& bb = fn.block(b);
    if (bb.term.kind != ir::TermKind::kBranch) continue;
    // The control statement sits at the end of the block; its uses see all
    // definitions made in the block body.
    std::vector<UseRef> uses;
    collect_uses(fn, bb.term.cond, uses);
    const auto term_pos = static_cast<std::uint32_t>(bb.stmts.size());
    for (const UseRef& u : uses) {
      if (!walker.visit_use(u, b, term_pos)) {
        result.cbr_applicable = false;
        result.failure_reason = walker.failure();
        return result;
      }
    }
  }

  result.cbr_applicable = true;
  result.context_vars.assign(walker.context().begin(),
                             walker.context().end());
  return result;
}

ContextAnalysisResult analyze_context_variables(const ir::Function& fn) {
  const ir::PointsTo pt(fn);
  const ir::UseDefChains ud(fn, pt);
  return analyze_context_variables(fn, pt, ud);
}

bool ContextAnalysisResult::needs_runtime_constant_check() const {
  for (const ContextVar& cv : context_vars)
    if (cv.kind == ContextVarKind::kArrayContent) return true;
  return false;
}

std::string ContextAnalysisResult::describe(const ir::Function& fn) const {
  if (!cbr_applicable) return "not applicable: " + failure_reason;
  std::ostringstream os;
  bool first = true;
  for (const ContextVar& cv : context_vars) {
    if (!first) os << ", ";
    first = false;
    if (cv.via_pointer) os << "(*";
    os << fn.var(cv.var).name;
    if (cv.via_pointer) os << ")";
    if (cv.kind == ContextVarKind::kElement) os << '[' << cv.element << ']';
    if (cv.kind == ContextVarKind::kArrayContent) os << "[*]";
  }
  return os.str();
}

}  // namespace peak::analysis
