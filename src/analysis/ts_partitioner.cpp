#include "analysis/ts_partitioner.hpp"

#include <algorithm>
#include <array>

namespace peak::analysis {

bool callee_has_side_effects(const std::string& callee) {
  static constexpr std::array<const char*, 14> kTable = {
      "malloc", "free",   "realloc", "calloc", "rand", "srand", "random",
      "printf", "fprintf", "fwrite",  "fread",  "open", "write", "read",
  };
  return std::any_of(kTable.begin(), kTable.end(),
                     [&](const char* name) { return callee == name; });
}

RbrScreenResult screen_for_rbr(const ir::Function& fn) {
  RbrScreenResult result;
  for (ir::BlockId b = 0; b < fn.num_blocks(); ++b) {
    for (const ir::Stmt& s : fn.block(b).stmts) {
      if (s.kind != ir::StmtKind::kCall) continue;
      if (callee_has_side_effects(s.callee)) {
        result.eligible = false;
        result.blocking_calls.push_back(s.callee);
      }
    }
  }
  return result;
}

std::vector<TsCandidate> select_tuning_sections(
    std::vector<TsCandidate> candidates, double min_time_fraction,
    double cumulative_target) {
  std::sort(candidates.begin(), candidates.end(),
            [](const TsCandidate& a, const TsCandidate& b) {
              return a.time_fraction > b.time_fraction;
            });
  std::vector<TsCandidate> selected;
  double covered = 0.0;
  for (TsCandidate& c : candidates) {
    if (c.time_fraction < min_time_fraction) break;
    if (covered >= cumulative_target) break;
    covered += c.time_fraction;
    selected.push_back(std::move(c));
  }
  return selected;
}

}  // namespace peak::analysis
