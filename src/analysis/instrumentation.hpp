#pragma once

/// \file instrumentation.hpp
/// Counter instrumentation for MBR (paper Section 2.3): blocks whose entry
/// counts cannot be derived at compile time get a counter; after the
/// profile run merges blocks into components, counters for merged blocks
/// are removed and only one counter per varying component remains. The
/// counters add no control or data dependences to the original code.

#include <cstdint>
#include <vector>

#include "analysis/component_analysis.hpp"
#include "ir/function.hpp"

namespace peak::analysis {

/// Instrument every basic block with a counter (counter_id == BlockId).
/// Used for the profile run, before components are known.
ir::Function instrument_all_blocks(const ir::Function& fn);

/// Instrument only the representative block of each varying component,
/// with counter ids 0..n-1 matching the component order — the compact
/// instrumentation that stays live during tuning.
ir::Function instrument_components(const ir::Function& fn,
                                   const ComponentModel& model);

/// Remove every counter statement. PEAK strips instrumentation from the
/// final tuned binary so production runs carry no overhead (Section 4.2).
ir::Function strip_counters(const ir::Function& fn);

/// Number of counter statements present (for tests/reports).
std::size_t count_counter_stmts(const ir::Function& fn);

}  // namespace peak::analysis
