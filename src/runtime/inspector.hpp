#pragma once

/// \file inspector.hpp
/// Write inspector for RBR (paper Section 2.4.2): when compile-time
/// analysis cannot bound Modified_Input(TS) — irregular array or pointer
/// writes — inspector code in the precondition version records the address
/// and old value of each write. Undoing the log afterwards restores the
/// exact pre-invocation state, no matter how irregular the access pattern.
///
/// The inspector plugs into the interpreter as its WriteHook.

#include <cstdint>
#include <set>
#include <vector>

#include "ir/interpreter.hpp"

namespace peak::runtime {

class WriteInspector {
public:
  /// Hook to hand to InterpreterOptions::write_hook.
  ir::WriteHook hook() {
    return [this](ir::VarId array, std::size_t index, double old_value) {
      // First-write wins: later writes to the same slot must not shadow
      // the original value. A linear duplicate scan would be O(n²); the
      // per-slot seen set keeps undo exact.
      const Key key{array, index};
      if (seen_.insert(key).second)
        log_.push_back({array, index, old_value});
    };
  }

  /// Undo all recorded writes (restores original values, any order works
  /// because only first writes are kept).
  void undo(ir::Memory& memory) const {
    for (const Entry& e : log_) memory.array(e.array)[e.index] = e.old_value;
  }

  void clear() {
    log_.clear();
    seen_.clear();
  }

  [[nodiscard]] std::size_t entries() const { return log_.size(); }
  [[nodiscard]] std::size_t bytes() const {
    return log_.size() * sizeof(Entry);
  }

private:
  struct Key {
    ir::VarId array;
    std::size_t index;
    friend bool operator<(const Key& a, const Key& b) {
      return a.array != b.array ? a.array < b.array : a.index < b.index;
    }
  };
  struct Entry {
    ir::VarId array;
    std::size_t index;
    double old_value;
  };

  std::vector<Entry> log_;
  std::set<Key> seen_;
};

}  // namespace peak::runtime
