#include "runtime/version_table.hpp"

#include "support/check.hpp"

namespace peak::runtime {

VersionTable::VersionTable(search::FlagConfig initial_best) {
  best_.id = 0;
  best_.config = std::move(initial_best);
}

std::uint32_t VersionTable::install_experimental(search::FlagConfig config) {
  std::lock_guard lock(mutex_);
  PEAK_CHECK(!experimental_.has_value(),
             "experimental slot already occupied");
  VersionRecord rec;
  rec.id = next_id_++;
  rec.config = std::move(config);
  experimental_ = std::move(rec);
  ++swaps_;
  return experimental_->id;
}

void VersionTable::rate_experimental(double eval, double var) {
  std::lock_guard lock(mutex_);
  PEAK_CHECK(experimental_.has_value(), "no experimental version to rate");
  experimental_->rating = eval;
  experimental_->variance = var;
  experimental_->rated = true;
}

std::uint32_t VersionTable::promote_experimental() {
  std::lock_guard lock(mutex_);
  PEAK_CHECK(experimental_.has_value() && experimental_->rated,
             "promote requires a rated experimental version");
  retired_.push_back(best_);
  best_ = std::move(*experimental_);
  experimental_.reset();
  ++swaps_;
  return best_.id;
}

void VersionTable::retire_experimental() {
  std::lock_guard lock(mutex_);
  PEAK_CHECK(experimental_.has_value(), "no experimental version to retire");
  retired_.push_back(std::move(*experimental_));
  experimental_.reset();
  ++swaps_;
}

VersionRecord VersionTable::best() const {
  std::lock_guard lock(mutex_);
  return best_;
}

std::optional<VersionRecord> VersionTable::experimental() const {
  std::lock_guard lock(mutex_);
  return experimental_;
}

std::vector<VersionRecord> VersionTable::retired() const {
  std::lock_guard lock(mutex_);
  return retired_;
}

std::uint64_t VersionTable::swap_count() const {
  std::lock_guard lock(mutex_);
  return swaps_;
}

}  // namespace peak::runtime
