#include "runtime/snapshot.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace peak::runtime {

namespace {

std::vector<SnapshotRegion> whole_regions(std::vector<ir::VarId> vars) {
  std::vector<SnapshotRegion> out;
  out.reserve(vars.size());
  for (ir::VarId v : vars) out.push_back(SnapshotRegion::all_of(v));
  return out;
}

}  // namespace

MemorySnapshot::MemorySnapshot(const ir::Function& fn,
                               const ir::Memory& memory,
                               std::vector<ir::VarId> regions)
    : MemorySnapshot(fn, memory, whole_regions(std::move(regions))) {}

MemorySnapshot::MemorySnapshot(const ir::Function& fn,
                               const ir::Memory& memory,
                               std::vector<SnapshotRegion> regions)
    : fn_(fn), regions_(std::move(regions)) {
  for (const SnapshotRegion& r : regions_) {
    PEAK_CHECK(r.var < fn.num_vars(),
               "snapshot region outside symbol table");
    if (fn.var(r.var).kind == ir::VarKind::kArray) {
      const std::size_t size = memory.array(r.var).size();
      ArraySlice slice;
      slice.var = r.var;
      slice.lo = r.whole ? 0 : std::min(r.lo, size ? size - 1 : 0);
      slice.hi = r.whole ? (size ? size - 1 : 0)
                         : std::min(r.hi, size ? size - 1 : 0);
      PEAK_CHECK(r.whole || r.lo <= r.hi, "inverted snapshot slice");
      array_slices_.push_back(std::move(slice));
    } else {
      scalar_regions_.push_back(r.var);
    }
  }
  scalar_values_.resize(scalar_regions_.size());
  recapture(memory);
}

void MemorySnapshot::recapture(const ir::Memory& memory) {
  bytes_ = 0;
  for (std::size_t i = 0; i < scalar_regions_.size(); ++i) {
    scalar_values_[i] = memory.scalar(scalar_regions_[i]);
    bytes_ += sizeof(double);
  }
  for (ArraySlice& slice : array_slices_) {
    const auto& src = memory.array(slice.var);
    if (src.empty()) {
      slice.values.clear();
      continue;
    }
    const std::size_t count = slice.hi - slice.lo + 1;
    slice.values.assign(src.begin() + static_cast<std::ptrdiff_t>(slice.lo),
                        src.begin() +
                            static_cast<std::ptrdiff_t>(slice.lo + count));
    bytes_ += count * sizeof(double);
  }
}

void MemorySnapshot::restore(ir::Memory& memory) const {
  PEAK_CHECK(memory.scalars.size() == fn_.num_vars(),
             "memory image does not match snapshot's function");
  for (std::size_t i = 0; i < scalar_regions_.size(); ++i)
    memory.scalar(scalar_regions_[i]) = scalar_values_[i];
  for (const ArraySlice& slice : array_slices_) {
    auto& dst = memory.array(slice.var);
    PEAK_CHECK(slice.lo + slice.values.size() <= dst.size(),
               "snapshot slice exceeds current array size");
    std::copy(slice.values.begin(), slice.values.end(),
              dst.begin() + static_cast<std::ptrdiff_t>(slice.lo));
  }
}

}  // namespace peak::runtime
