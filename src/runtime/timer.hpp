#pragma once

/// \file timer.hpp
/// Timing sources. WallTimer measures real elapsed time for the native
/// kernel path (examples and tests running actual C++ code); VirtualClock
/// accumulates simulated cycles for the simulator path. Both present the
/// same tiny interface so the rating engine is agnostic to the source.

#include <chrono>
#include <cstdint>

namespace peak::runtime {

class WallTimer {
public:
  void start() { t0_ = clock::now(); }

  /// Seconds since start().
  [[nodiscard]] double stop() const {
    return std::chrono::duration<double>(clock::now() - t0_).count();
  }

private:
  using clock = std::chrono::steady_clock;
  clock::time_point t0_{};
};

class VirtualClock {
public:
  void advance(double cycles) { now_ += cycles; }
  [[nodiscard]] double now() const { return now_; }
  void reset() { now_ = 0.0; }

private:
  double now_ = 0.0;
};

}  // namespace peak::runtime
