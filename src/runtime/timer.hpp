#pragma once

/// \file timer.hpp
/// Timing sources. WallTimer measures real elapsed time for the native
/// kernel path (examples and tests running actual C++ code); VirtualClock
/// accumulates simulated cycles for the simulator path. Both present the
/// same tiny interface so the rating engine is agnostic to the source.

#include <chrono>
#include <cstdint>

namespace peak::runtime {

class WallTimer {
public:
  void start() {
    started_ = true;
    t0_ = clock::now();
  }

  /// Seconds since start(); 0.0 if start() was never called (reading an
  /// unstarted timer used to return garbage relative to the epoch).
  [[nodiscard]] double elapsed() const {
    if (!started_) return 0.0;
    return std::chrono::duration<double>(clock::now() - t0_).count();
  }

  [[deprecated("stop() never stopped anything; use elapsed()")]]
  [[nodiscard]] double stop() const {
    return elapsed();
  }

private:
  using clock = std::chrono::steady_clock;
  clock::time_point t0_{};
  bool started_ = false;
};

class VirtualClock {
public:
  void advance(double cycles) { now_ += cycles; }
  [[nodiscard]] double now() const { return now_; }
  void reset() { now_ = 0.0; }

private:
  double now_ = 0.0;
};

}  // namespace peak::runtime
