#pragma once

/// \file version_table.hpp
/// Dynamic version management, modelled on the ADAPT mechanism PEAK builds
/// on (paper Figure 6): for each tuning section both a "best" and an
/// "experimental" version are kept and dynamically swapped in and out.
/// In the original system these are dlopen'ed shared objects; here a
/// version is an optimization configuration plus its rating state, and the
/// swap updates which configuration production invocations dispatch to.
/// The table is thread-safe so an online tuner can swap versions while a
/// worker thread executes the section (the adaptive example does this).

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "search/opt_config.hpp"

namespace peak::runtime {

struct VersionRecord {
  std::uint32_t id = 0;
  search::FlagConfig config;
  double rating = 0.0;       ///< EVAL once rated
  double variance = 0.0;     ///< VAR once rated
  bool rated = false;
};

class VersionTable {
public:
  explicit VersionTable(search::FlagConfig initial_best);

  /// Install a new experimental version; returns its id.
  std::uint32_t install_experimental(search::FlagConfig config);

  /// Record the rating of the current experimental version.
  void rate_experimental(double eval, double var);

  /// Promote the experimental version to best (keeps the old best in the
  /// retired list for the final report). Returns the new best id.
  std::uint32_t promote_experimental();

  /// Drop the experimental version (it lost).
  void retire_experimental();

  [[nodiscard]] VersionRecord best() const;
  [[nodiscard]] std::optional<VersionRecord> experimental() const;
  [[nodiscard]] std::vector<VersionRecord> retired() const;
  [[nodiscard]] std::uint64_t swap_count() const;

private:
  mutable std::mutex mutex_;
  VersionRecord best_;
  std::optional<VersionRecord> experimental_;
  std::vector<VersionRecord> retired_;
  std::uint32_t next_id_ = 1;
  std::uint64_t swaps_ = 0;
};

}  // namespace peak::runtime
