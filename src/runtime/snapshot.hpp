#pragma once

/// \file snapshot.hpp
/// Checkpoint/restore of a tuning section's input state — the "Save the
/// Modified_Input(TS)" / "Restore the Modified_Input(TS)" steps of RBR
/// (paper Figures 3 and 4). A snapshot copies exactly the variables named
/// in its region list, so shrinking Input(TS) to Modified_Input(TS)
/// directly shrinks the checkpoint (the paper's first overhead reduction).

#include <cstddef>
#include <vector>

#include "ir/interpreter.hpp"

namespace peak::runtime {

/// One checkpointed region: a scalar/pointer slot, a whole array, or an
/// array slice [lo, hi] — the output of the symbolic-range-analysis
/// optimization (paper §2.4.2).
struct SnapshotRegion {
  ir::VarId var = ir::kNoVar;
  std::size_t lo = 0;
  std::size_t hi = 0;
  bool whole = true;

  static SnapshotRegion all_of(ir::VarId v) { return {v, 0, 0, true}; }
  static SnapshotRegion slice(ir::VarId v, std::size_t lo,
                              std::size_t hi) {
    return {v, lo, hi, false};
  }
};

class MemorySnapshot {
public:
  /// Capture the listed variables from `memory` (scalars by value, arrays
  /// by full copy, pointers by their binding).
  MemorySnapshot(const ir::Function& fn, const ir::Memory& memory,
                 std::vector<ir::VarId> regions);

  /// Capture fine-grained regions (array slices allowed).
  MemorySnapshot(const ir::Function& fn, const ir::Memory& memory,
                 std::vector<SnapshotRegion> regions);

  /// Write the captured values back. The memory image must come from the
  /// same function (checked).
  void restore(ir::Memory& memory) const;

  /// Re-capture the same regions (cheaper than constructing a new
  /// snapshot: buffers are reused).
  void recapture(const ir::Memory& memory);

  [[nodiscard]] std::size_t bytes() const { return bytes_; }
  [[nodiscard]] const std::vector<SnapshotRegion>& regions() const {
    return regions_;
  }

private:
  struct ArraySlice {
    ir::VarId var;
    std::size_t lo;
    std::size_t hi;  ///< inclusive
    std::vector<double> values;
  };

  const ir::Function& fn_;
  std::vector<SnapshotRegion> regions_;
  std::vector<double> scalar_values_;  ///< parallel to scalar_regions_
  std::vector<ir::VarId> scalar_regions_;
  std::vector<ArraySlice> array_slices_;
  std::size_t bytes_ = 0;
};

}  // namespace peak::runtime
