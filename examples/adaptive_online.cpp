/// \file adaptive_online.cpp
/// The paper's future-work scenario (Section 6): online, dynamically
/// adaptive tuning. The application keeps running in production while the
/// tuner swaps an experimental version into the ADAPT-style version table
/// (Figure 6), rates it against the current best with RBR, and promotes
/// or retires it. Halfway through, the workload changes phase (the
/// dataset scale shifts, flipping which optimization wins — modelled on
/// the MGRID gcse-lm story) and the tuner re-adapts.

#include <cstdio>

#include "core/profile.hpp"
#include "rating/rbr.hpp"
#include "runtime/version_table.hpp"
#include "sim/exec_backend.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace peak;

/// Rate `experimental` against the table's best over the live stream.
rating::Rating rate_online(sim::SimExecutionBackend& backend,
                           const search::FlagConfig& best,
                           const search::FlagConfig& experimental,
                           const workloads::Trace& trace,
                           std::size_t& cursor) {
  rating::WindowPolicy policy;
  policy.min_samples = 12;
  policy.max_samples = 160;
  policy.cv_threshold = 0.004;
  rating::ReexecutionRater rater(policy);
  while (!rater.converged() && !rater.exhausted()) {
    const sim::Invocation& inv =
        trace.invocations[cursor++ % trace.invocations.size()];
    const auto pair = backend.invoke_rbr_pair(best, experimental, inv,
                                              sim::RbrOptions{true});
    rater.add_pair(pair.time_best, pair.time_exp);
  }
  return rater.rating();
}

}  // namespace

int main() {
  std::printf("Online adaptive tuning of MGRID.resid on sparc2 "
              "(phase change mid-run)\n\n");

  const auto workload = workloads::make_workload("MGRID");
  const sim::MachineModel machine = sim::sparc2();
  const auto& space = search::gcc33_o3_space();
  const sim::FlagEffectModel effects(space);
  const std::size_t gcse_lm = *space.index_of("-fgcse-lm");

  runtime::VersionTable table(search::o3_config(space));

  // Two phases: small grids (train-scale), then large grids (ref-scale).
  // The -fgcse-lm effect flips sign between them.
  const workloads::Trace phase1 =
      workload->trace(workloads::DataSet::kTrain, 3);
  const workloads::Trace phase2 =
      workload->trace(workloads::DataSet::kRef, 3);

  for (int phase = 1; phase <= 2; ++phase) {
    const workloads::Trace& trace = phase == 1 ? phase1 : phase2;
    sim::TsTraits traits = workload->traits();
    traits.workload_scale = trace.workload_scale;
    sim::SimExecutionBackend backend(workload->function(), traits,
                                     machine, effects, 17);
    std::size_t cursor = 0;

    std::printf("--- phase %d (workload scale %.1f) ---\n", phase,
                trace.workload_scale);

    // The adaptive tuner probes single-flag removals *and* re-enables of
    // the current best, continuously.
    for (int probe = 0; probe < 2; ++probe) {
      for (std::size_t f = 0; f < space.size(); ++f) {
        const search::FlagConfig best = table.best().config;
        const search::FlagConfig candidate =
            best.with(f, !best.enabled(f));
        table.install_experimental(candidate);
        const rating::Rating r =
            rate_online(backend, best, candidate, trace, cursor);
        table.rate_experimental(r.eval, r.var);
        if (r.converged && r.eval > 1.012) {
          std::printf("  swap in: %s %s (R = %.3f)\n",
                      best.enabled(f) ? "disable" : "enable",
                      space.flag(f).name.c_str(), r.eval);
          table.promote_experimental();
        } else {
          table.retire_experimental();
        }
      }
    }

    const search::FlagConfig& final_best = table.best().config;
    std::printf("  phase %d best removes: %s\n", phase,
                final_best.describe(space, /*invert=*/true).c_str());
    std::printf("  -fgcse-lm is %s\n\n",
                final_best.enabled(gcse_lm) ? "ON" : "OFF");
  }

  std::printf("Version-table swaps over the whole run: %llu\n",
              static_cast<unsigned long long>(table.swap_count()));
  std::printf(
      "\nShape: phase 1 keeps -fgcse-lm (it helps small grids); phase 2 "
      "evicts it\n(it hurts large grids) — the adaptation the offline "
      "scenario cannot do.\n");
  return 0;
}
