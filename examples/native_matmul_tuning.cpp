/// \file native_matmul_tuning.cpp
/// The rating engine on *real* wall-clock timings — no simulator anywhere.
/// Four native C++ matrix-multiply variants (different loop orders and a
/// blocked version) stand in for code versions produced under different
/// optimizations. Following the paper's RBR protocol, each measurement
/// invocation re-executes the base and the experimental variant under the
/// same restored inputs; the relative improvement R = T_base/T_exp feeds
/// the ReexecutionRater until its window converges.
///
/// This is the ATLAS-style scenario from the paper's related work, driven
/// entirely through the library's public rating API.

#include <cstdio>
#include <functional>
#include <vector>

#include "rating/rbr.hpp"
#include "runtime/timer.hpp"
#include "support/rng.hpp"

namespace {

constexpr std::size_t kN = 192;  // matrices are kN x kN (past L1, cache-order sensitive)

using Matrix = std::vector<double>;

// --- the code versions -----------------------------------------------------

void matmul_ijk(const Matrix& a, const Matrix& b, Matrix& c) {
  for (std::size_t i = 0; i < kN; ++i)
    for (std::size_t j = 0; j < kN; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < kN; ++k)
        sum += a[i * kN + k] * b[k * kN + j];
      c[i * kN + j] = sum;
    }
}

void matmul_ikj(const Matrix& a, const Matrix& b, Matrix& c) {
  for (double& x : c) x = 0.0;
  for (std::size_t i = 0; i < kN; ++i)
    for (std::size_t k = 0; k < kN; ++k) {
      const double aik = a[i * kN + k];
      for (std::size_t j = 0; j < kN; ++j)
        c[i * kN + j] += aik * b[k * kN + j];
    }
}

void matmul_jki(const Matrix& a, const Matrix& b, Matrix& c) {
  for (double& x : c) x = 0.0;
  for (std::size_t j = 0; j < kN; ++j)
    for (std::size_t k = 0; k < kN; ++k) {
      const double bkj = b[k * kN + j];
      for (std::size_t i = 0; i < kN; ++i)
        c[i * kN + j] += a[i * kN + k] * bkj;
    }
}

void matmul_blocked(const Matrix& a, const Matrix& b, Matrix& c) {
  constexpr std::size_t kB = 48;
  for (double& x : c) x = 0.0;
  for (std::size_t ii = 0; ii < kN; ii += kB)
    for (std::size_t kk = 0; kk < kN; kk += kB)
      for (std::size_t jj = 0; jj < kN; jj += kB)
        for (std::size_t i = ii; i < ii + kB; ++i)
          for (std::size_t k = kk; k < kk + kB; ++k) {
            const double aik = a[i * kN + k];
            for (std::size_t j = jj; j < jj + kB; ++j)
              c[i * kN + j] += aik * b[k * kN + j];
          }
}

struct Version {
  const char* name;
  std::function<void(const Matrix&, const Matrix&, Matrix&)> run;
};

}  // namespace

int main() {
  using namespace peak;
  std::printf(
      "RBR over real timings: rating matmul variants against the naive "
      "ijk base (%zux%zu matrices)\n\n",
      kN, kN);

  support::Rng rng(2026);
  Matrix a(kN * kN), b(kN * kN), c(kN * kN);

  const Version base{"ijk (base)", matmul_ijk};
  const std::vector<Version> experimental = {
      {"ikj", matmul_ikj},
      {"jki", matmul_jki},
      {"ikj-blocked", matmul_blocked},
  };

  rating::WindowPolicy policy;
  policy.min_samples = 12;
  policy.max_samples = 120;
  policy.cv_threshold = 0.01;

  std::printf("%-14s %-10s %-10s %-8s\n", "version", "EVAL (R)",
              "sqrt(VAR)", "samples");
  double best_r = 1.0;
  const char* best_name = base.name;
  for (const Version& version : experimental) {
    rating::ReexecutionRater rater(policy);
    while (!rater.converged() && !rater.exhausted()) {
      // One "invocation": fresh inputs (the context), then both versions
      // timed under the same data — the inputs are read-only here, so the
      // save/restore step of Figure 4 is a no-op (Modified_Input = ∅).
      for (double& x : a) x = rng.uniform(-1.0, 1.0);
      for (double& x : b) x = rng.uniform(-1.0, 1.0);

      runtime::WallTimer timer;
      timer.start();
      base.run(a, b, c);
      const double t_base = timer.elapsed();
      timer.start();
      version.run(a, b, c);
      const double t_exp = timer.elapsed();
      rater.add_pair(t_base, t_exp);
    }
    const rating::Rating r = rater.rating();
    std::printf("%-14s %-10.3f %-10.4f %-8zu%s\n", version.name, r.eval,
                std::sqrt(r.var), r.samples,
                r.converged ? "" : "  (budget exhausted)");
    if (r.eval > best_r) {
      best_r = r.eval;
      best_name = version.name;
    }
  }

  std::printf("\nWinner: %s (%.1f%% faster than the base)\n", best_name,
              100.0 * (best_r - 1.0));
  return 0;
}
