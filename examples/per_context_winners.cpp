/// \file per_context_winners.cpp
/// §2.2's context-specific winners, live: APSI's radb4 is invoked with
/// three butterfly shapes, and the re-run loop optimization pays off only
/// for the wide one. Per-context tuning finds a different winner per
/// shape; dispatching on the context (what an adaptive system would do)
/// beats deploying the single dominant-context winner.

#include <cstdio>

#include "core/per_context.hpp"
#include "workloads/workload.hpp"

int main() {
  using namespace peak;
  std::printf("Context-specific winners for APSI.radb4 on sparc2\n\n");

  const auto workload = workloads::make_workload("APSI");
  const sim::MachineModel machine = sim::sparc2();
  const sim::FlagEffectModel effects(search::gcc33_o3_space());
  const auto& space = effects.space();

  const core::PerContextOutcome outcome =
      core::tune_per_context(*workload, machine, effects);

  std::printf("%-14s %s\n", "context", "flags removed from -O3");
  for (const auto& [context, config] : outcome.winners) {
    std::string key = "(";
    for (std::size_t i = 0; i < context.size(); ++i) {
      if (i) key += ", ";
      key += std::to_string(static_cast<long>(context[i]));
    }
    key += ")";
    std::printf("%-14s %s\n", key.c_str(),
                config.describe(space, /*invert=*/true).c_str());
  }

  std::printf("\nDeployment on the ref dataset (improvement over -O3):\n");
  std::printf("  single version (dominant context's winner): %6.2f%%\n",
              outcome.single_improvement_pct);
  std::printf("  per-context dispatch:                       %6.2f%%\n",
              outcome.dispatch_improvement_pct);
  std::printf("\nThe dominant context (");
  for (std::size_t i = 0; i < outcome.dominant_context.size(); ++i)
    std::printf("%s%ld", i ? ", " : "",
                static_cast<long>(outcome.dominant_context[i]));
  std::printf(") wants -frerun-loop-opt ON; the narrow shapes want it "
              "OFF —\nno single version serves both, which is the paper's "
              "case for the adaptive scenario.\n");
  return 0;
}
