/// \file mbr_walkthrough.cpp
/// Model-based rating end to end on a synthetic tuning section, built with
/// the public IR builder. Mirrors the paper's Figure 2 but derives
/// everything instead of hard-coding it: instrument every block, profile,
/// merge blocks into components, instrument just the component counters,
/// then collect (Y, C) during "tuning" and solve the regression for T.

#include <cstdio>

#include "analysis/component_analysis.hpp"
#include "analysis/instrumentation.hpp"
#include "ir/builder.hpp"
#include "ir/interpreter.hpp"
#include "ir/print.hpp"
#include "rating/mbr.hpp"
#include "support/rng.hpp"

int main() {
  using namespace peak;

  // --- the tuning section: a loop body (component 1) plus tail code ------
  ir::FunctionBuilder b("example_ts");
  const auto n = b.param_scalar("n");
  const auto data = b.param_array("data", 512, true);
  const auto out = b.param_scalar("out", true);
  const auto i = b.scalar("i");
  b.assign(out, b.c(0.0));
  b.for_loop(i, b.c(0.0), b.v(n), [&] {
    b.assign(out, b.add(b.v(out),
                        b.mul(b.at(data, b.v(i)), b.at(data, b.v(i)))));
  });
  // Tail code: normalize once per invocation.
  b.assign(out, b.div(b.v(out), b.max(b.v(n), b.c(1.0))));
  const ir::Function fn = b.build();
  std::printf("The tuning section:\n%s\n", ir::to_string(fn).c_str());

  // --- profile run: count block entries under varying workloads ----------
  support::Rng rng(7);
  const ir::Function full = analysis::instrument_all_blocks(fn);
  const ir::Interpreter profiler(full);
  std::vector<std::vector<std::uint64_t>> profiles;
  for (int inv = 0; inv < 24; ++inv) {
    ir::Memory mem = ir::Memory::for_function(full);
    mem.scalar(*fn.find_var("n")) =
        static_cast<double>(rng.uniform_int(40, 400));
    for (double& x : mem.array(*fn.find_var("data")))
      x = rng.uniform(-1, 1);
    profiles.push_back(profiler.run(mem).counters);
  }

  const analysis::ComponentModel model =
      analysis::analyze_components(fn, profiles);
  std::printf("Component analysis: %zu varying component(s) + constant "
              "(%zu blocks folded as constant)\n\n",
              model.varying.size(), model.constant_blocks.size());

  // --- tuning-time data collection: Y and C over 40 invocations ----------
  const ir::Function counted = analysis::instrument_components(fn, model);
  const ir::Interpreter tuner(counted);
  rating::MbrProfile mbr_profile;
  mbr_profile.dominant_component = 0;  // the loop body dominates
  rating::ModelBasedRater rater(model.num_components(), mbr_profile);

  std::printf("   invocation   N (counter)   T_TS (cycles)\n");
  for (int inv = 0; inv < 40; ++inv) {
    ir::Memory mem = ir::Memory::for_function(counted);
    const double workload = static_cast<double>(rng.uniform_int(40, 400));
    mem.scalar(*fn.find_var("n")) = workload;
    for (double& x : mem.array(*fn.find_var("data")))
      x = rng.uniform(-1, 1);
    const ir::RunResult run = tuner.run(mem);

    std::vector<double> counts(run.counters.begin(), run.counters.end());
    counts.push_back(1.0);
    // Simulated measurement noise on top of the deterministic cycles.
    const double measured = run.cycles * rng.lognormal(0.01);
    rater.add(counts, measured);
    if (inv < 5)
      std::printf("   %10d   %11.0f   %13.1f\n", inv, counts[0], measured);
  }

  const std::vector<double> t = rater.component_times();
  const rating::Rating r = rater.rating();
  std::printf("\nComponent-time vector T = [ ");
  for (double v : t) std::printf("%.2f ", v);
  std::printf("]\nRating of this version: EVAL = %.2f cycles/iteration "
              "(dominant component), VAR = %.4f%s\n",
              r.eval, r.var, r.converged ? ", converged" : "");
  return 0;
}
