/// \file whole_application.cpp
/// The complete PEAK picture (paper Section 4.1): a program is partitioned
/// into several tuning sections, each carrying a share of whole-program
/// time; PEAK tunes them independently — here in parallel across threads —
/// and the per-section wins combine Amdahl-style into the application's
/// overall improvement. This example treats the four Figure 7 kernels as
/// the hot sections of one synthetic HPC application.

#include <cstdio>

#include "analysis/ts_partitioner.hpp"
#include "core/parallel.hpp"
#include "workloads/workload.hpp"

int main() {
  using namespace peak;
  std::printf("Whole-application tuning: four hot sections, tuned in "
              "parallel\n\n");

  // Step 1 (TS Selector): rank candidate sections by profiled time share
  // and keep the ones worth tuning.
  std::vector<std::unique_ptr<workloads::Workload>> owned;
  std::vector<analysis::TsCandidate> candidates;
  for (const std::string& name : workloads::figure7_benchmarks()) {
    auto w = workloads::make_workload(name);
    // Pretend these are sections of one program: rescale the fractions so
    // they sum below 1 (the remainder is untunable glue code).
    candidates.push_back(
        {w->full_name(), w->ts_time_fraction() * 0.45,
         w->paper_invocations()});
    owned.push_back(std::move(w));
  }
  const auto selected =
      analysis::select_tuning_sections(candidates, 0.02, 0.95);
  std::printf("TS Selector kept %zu sections:\n", selected.size());
  for (const auto& c : selected)
    std::printf("  %-14s %4.1f%% of program time\n", c.name.c_str(),
                100.0 * c.time_fraction);

  // Steps 2-5 in parallel: profile -> consultant -> tune -> evaluate.
  std::vector<const workloads::Workload*> sections;
  sections.reserve(owned.size());
  for (const auto& w : owned) sections.push_back(w.get());

  core::ApplicationOutcome outcome = core::tune_application(
      sections, sim::pentium4(), {}, /*threads=*/4);
  // Match the rescaled shares used above.
  for (auto& s : outcome.sections) s.time_fraction *= 0.45;

  std::printf("\n%-14s %-7s %-10s %-12s\n", "section", "method",
              "improvement", "invocations");
  for (const core::SectionOutcome& s : outcome.sections)
    std::printf("%-14s %-7s %9.2f%% %12zu\n", s.section.c_str(),
                rating::to_string(s.run.method), s.run.ref_improvement_pct,
                s.run.cost.invocations);

  std::printf("\nWhole-program improvement (Amdahl over the section "
              "shares): %.2f%%\n",
              outcome.whole_program_improvement_pct());
  return 0;
}
