/// \file quickstart.cpp
/// PEAK in five minutes: pick a benchmark workload, let the pipeline
/// profile it, choose a rating method, search the 38-flag GCC 3.3 -O3
/// space with Iterative Elimination, and report the tuned configuration.
///
///   $ ./examples/quickstart [SWIM|MGRID|EQUAKE|ART|...] [sparc2|p4]

#include <cstdio>
#include <iostream>

#include "core/peak.hpp"
#include "workloads/workload.hpp"

int main(int argc, char** argv) {
  using namespace peak;
  const std::string benchmark = argc > 1 ? argv[1] : "SWIM";
  const std::string machine_name = argc > 2 ? argv[2] : "sparc2";

  const auto workload = workloads::make_workload(benchmark);
  if (!workload) {
    std::cerr << "unknown benchmark '" << benchmark << "'\n";
    return 1;
  }
  const sim::MachineModel machine =
      machine_name == "p4" ? sim::pentium4() : sim::sparc2();

  std::cout << "Tuning " << workload->full_name() << " on " << machine.name
            << " (offline scenario: tune on train, evaluate on ref)\n\n";

  // Step 1-2 of the pipeline: profile + consultant (run here explicitly so
  // we can narrate the decision; Peak::tune_with_consultant does the same).
  const workloads::Trace train =
      workload->trace(workloads::DataSet::kTrain, /*seed=*/2026);
  const core::ProfileData profile =
      core::profile_workload(*workload, train, machine);
  std::cout << "Context analysis: "
            << profile.context_analysis.describe(workload->function())
            << "\nConsultant: " << profile.decision.rationale
            << "\n  -> initial method: "
            << rating::to_string(profile.decision.initial()) << "\n\n";

  // Steps 3-5: instrument, tune, report.
  core::Peak peak(machine);
  const core::MethodRun run = peak.tune_with_consultant(*workload);

  std::printf("Best configuration found (flags removed from -O3): %s\n",
              run.best_config
                  .describe(peak.effects().space(), /*invert=*/true)
                  .c_str());
  std::printf("Improvement over -O3 on the ref dataset: %.2f%%\n",
              run.ref_improvement_pct);
  std::printf("Tuning cost: %zu TS invocations (%.1f program runs)\n",
              run.cost.invocations, run.cost.program_runs);
  return 0;
}
