/// \file custom_workload.cpp
/// Bringing your own tuning section: define a new workload (a histogram
/// kernel that is not in the SPEC set), plug it into the full PEAK
/// pipeline, and let the analyses decide how to rate it. The histogram's
/// inner branch depends on the data being binned, so the Figure 1 analysis
/// rejects CBR and the run-time-constant check cannot save it — the
/// consultant lands on RBR, and tuning proceeds.

#include <cstdio>

#include "core/peak.hpp"
#include "ir/builder.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace peak;

class HistogramWorkload final : public workloads::WorkloadBase {
public:
  std::string benchmark() const override { return "HISTO"; }
  std::string ts_name() const override { return "bin_count"; }
  rating::Method paper_method() const override {
    return rating::Method::kRBR;  // expectation, verified by the pipeline
  }
  std::uint64_t paper_invocations() const override { return 100'000; }
  double ts_time_fraction() const override { return 0.4; }

  workloads::Trace trace(workloads::DataSet ds,
                         std::uint64_t seed) const override {
    workloads::Trace trace;
    const bool ref = ds == workloads::DataSet::kRef;
    trace.workload_scale = ref ? 1.0 : 0.3;
    const double n = ref ? 600 : 300;
    const std::size_t invocations = ref ? 2000 : 1400;
    const ir::Function& fn = function();
    const ir::VarId v_n = *fn.find_var("n");
    const ir::VarId v_vals = *fn.find_var("values");
    const ir::VarId v_bins = *fn.find_var("bins");

    for (std::size_t it = 0; it < invocations; ++it) {
      sim::Invocation inv;
      inv.id = it + 1;
      inv.context = {n};
      inv.context_determines_time = false;  // skew depends on the data
      const auto inv_seed = support::hash_combine(seed, it + 1);
      inv.irregularity = support::Rng(inv_seed ^ 0x9).lognormal(0.08);
      inv.bind = [v_n, v_vals, v_bins, n, inv_seed](ir::Memory& mem) {
        mem.scalar(v_n) = n;
        support::Rng rng(inv_seed);
        for (double& x : mem.array(v_vals)) x = rng.uniform(0.0, 100.0);
        for (double& x : mem.array(v_bins)) x = 0.0;
      };
      trace.invocations.push_back(std::move(inv));
    }
    return trace;
  }

protected:
  ir::Function build() const override {
    ir::FunctionBuilder b("bin_count");
    const auto n = b.param_scalar("n");
    const auto values = b.param_array("values", 600, true);
    const auto bins = b.param_array("bins", 16);
    const auto i = b.scalar("i");
    const auto v = b.scalar("v", true);
    const auto bin = b.scalar("bin");
    b.for_loop(i, b.c(0.0), b.v(n), [&] {
      b.assign(v, b.at(values, b.v(i)));
      // Saturating bin selection: the branch reads kernel data.
      b.assign(bin, b.floor(b.div(b.v(v), b.c(8.0))));
      b.if_then(b.ge(b.v(bin), b.c(16.0)),
                [&] { b.assign(bin, b.c(15.0)); });
      b.store(bins, b.v(bin), b.add(b.at(bins, b.v(bin)), b.c(1.0)));
    });
    return b.build();
  }

  void adjust_traits(sim::TsTraits& t) const override {
    t.noise_scale = 3.0;
    t.loop_regularity = 0.4;
  }
};

}  // namespace

int main() {
  std::printf("Tuning a user-defined workload (histogram kernel) with the "
              "full PEAK pipeline\n\n");

  HistogramWorkload workload;
  const sim::MachineModel machine = sim::pentium4();

  const workloads::Trace train =
      workload.trace(workloads::DataSet::kTrain, 5);
  const core::ProfileData profile =
      core::profile_workload(workload, train, machine);
  std::printf("Consultant: %s\n  -> method: %s (expected RBR: the branch "
              "reads kernel data)\n\n",
              profile.decision.rationale.c_str(),
              rating::to_string(profile.decision.initial()));

  core::Peak peak(machine);
  const core::MethodRun run = peak.tune_with_consultant(workload);
  std::printf("Flags removed from -O3: %s\n",
              run.best_config
                  .describe(peak.effects().space(), /*invert=*/true)
                  .c_str());
  std::printf("Improvement over -O3 on ref: %.2f%%  (tuning cost: %zu "
              "invocations)\n",
              run.ref_improvement_pct, run.cost.invocations);
  return 0;
}
