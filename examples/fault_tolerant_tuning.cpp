/// \file fault_tolerant_tuning.cpp
/// Tuning when configurations misbehave: some crash, some hang, some
/// silently compute wrong answers, some corrupt their RBR checkpoints.
/// This example injects all of that at a 10% per-config rate, tunes
/// straight through it behind the guarded executor, then kills the run
/// mid-search (by truncating its journal) and resumes to a bit-identical
/// outcome. It ends by showing what happens without the guard.
///
///   $ ./examples/fault_tolerant_tuning [SWIM|MGRID|EQUAKE|ART|...]

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/journal.hpp"
#include "core/profile.hpp"
#include "core/tuning_driver.hpp"
#include "fault/injector.hpp"
#include "workloads/workload.hpp"

int main(int argc, char** argv) {
  using namespace peak;
  const std::string benchmark = argc > 1 ? argv[1] : "SWIM";

  const auto workload = workloads::make_workload(benchmark);
  if (!workload) {
    std::cerr << "unknown benchmark '" << benchmark << "'\n";
    return 1;
  }
  const sim::MachineModel machine = sim::sparc2();
  const sim::FlagEffectModel effects(search::gcc33_o3_space());
  const workloads::Trace train =
      workload->trace(workloads::DataSet::kTrain, /*seed=*/42);
  const core::ProfileData profile =
      core::profile_workload(*workload, train, machine);

  // A hostile flag space: 10% of configurations fault — crashes, hangs,
  // miscompiles, timer glitches, checkpoint corruption, a mix of
  // deterministic and transient. Same seed, same faults, every run.
  fault::FaultModel model;
  model.fault_prob = 0.10;
  model.seed = 2026;
  fault::FaultInjector injector(model);
  injector.exempt(search::o3_config(effects.space()));  // -O3 ships fine

  std::cout << "Tuning " << workload->full_name()
            << " with 10% of configs faulty (guarded, journaled)\n\n";

  const std::string journal = "fault_demo_journal.jsonl";
  std::remove(journal.c_str());

  core::DriverOptions options;
  options.fault.injector = &injector;
  options.fault.journal_path = journal;
  core::TuningDriver driver(*workload, profile, train, machine, effects,
                            options);
  const core::TuningOutcome outcome = driver.tune_auto();

  std::printf("Winner (flags removed from -O3): %s\n",
              outcome.best_config
                  .describe(effects.space(), /*invert=*/true)
                  .c_str());
  std::printf("Cost: %zu invocations (%.1f program runs)\n\n",
              outcome.cost.invocations, outcome.cost.program_runs);

  std::printf("Quarantined %zu configurations along the way:\n",
              driver.quarantine().size());
  for (const auto& [key, entry] : driver.quarantine().entries()) {
    if (!entry.quarantined) continue;
    std::printf("  %s  %s after %zu failure(s)\n", key.c_str(),
                fault::to_string(entry.kind), entry.failures);
  }

  // --- Crash-safe resume -------------------------------------------------
  // Pretend the process died mid-search: keep the first half of the
  // journal (plus the partial line it was writing) and resume. The
  // replayed half restores ratings, quarantine records and the backend
  // snapshot; the live half re-runs with the same injected faults.
  std::vector<std::string> lines;
  {
    std::ifstream in(journal);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  {
    std::ofstream out(journal);
    for (std::size_t i = 0; i < 1 + (lines.size() - 1) / 2; ++i)
      out << lines[i] << '\n';
    out << "{\"type\":\"eval\",\"ba";  // the write the kill interrupted
  }
  std::printf("\nKilled the run at journal line %zu of %zu; resuming...\n",
              1 + (lines.size() - 1) / 2, lines.size());

  core::DriverOptions resume_options = options;
  resume_options.fault.resume = true;
  core::TuningDriver resumed(*workload, profile, train, machine, effects,
                             resume_options);
  const core::TuningOutcome replayed = resumed.tune_auto();
  std::printf("Resumed outcome %s the original (winner %s, %zu "
              "invocations)\n",
              replayed == outcome ? "bit-identically matches"
                                  : "DIVERGED from",
              replayed.best_config == outcome.best_config ? "same"
                                                          : "different",
              replayed.cost.invocations);

  // --- The blind spot ----------------------------------------------------
  // Same faults, no guard: only the rating windows' non-finite-sample
  // check is left, and the first fault that surfaces outside a window
  // kills the whole tuning run.
  std::cout << "\nSame faults without the guard:\n";
  core::DriverOptions unguarded = options;
  unguarded.fault.guard_execution = false;
  unguarded.fault.journal_path.clear();
  core::TuningDriver exposed(*workload, profile, train, machine, effects,
                             unguarded);
  try {
    (void)exposed.tune_auto();
    std::cout << "  ...survived (this workload got lucky)\n";
  } catch (const fault::FaultError& e) {
    std::printf("  tuning died: %s\n", e.what());
  }

  std::remove(journal.c_str());
  return 0;
}
