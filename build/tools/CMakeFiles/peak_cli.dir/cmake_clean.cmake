file(REMOVE_RECURSE
  "CMakeFiles/peak_cli.dir/peak_cli.cpp.o"
  "CMakeFiles/peak_cli.dir/peak_cli.cpp.o.d"
  "peak"
  "peak.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/peak_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
