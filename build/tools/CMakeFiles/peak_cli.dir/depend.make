# Empty dependencies file for peak_cli.
# This may be replaced when dependencies are built.
