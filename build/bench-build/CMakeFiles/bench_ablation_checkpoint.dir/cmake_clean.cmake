file(REMOVE_RECURSE
  "../bench/bench_ablation_checkpoint"
  "../bench/bench_ablation_checkpoint.pdb"
  "CMakeFiles/bench_ablation_checkpoint.dir/bench_ablation_checkpoint.cpp.o"
  "CMakeFiles/bench_ablation_checkpoint.dir/bench_ablation_checkpoint.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_checkpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
