# Empty compiler generated dependencies file for bench_fig2_mbr_example.
# This may be replaced when dependencies are built.
