file(REMOVE_RECURSE
  "../bench/bench_ablation_rbr"
  "../bench/bench_ablation_rbr.pdb"
  "CMakeFiles/bench_ablation_rbr.dir/bench_ablation_rbr.cpp.o"
  "CMakeFiles/bench_ablation_rbr.dir/bench_ablation_rbr.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rbr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
