# Empty dependencies file for bench_ablation_rbr.
# This may be replaced when dependencies are built.
