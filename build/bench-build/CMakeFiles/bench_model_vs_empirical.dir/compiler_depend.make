# Empty compiler generated dependencies file for bench_model_vs_empirical.
# This may be replaced when dependencies are built.
