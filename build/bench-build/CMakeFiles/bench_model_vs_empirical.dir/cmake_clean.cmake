file(REMOVE_RECURSE
  "../bench/bench_model_vs_empirical"
  "../bench/bench_model_vs_empirical.pdb"
  "CMakeFiles/bench_model_vs_empirical.dir/bench_model_vs_empirical.cpp.o"
  "CMakeFiles/bench_model_vs_empirical.dir/bench_model_vs_empirical.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_model_vs_empirical.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
