# Empty dependencies file for bench_ablation_outliers.
# This may be replaced when dependencies are built.
