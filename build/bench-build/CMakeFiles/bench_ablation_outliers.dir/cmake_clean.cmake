file(REMOVE_RECURSE
  "../bench/bench_ablation_outliers"
  "../bench/bench_ablation_outliers.pdb"
  "CMakeFiles/bench_ablation_outliers.dir/bench_ablation_outliers.cpp.o"
  "CMakeFiles/bench_ablation_outliers.dir/bench_ablation_outliers.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_outliers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
