# Empty dependencies file for bench_fig7_perf.
# This may be replaced when dependencies are built.
