file(REMOVE_RECURSE
  "../bench/bench_fig7_perf"
  "../bench/bench_fig7_perf.pdb"
  "CMakeFiles/bench_fig7_perf.dir/bench_fig7_perf.cpp.o"
  "CMakeFiles/bench_fig7_perf.dir/bench_fig7_perf.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
