file(REMOVE_RECURSE
  "libfig7_common.a"
)
