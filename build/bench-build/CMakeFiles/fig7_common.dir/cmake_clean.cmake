file(REMOVE_RECURSE
  "CMakeFiles/fig7_common.dir/fig7_common.cpp.o"
  "CMakeFiles/fig7_common.dir/fig7_common.cpp.o.d"
  "libfig7_common.a"
  "libfig7_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
