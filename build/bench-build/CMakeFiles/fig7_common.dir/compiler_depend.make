# Empty compiler generated dependencies file for fig7_common.
# This may be replaced when dependencies are built.
