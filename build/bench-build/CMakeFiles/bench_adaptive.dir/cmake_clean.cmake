file(REMOVE_RECURSE
  "../bench/bench_adaptive"
  "../bench/bench_adaptive.pdb"
  "CMakeFiles/bench_adaptive.dir/bench_adaptive.cpp.o"
  "CMakeFiles/bench_adaptive.dir/bench_adaptive.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
