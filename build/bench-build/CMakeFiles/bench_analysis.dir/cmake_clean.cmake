file(REMOVE_RECURSE
  "../bench/bench_analysis"
  "../bench/bench_analysis.pdb"
  "CMakeFiles/bench_analysis.dir/bench_analysis.cpp.o"
  "CMakeFiles/bench_analysis.dir/bench_analysis.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
