file(REMOVE_RECURSE
  "../bench/bench_static_passes"
  "../bench/bench_static_passes.pdb"
  "CMakeFiles/bench_static_passes.dir/bench_static_passes.cpp.o"
  "CMakeFiles/bench_static_passes.dir/bench_static_passes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_static_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
