# Empty dependencies file for bench_static_passes.
# This may be replaced when dependencies are built.
