
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_advisor_batching.cpp" "tests/CMakeFiles/peak_tests.dir/test_advisor_batching.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_advisor_batching.cpp.o.d"
  "/root/repo/tests/test_analysis_components.cpp" "tests/CMakeFiles/peak_tests.dir/test_analysis_components.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_analysis_components.cpp.o.d"
  "/root/repo/tests/test_analysis_context.cpp" "tests/CMakeFiles/peak_tests.dir/test_analysis_context.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_analysis_context.cpp.o.d"
  "/root/repo/tests/test_analysis_misc.cpp" "tests/CMakeFiles/peak_tests.dir/test_analysis_misc.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_analysis_misc.cpp.o.d"
  "/root/repo/tests/test_core_adaptive_parallel.cpp" "tests/CMakeFiles/peak_tests.dir/test_core_adaptive_parallel.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_core_adaptive_parallel.cpp.o.d"
  "/root/repo/tests/test_core_pipeline.cpp" "tests/CMakeFiles/peak_tests.dir/test_core_pipeline.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_core_pipeline.cpp.o.d"
  "/root/repo/tests/test_ir_builder_interpreter.cpp" "tests/CMakeFiles/peak_tests.dir/test_ir_builder_interpreter.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_ir_builder_interpreter.cpp.o.d"
  "/root/repo/tests/test_ir_dataflow.cpp" "tests/CMakeFiles/peak_tests.dir/test_ir_dataflow.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_ir_dataflow.cpp.o.d"
  "/root/repo/tests/test_ir_fuzz_analyses.cpp" "tests/CMakeFiles/peak_tests.dir/test_ir_fuzz_analyses.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_ir_fuzz_analyses.cpp.o.d"
  "/root/repo/tests/test_ir_loops.cpp" "tests/CMakeFiles/peak_tests.dir/test_ir_loops.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_ir_loops.cpp.o.d"
  "/root/repo/tests/test_ir_passes.cpp" "tests/CMakeFiles/peak_tests.dir/test_ir_passes.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_ir_passes.cpp.o.d"
  "/root/repo/tests/test_ir_range_analysis.cpp" "tests/CMakeFiles/peak_tests.dir/test_ir_range_analysis.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_ir_range_analysis.cpp.o.d"
  "/root/repo/tests/test_per_context.cpp" "tests/CMakeFiles/peak_tests.dir/test_per_context.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_per_context.cpp.o.d"
  "/root/repo/tests/test_rating_cbr_rbr.cpp" "tests/CMakeFiles/peak_tests.dir/test_rating_cbr_rbr.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_rating_cbr_rbr.cpp.o.d"
  "/root/repo/tests/test_rating_mbr_consultant.cpp" "tests/CMakeFiles/peak_tests.dir/test_rating_mbr_consultant.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_rating_mbr_consultant.cpp.o.d"
  "/root/repo/tests/test_rating_window.cpp" "tests/CMakeFiles/peak_tests.dir/test_rating_window.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_rating_window.cpp.o.d"
  "/root/repo/tests/test_runtime.cpp" "tests/CMakeFiles/peak_tests.dir/test_runtime.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_runtime.cpp.o.d"
  "/root/repo/tests/test_search.cpp" "tests/CMakeFiles/peak_tests.dir/test_search.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_search.cpp.o.d"
  "/root/repo/tests/test_search_extensions.cpp" "tests/CMakeFiles/peak_tests.dir/test_search_extensions.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_search_extensions.cpp.o.d"
  "/root/repo/tests/test_sim_exec_backend.cpp" "tests/CMakeFiles/peak_tests.dir/test_sim_exec_backend.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_sim_exec_backend.cpp.o.d"
  "/root/repo/tests/test_sim_flags_effects.cpp" "tests/CMakeFiles/peak_tests.dir/test_sim_flags_effects.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_sim_flags_effects.cpp.o.d"
  "/root/repo/tests/test_sim_machine_cache.cpp" "tests/CMakeFiles/peak_tests.dir/test_sim_machine_cache.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_sim_machine_cache.cpp.o.d"
  "/root/repo/tests/test_stats_descriptive.cpp" "tests/CMakeFiles/peak_tests.dir/test_stats_descriptive.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_stats_descriptive.cpp.o.d"
  "/root/repo/tests/test_stats_outlier.cpp" "tests/CMakeFiles/peak_tests.dir/test_stats_outlier.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_stats_outlier.cpp.o.d"
  "/root/repo/tests/test_stats_regression.cpp" "tests/CMakeFiles/peak_tests.dir/test_stats_regression.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_stats_regression.cpp.o.d"
  "/root/repo/tests/test_support_bitset.cpp" "tests/CMakeFiles/peak_tests.dir/test_support_bitset.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_support_bitset.cpp.o.d"
  "/root/repo/tests/test_support_rng.cpp" "tests/CMakeFiles/peak_tests.dir/test_support_rng.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_support_rng.cpp.o.d"
  "/root/repo/tests/test_support_threading.cpp" "tests/CMakeFiles/peak_tests.dir/test_support_threading.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_support_threading.cpp.o.d"
  "/root/repo/tests/test_validate_config_store.cpp" "tests/CMakeFiles/peak_tests.dir/test_validate_config_store.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_validate_config_store.cpp.o.d"
  "/root/repo/tests/test_workloads.cpp" "tests/CMakeFiles/peak_tests.dir/test_workloads.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_workloads.cpp.o.d"
  "/root/repo/tests/test_workloads_native.cpp" "tests/CMakeFiles/peak_tests.dir/test_workloads_native.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_workloads_native.cpp.o.d"
  "/root/repo/tests/test_workloads_native_full.cpp" "tests/CMakeFiles/peak_tests.dir/test_workloads_native_full.cpp.o" "gcc" "tests/CMakeFiles/peak_tests.dir/test_workloads_native_full.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/peak.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
