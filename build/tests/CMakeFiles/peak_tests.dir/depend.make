# Empty dependencies file for peak_tests.
# This may be replaced when dependencies are built.
