# Empty compiler generated dependencies file for peak.
# This may be replaced when dependencies are built.
