
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/component_analysis.cpp" "src/CMakeFiles/peak.dir/analysis/component_analysis.cpp.o" "gcc" "src/CMakeFiles/peak.dir/analysis/component_analysis.cpp.o.d"
  "/root/repo/src/analysis/context_analysis.cpp" "src/CMakeFiles/peak.dir/analysis/context_analysis.cpp.o" "gcc" "src/CMakeFiles/peak.dir/analysis/context_analysis.cpp.o.d"
  "/root/repo/src/analysis/input_sets.cpp" "src/CMakeFiles/peak.dir/analysis/input_sets.cpp.o" "gcc" "src/CMakeFiles/peak.dir/analysis/input_sets.cpp.o.d"
  "/root/repo/src/analysis/instrumentation.cpp" "src/CMakeFiles/peak.dir/analysis/instrumentation.cpp.o" "gcc" "src/CMakeFiles/peak.dir/analysis/instrumentation.cpp.o.d"
  "/root/repo/src/analysis/runtime_constants.cpp" "src/CMakeFiles/peak.dir/analysis/runtime_constants.cpp.o" "gcc" "src/CMakeFiles/peak.dir/analysis/runtime_constants.cpp.o.d"
  "/root/repo/src/analysis/ts_partitioner.cpp" "src/CMakeFiles/peak.dir/analysis/ts_partitioner.cpp.o" "gcc" "src/CMakeFiles/peak.dir/analysis/ts_partitioner.cpp.o.d"
  "/root/repo/src/core/adaptive.cpp" "src/CMakeFiles/peak.dir/core/adaptive.cpp.o" "gcc" "src/CMakeFiles/peak.dir/core/adaptive.cpp.o.d"
  "/root/repo/src/core/config_store.cpp" "src/CMakeFiles/peak.dir/core/config_store.cpp.o" "gcc" "src/CMakeFiles/peak.dir/core/config_store.cpp.o.d"
  "/root/repo/src/core/parallel.cpp" "src/CMakeFiles/peak.dir/core/parallel.cpp.o" "gcc" "src/CMakeFiles/peak.dir/core/parallel.cpp.o.d"
  "/root/repo/src/core/peak.cpp" "src/CMakeFiles/peak.dir/core/peak.cpp.o" "gcc" "src/CMakeFiles/peak.dir/core/peak.cpp.o.d"
  "/root/repo/src/core/per_context.cpp" "src/CMakeFiles/peak.dir/core/per_context.cpp.o" "gcc" "src/CMakeFiles/peak.dir/core/per_context.cpp.o.d"
  "/root/repo/src/core/profile.cpp" "src/CMakeFiles/peak.dir/core/profile.cpp.o" "gcc" "src/CMakeFiles/peak.dir/core/profile.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/peak.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/peak.dir/core/report.cpp.o.d"
  "/root/repo/src/core/tuning_driver.cpp" "src/CMakeFiles/peak.dir/core/tuning_driver.cpp.o" "gcc" "src/CMakeFiles/peak.dir/core/tuning_driver.cpp.o.d"
  "/root/repo/src/ir/builder.cpp" "src/CMakeFiles/peak.dir/ir/builder.cpp.o" "gcc" "src/CMakeFiles/peak.dir/ir/builder.cpp.o.d"
  "/root/repo/src/ir/function.cpp" "src/CMakeFiles/peak.dir/ir/function.cpp.o" "gcc" "src/CMakeFiles/peak.dir/ir/function.cpp.o.d"
  "/root/repo/src/ir/fuzz.cpp" "src/CMakeFiles/peak.dir/ir/fuzz.cpp.o" "gcc" "src/CMakeFiles/peak.dir/ir/fuzz.cpp.o.d"
  "/root/repo/src/ir/interpreter.cpp" "src/CMakeFiles/peak.dir/ir/interpreter.cpp.o" "gcc" "src/CMakeFiles/peak.dir/ir/interpreter.cpp.o.d"
  "/root/repo/src/ir/liveness.cpp" "src/CMakeFiles/peak.dir/ir/liveness.cpp.o" "gcc" "src/CMakeFiles/peak.dir/ir/liveness.cpp.o.d"
  "/root/repo/src/ir/loops.cpp" "src/CMakeFiles/peak.dir/ir/loops.cpp.o" "gcc" "src/CMakeFiles/peak.dir/ir/loops.cpp.o.d"
  "/root/repo/src/ir/passes.cpp" "src/CMakeFiles/peak.dir/ir/passes.cpp.o" "gcc" "src/CMakeFiles/peak.dir/ir/passes.cpp.o.d"
  "/root/repo/src/ir/points_to.cpp" "src/CMakeFiles/peak.dir/ir/points_to.cpp.o" "gcc" "src/CMakeFiles/peak.dir/ir/points_to.cpp.o.d"
  "/root/repo/src/ir/print.cpp" "src/CMakeFiles/peak.dir/ir/print.cpp.o" "gcc" "src/CMakeFiles/peak.dir/ir/print.cpp.o.d"
  "/root/repo/src/ir/range_analysis.cpp" "src/CMakeFiles/peak.dir/ir/range_analysis.cpp.o" "gcc" "src/CMakeFiles/peak.dir/ir/range_analysis.cpp.o.d"
  "/root/repo/src/ir/use_def.cpp" "src/CMakeFiles/peak.dir/ir/use_def.cpp.o" "gcc" "src/CMakeFiles/peak.dir/ir/use_def.cpp.o.d"
  "/root/repo/src/ir/validate.cpp" "src/CMakeFiles/peak.dir/ir/validate.cpp.o" "gcc" "src/CMakeFiles/peak.dir/ir/validate.cpp.o.d"
  "/root/repo/src/rating/cbr.cpp" "src/CMakeFiles/peak.dir/rating/cbr.cpp.o" "gcc" "src/CMakeFiles/peak.dir/rating/cbr.cpp.o.d"
  "/root/repo/src/rating/consultant.cpp" "src/CMakeFiles/peak.dir/rating/consultant.cpp.o" "gcc" "src/CMakeFiles/peak.dir/rating/consultant.cpp.o.d"
  "/root/repo/src/rating/mbr.cpp" "src/CMakeFiles/peak.dir/rating/mbr.cpp.o" "gcc" "src/CMakeFiles/peak.dir/rating/mbr.cpp.o.d"
  "/root/repo/src/rating/rbr.cpp" "src/CMakeFiles/peak.dir/rating/rbr.cpp.o" "gcc" "src/CMakeFiles/peak.dir/rating/rbr.cpp.o.d"
  "/root/repo/src/rating/window.cpp" "src/CMakeFiles/peak.dir/rating/window.cpp.o" "gcc" "src/CMakeFiles/peak.dir/rating/window.cpp.o.d"
  "/root/repo/src/runtime/snapshot.cpp" "src/CMakeFiles/peak.dir/runtime/snapshot.cpp.o" "gcc" "src/CMakeFiles/peak.dir/runtime/snapshot.cpp.o.d"
  "/root/repo/src/runtime/version_table.cpp" "src/CMakeFiles/peak.dir/runtime/version_table.cpp.o" "gcc" "src/CMakeFiles/peak.dir/runtime/version_table.cpp.o.d"
  "/root/repo/src/search/advisor.cpp" "src/CMakeFiles/peak.dir/search/advisor.cpp.o" "gcc" "src/CMakeFiles/peak.dir/search/advisor.cpp.o.d"
  "/root/repo/src/search/combined_elimination.cpp" "src/CMakeFiles/peak.dir/search/combined_elimination.cpp.o" "gcc" "src/CMakeFiles/peak.dir/search/combined_elimination.cpp.o.d"
  "/root/repo/src/search/iterative_elimination.cpp" "src/CMakeFiles/peak.dir/search/iterative_elimination.cpp.o" "gcc" "src/CMakeFiles/peak.dir/search/iterative_elimination.cpp.o.d"
  "/root/repo/src/search/opt_config.cpp" "src/CMakeFiles/peak.dir/search/opt_config.cpp.o" "gcc" "src/CMakeFiles/peak.dir/search/opt_config.cpp.o.d"
  "/root/repo/src/search/simple_searches.cpp" "src/CMakeFiles/peak.dir/search/simple_searches.cpp.o" "gcc" "src/CMakeFiles/peak.dir/search/simple_searches.cpp.o.d"
  "/root/repo/src/sim/cache_model.cpp" "src/CMakeFiles/peak.dir/sim/cache_model.cpp.o" "gcc" "src/CMakeFiles/peak.dir/sim/cache_model.cpp.o.d"
  "/root/repo/src/sim/exec_backend.cpp" "src/CMakeFiles/peak.dir/sim/exec_backend.cpp.o" "gcc" "src/CMakeFiles/peak.dir/sim/exec_backend.cpp.o.d"
  "/root/repo/src/sim/flag_effects.cpp" "src/CMakeFiles/peak.dir/sim/flag_effects.cpp.o" "gcc" "src/CMakeFiles/peak.dir/sim/flag_effects.cpp.o.d"
  "/root/repo/src/sim/machine.cpp" "src/CMakeFiles/peak.dir/sim/machine.cpp.o" "gcc" "src/CMakeFiles/peak.dir/sim/machine.cpp.o.d"
  "/root/repo/src/stats/descriptive.cpp" "src/CMakeFiles/peak.dir/stats/descriptive.cpp.o" "gcc" "src/CMakeFiles/peak.dir/stats/descriptive.cpp.o.d"
  "/root/repo/src/stats/matrix.cpp" "src/CMakeFiles/peak.dir/stats/matrix.cpp.o" "gcc" "src/CMakeFiles/peak.dir/stats/matrix.cpp.o.d"
  "/root/repo/src/stats/outlier.cpp" "src/CMakeFiles/peak.dir/stats/outlier.cpp.o" "gcc" "src/CMakeFiles/peak.dir/stats/outlier.cpp.o.d"
  "/root/repo/src/stats/regression.cpp" "src/CMakeFiles/peak.dir/stats/regression.cpp.o" "gcc" "src/CMakeFiles/peak.dir/stats/regression.cpp.o.d"
  "/root/repo/src/support/table.cpp" "src/CMakeFiles/peak.dir/support/table.cpp.o" "gcc" "src/CMakeFiles/peak.dir/support/table.cpp.o.d"
  "/root/repo/src/workloads/applu.cpp" "src/CMakeFiles/peak.dir/workloads/applu.cpp.o" "gcc" "src/CMakeFiles/peak.dir/workloads/applu.cpp.o.d"
  "/root/repo/src/workloads/apsi.cpp" "src/CMakeFiles/peak.dir/workloads/apsi.cpp.o" "gcc" "src/CMakeFiles/peak.dir/workloads/apsi.cpp.o.d"
  "/root/repo/src/workloads/art.cpp" "src/CMakeFiles/peak.dir/workloads/art.cpp.o" "gcc" "src/CMakeFiles/peak.dir/workloads/art.cpp.o.d"
  "/root/repo/src/workloads/bzip2.cpp" "src/CMakeFiles/peak.dir/workloads/bzip2.cpp.o" "gcc" "src/CMakeFiles/peak.dir/workloads/bzip2.cpp.o.d"
  "/root/repo/src/workloads/crafty.cpp" "src/CMakeFiles/peak.dir/workloads/crafty.cpp.o" "gcc" "src/CMakeFiles/peak.dir/workloads/crafty.cpp.o.d"
  "/root/repo/src/workloads/equake.cpp" "src/CMakeFiles/peak.dir/workloads/equake.cpp.o" "gcc" "src/CMakeFiles/peak.dir/workloads/equake.cpp.o.d"
  "/root/repo/src/workloads/gzip.cpp" "src/CMakeFiles/peak.dir/workloads/gzip.cpp.o" "gcc" "src/CMakeFiles/peak.dir/workloads/gzip.cpp.o.d"
  "/root/repo/src/workloads/mcf.cpp" "src/CMakeFiles/peak.dir/workloads/mcf.cpp.o" "gcc" "src/CMakeFiles/peak.dir/workloads/mcf.cpp.o.d"
  "/root/repo/src/workloads/mesa.cpp" "src/CMakeFiles/peak.dir/workloads/mesa.cpp.o" "gcc" "src/CMakeFiles/peak.dir/workloads/mesa.cpp.o.d"
  "/root/repo/src/workloads/mgrid.cpp" "src/CMakeFiles/peak.dir/workloads/mgrid.cpp.o" "gcc" "src/CMakeFiles/peak.dir/workloads/mgrid.cpp.o.d"
  "/root/repo/src/workloads/native.cpp" "src/CMakeFiles/peak.dir/workloads/native.cpp.o" "gcc" "src/CMakeFiles/peak.dir/workloads/native.cpp.o.d"
  "/root/repo/src/workloads/registry.cpp" "src/CMakeFiles/peak.dir/workloads/registry.cpp.o" "gcc" "src/CMakeFiles/peak.dir/workloads/registry.cpp.o.d"
  "/root/repo/src/workloads/swim.cpp" "src/CMakeFiles/peak.dir/workloads/swim.cpp.o" "gcc" "src/CMakeFiles/peak.dir/workloads/swim.cpp.o.d"
  "/root/repo/src/workloads/twolf.cpp" "src/CMakeFiles/peak.dir/workloads/twolf.cpp.o" "gcc" "src/CMakeFiles/peak.dir/workloads/twolf.cpp.o.d"
  "/root/repo/src/workloads/vortex.cpp" "src/CMakeFiles/peak.dir/workloads/vortex.cpp.o" "gcc" "src/CMakeFiles/peak.dir/workloads/vortex.cpp.o.d"
  "/root/repo/src/workloads/workload.cpp" "src/CMakeFiles/peak.dir/workloads/workload.cpp.o" "gcc" "src/CMakeFiles/peak.dir/workloads/workload.cpp.o.d"
  "/root/repo/src/workloads/wupwise.cpp" "src/CMakeFiles/peak.dir/workloads/wupwise.cpp.o" "gcc" "src/CMakeFiles/peak.dir/workloads/wupwise.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
