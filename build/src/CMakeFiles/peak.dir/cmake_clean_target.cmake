file(REMOVE_RECURSE
  "libpeak.a"
)
