file(REMOVE_RECURSE
  "CMakeFiles/whole_application.dir/whole_application.cpp.o"
  "CMakeFiles/whole_application.dir/whole_application.cpp.o.d"
  "whole_application"
  "whole_application.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whole_application.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
