# Empty compiler generated dependencies file for whole_application.
# This may be replaced when dependencies are built.
