# Empty dependencies file for mbr_walkthrough.
# This may be replaced when dependencies are built.
