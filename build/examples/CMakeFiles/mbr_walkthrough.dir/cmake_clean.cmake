file(REMOVE_RECURSE
  "CMakeFiles/mbr_walkthrough.dir/mbr_walkthrough.cpp.o"
  "CMakeFiles/mbr_walkthrough.dir/mbr_walkthrough.cpp.o.d"
  "mbr_walkthrough"
  "mbr_walkthrough.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbr_walkthrough.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
