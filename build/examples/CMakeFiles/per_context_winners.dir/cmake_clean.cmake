file(REMOVE_RECURSE
  "CMakeFiles/per_context_winners.dir/per_context_winners.cpp.o"
  "CMakeFiles/per_context_winners.dir/per_context_winners.cpp.o.d"
  "per_context_winners"
  "per_context_winners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/per_context_winners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
