# Empty dependencies file for per_context_winners.
# This may be replaced when dependencies are built.
