# Empty dependencies file for native_matmul_tuning.
# This may be replaced when dependencies are built.
