file(REMOVE_RECURSE
  "CMakeFiles/native_matmul_tuning.dir/native_matmul_tuning.cpp.o"
  "CMakeFiles/native_matmul_tuning.dir/native_matmul_tuning.cpp.o.d"
  "native_matmul_tuning"
  "native_matmul_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_matmul_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
