# Empty compiler generated dependencies file for adaptive_online.
# This may be replaced when dependencies are built.
