file(REMOVE_RECURSE
  "CMakeFiles/adaptive_online.dir/adaptive_online.cpp.o"
  "CMakeFiles/adaptive_online.dir/adaptive_online.cpp.o.d"
  "adaptive_online"
  "adaptive_online.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_online.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
