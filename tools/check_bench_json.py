#!/usr/bin/env python3
"""Schema validator for the machine-readable BENCH_*.json artifacts.

The bench binaries (bench_headline and friends) emit JSON next to their
stdout report so dashboards and regression drivers can consume the numbers
without scraping text. This script checks those files against the expected
schema — run it in CI after the benches, or standalone:

    tools/check_bench_json.py BENCH_headline.json [...]
    tools/check_bench_json.py --self-test

Exit status: 0 if every file validates (or the self-test passes), 1
otherwise. Stdlib only — no third-party dependencies.
"""

import json
import sys

NUMBER = (int, float)


class SchemaError(Exception):
    pass


def _require(cond, path, message):
    if not cond:
        raise SchemaError(f"{path}: {message}")


def _check_number(obj, key, path, minimum=None):
    _require(key in obj, path, f"missing key '{key}'")
    value = obj[key]
    _require(isinstance(value, NUMBER) and not isinstance(value, bool),
             f"{path}.{key}", f"expected a number, got {type(value).__name__}")
    if minimum is not None:
        _require(value >= minimum, f"{path}.{key}",
                 f"expected >= {minimum}, got {value}")


def _check_string(obj, key, path):
    _require(key in obj, path, f"missing key '{key}'")
    _require(isinstance(obj[key], str) and obj[key],
             f"{path}.{key}", "expected a non-empty string")


def check_metrics(metrics, path):
    _require(isinstance(metrics, dict), path, "expected an object")
    for section in ("counters", "gauges", "histograms"):
        _require(section in metrics, path, f"missing key '{section}'")
        _require(isinstance(metrics[section], dict),
                 f"{path}.{section}", "expected an object")
    for name, value in metrics["counters"].items():
        _require(isinstance(value, int) and value >= 0,
                 f"{path}.counters.{name}", "expected a non-negative integer")
    for name, value in metrics["gauges"].items():
        _require(isinstance(value, NUMBER) and not isinstance(value, bool),
                 f"{path}.gauges.{name}", "expected a number")
    for name, hist in metrics["histograms"].items():
        hpath = f"{path}.histograms.{name}"
        _require(isinstance(hist, dict), hpath, "expected an object")
        for key in ("bounds", "counts"):
            _require(isinstance(hist.get(key), list), f"{hpath}.{key}",
                     "expected an array")
        _require(len(hist["counts"]) == len(hist["bounds"]) + 1, hpath,
                 "counts must have len(bounds)+1 entries (overflow bucket)")
        _require(list(hist["bounds"]) == sorted(hist["bounds"]), hpath,
                 "bounds must be sorted ascending")
        _check_number(hist, "count", hpath, minimum=0)
        _check_number(hist, "sum", hpath)
        _require(sum(hist["counts"]) == hist["count"], hpath,
                 "bucket counts must sum to 'count'")


def check_headline(doc, path):
    _require(doc.get("schema") == 1, path, "expected schema 1")
    _require(isinstance(doc.get("machines"), list) and doc["machines"],
             f"{path}.machines", "expected a non-empty array")
    for i, machine in enumerate(doc["machines"]):
        mpath = f"{path}.machines[{i}]"
        _check_string(machine, "machine", mpath)
        _require(isinstance(machine.get("runs"), list) and machine["runs"],
                 f"{mpath}.runs", "expected a non-empty array")
        for j, run in enumerate(machine["runs"]):
            rpath = f"{mpath}.runs[{j}]"
            _check_string(run, "benchmark", rpath)
            _check_string(run, "method", rpath)
            _require(run["method"] in ("CBR", "MBR", "RBR", "AVG", "WHL"),
                     f"{rpath}.method", f"unknown method {run['method']!r}")
            _check_number(run, "ref_improvement_pct", rpath)
            _check_number(run, "tuning_time_reduction_pct", rpath)
            _check_number(run, "configs_evaluated", rpath, minimum=1)
            _check_number(run, "invocations", rpath, minimum=1)
    headline = doc.get("headline")
    _require(isinstance(headline, dict), f"{path}.headline",
             "expected an object")
    for key in ("max_improvement_pct", "avg_improvement_pct",
                "max_time_reduction_pct", "avg_time_reduction_pct"):
        _check_number(headline, key, f"{path}.headline")
    _require("metrics" in doc, path, "missing key 'metrics'")
    check_metrics(doc["metrics"], f"{path}.metrics")


CHECKERS = {"headline": check_headline}


def check_document(doc, path="$"):
    _require(isinstance(doc, dict), path, "top level must be an object")
    _check_string(doc, "bench", path)
    checker = CHECKERS.get(doc["bench"])
    _require(checker is not None, f"{path}.bench",
             f"no schema registered for bench {doc['bench']!r}")
    checker(doc, path)


def check_file(filename):
    try:
        with open(filename, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{filename}: FAIL ({exc})")
        return False
    try:
        check_document(doc)
    except SchemaError as exc:
        print(f"{filename}: FAIL ({exc})")
        return False
    print(f"{filename}: OK")
    return True


# --- self-test fixtures -----------------------------------------------------

GOOD = {
    "bench": "headline",
    "schema": 1,
    "machines": [
        {
            "machine": "UltraSPARC-II",
            "runs": [
                {
                    "benchmark": "MGRID",
                    "method": "MBR",
                    "ref_improvement_pct": 12.5,
                    "tuning_time_reduction_pct": 80.0,
                    "configs_evaluated": 40,
                    "invocations": 12000,
                }
            ],
        }
    ],
    "headline": {
        "max_improvement_pct": 178.0,
        "avg_improvement_pct": 26.0,
        "max_time_reduction_pct": 96.0,
        "avg_time_reduction_pct": 80.0,
    },
    "metrics": {
        "counters": {"search.configs_evaluated": 40},
        "gauges": {"rating.mbr_residual": 0.02},
        "histograms": {
            "rating.window_samples": {
                "bounds": [10.0, 20.0],
                "counts": [3, 1, 0],
                "count": 4,
                "sum": 55.0,
            }
        },
    },
}


def _mutate(doc, fn):
    clone = json.loads(json.dumps(doc))
    fn(clone)
    return clone


def self_test():
    failures = []

    def expect(doc, valid, label):
        try:
            check_document(doc)
            ok = True
        except SchemaError:
            ok = False
        if ok != valid:
            failures.append(label)

    expect(GOOD, True, "good document rejected")
    expect(_mutate(GOOD, lambda d: d.pop("headline")), False,
           "missing headline accepted")
    expect(_mutate(GOOD, lambda d: d.update(schema=2)), False,
           "wrong schema accepted")
    expect(
        _mutate(GOOD, lambda d: d["machines"][0]["runs"][0].update(
            method="XYZ")), False, "unknown method accepted")
    expect(
        _mutate(GOOD, lambda d: d["machines"][0]["runs"][0].update(
            configs_evaluated=0)), False, "zero configs_evaluated accepted")
    expect(
        _mutate(
            GOOD, lambda d: d["metrics"]["histograms"][
                "rating.window_samples"].update(counts=[3, 1])), False,
        "short histogram counts accepted")
    expect(
        _mutate(
            GOOD, lambda d: d["metrics"]["histograms"][
                "rating.window_samples"].update(count=99)), False,
        "inconsistent histogram count accepted")
    expect(_mutate(GOOD, lambda d: d["metrics"].pop("counters")), False,
           "missing counters accepted")

    if failures:
        for failure in failures:
            print(f"self-test: FAIL ({failure})")
        return False
    print("self-test: OK (8 cases)")
    return True


def main(argv):
    if "--self-test" in argv:
        return 0 if self_test() else 1
    if not argv:
        print(__doc__.strip())
        return 1
    ok = all([check_file(f) for f in argv])
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
