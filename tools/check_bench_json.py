#!/usr/bin/env python3
"""Schema validator for the machine-readable BENCH_*.json artifacts.

The bench binaries (bench_headline and friends) emit JSON next to their
stdout report so dashboards and regression drivers can consume the numbers
without scraping text. This script checks those files against the expected
schema (headline, engine_compare, fault_sweep, crash_sweep, dist_sweep)
and rejects NaN/Infinity
anywhere in a document — run it in CI after the benches, or standalone:

    tools/check_bench_json.py BENCH_headline.json [...]
    tools/check_bench_json.py --self-test

Regression gate: with --compare BASELINE.json, the engine speedups of each
candidate file (the "engine_speedup" section of a headline or
engine_compare document) are checked against the baseline's. A kernel
whose speedup falls more than --max-regress-pct percent (default 50) below
the baseline fails the check:

    tools/check_bench_json.py ENGINE_compare.json \
        --compare BENCH_headline.json --max-regress-pct 50

Metrics-drift sentinel: with --compare-metrics BASELINE.json, the
candidate's "metrics" section (counters, gauges, histogram counts) and the
cycle totals of its "cost_attribution" ledger are diffed against the
baseline's. The simulation is deterministic, so these should be identical
run to run; a key that drifts more than --max-metric-drift-pct percent
(default 10), or that exists in the baseline but not the candidate, fails
the check. Wall-clock-based values (anything matching a --waive-metric
substring; "wall" is always waived) are exempt:

    tools/check_bench_json.py BENCH_headline.json \
        --compare-metrics baselines/BENCH_headline.json

Exit status: 0 if every file validates (or the self-test passes), 1
otherwise. Stdlib only — no third-party dependencies.
"""

import json
import math
import sys

NUMBER = (int, float)


class SchemaError(Exception):
    pass


def _require(cond, path, message):
    if not cond:
        raise SchemaError(f"{path}: {message}")


def _check_number(obj, key, path, minimum=None):
    _require(key in obj, path, f"missing key '{key}'")
    value = obj[key]
    _require(isinstance(value, NUMBER) and not isinstance(value, bool),
             f"{path}.{key}", f"expected a number, got {type(value).__name__}")
    if minimum is not None:
        _require(value >= minimum, f"{path}.{key}",
                 f"expected >= {minimum}, got {value}")


def _check_string(obj, key, path):
    _require(key in obj, path, f"missing key '{key}'")
    _require(isinstance(obj[key], str) and obj[key],
             f"{path}.{key}", "expected a non-empty string")


def _check_bool(obj, key, path):
    _require(key in obj, path, f"missing key '{key}'")
    _require(isinstance(obj[key], bool), f"{path}.{key}",
             "expected a boolean")


def _check_all_finite(value, path):
    """Reject NaN/Infinity anywhere in the document.

    Python's json module happily parses the (non-standard) NaN/Infinity
    literals, and a bench that averages a failed run into its summary will
    emit exactly those. A NaN in a dashboard artifact is always a bug.
    """
    if isinstance(value, bool):
        return
    if isinstance(value, NUMBER):
        _require(math.isfinite(value), path,
                 f"non-finite number {value!r}")
    elif isinstance(value, dict):
        for key, item in value.items():
            _check_all_finite(item, f"{path}.{key}")
    elif isinstance(value, list):
        for i, item in enumerate(value):
            _check_all_finite(item, f"{path}[{i}]")


def check_metrics(metrics, path):
    _require(isinstance(metrics, dict), path, "expected an object")
    for section in ("counters", "gauges", "histograms"):
        _require(section in metrics, path, f"missing key '{section}'")
        _require(isinstance(metrics[section], dict),
                 f"{path}.{section}", "expected an object")
    for name, value in metrics["counters"].items():
        _require(isinstance(value, int) and value >= 0,
                 f"{path}.counters.{name}", "expected a non-negative integer")
    for name, value in metrics["gauges"].items():
        _require(isinstance(value, NUMBER) and not isinstance(value, bool),
                 f"{path}.gauges.{name}", "expected a number")
    for name, hist in metrics["histograms"].items():
        hpath = f"{path}.histograms.{name}"
        _require(isinstance(hist, dict), hpath, "expected an object")
        for key in ("bounds", "counts"):
            _require(isinstance(hist.get(key), list), f"{hpath}.{key}",
                     "expected an array")
        _require(len(hist["counts"]) == len(hist["bounds"]) + 1, hpath,
                 "counts must have len(bounds)+1 entries (overflow bucket)")
        _require(list(hist["bounds"]) == sorted(hist["bounds"]), hpath,
                 "bounds must be sorted ascending")
        _check_number(hist, "count", hpath, minimum=0)
        _check_number(hist, "sum", hpath)
        _require(sum(hist["counts"]) == hist["count"], hpath,
                 "bucket counts must sum to 'count'")
        # Percentile summaries are optional (only emitted for non-empty
        # histograms) but must be ordered when present.
        quantiles = [hist[k] for k in ("p50", "p90", "p99") if k in hist]
        for q in quantiles:
            _require(isinstance(q, NUMBER) and not isinstance(q, bool),
                     hpath, "percentiles must be numbers")
        _require(quantiles == sorted(quantiles), hpath,
                 "percentiles must be non-decreasing (p50 <= p90 <= p99)")


#: ledger phase leaf -> the metrics gauge that accumulates the same cycles.
#: search_overhead is wall-only (charged with 0 cycles), so it has no
#: gauge counterpart.
PHASE_GAUGES = {
    "timed": "sim.cycles_timed",
    "precondition": "sim.cycles_precondition",
    "checkpoint": "sim.cycles_checkpoint",
    "faulted": "sim.cycles_faulted",
    "retry": "sim.cycles_retry",
    "whole_program": "sim.cycles_whole_program_surcharge",
    "profile": "profile.cycles",
}

#: |a - b| <= CONSERVATION_TOL * max(|b|, 1): the ledger's float
#: accumulation slack, matching the C++-side ctest tolerance.
CONSERVATION_TOL = 1e-3


def _close(a, b):
    return abs(a - b) <= CONSERVATION_TOL * max(abs(b), 1.0)


def _check_ledger_node(node, path):
    """Validate one cost_attribution node and return phase self-cycle sums."""
    _require(isinstance(node, dict), path, "expected an object")
    _check_string(node, "name", path)
    for key in ("cycles_self", "cycles_total", "wall_us_self",
                "wall_us_total"):
        _check_number(node, key, path, minimum=0)
    _require(isinstance(node.get("children"), list), f"{path}.children",
             "expected an array")
    phase_cycles = {}
    if node["name"] in PHASE_GAUGES:
        phase_cycles[node["name"]] = node["cycles_self"]
    child_cycles = 0.0
    child_wall = 0.0
    for i, child in enumerate(node["children"]):
        for phase, cycles in _check_ledger_node(
                child, f"{path}.children[{i}]").items():
            phase_cycles[phase] = phase_cycles.get(phase, 0.0) + cycles
        child_cycles += child["cycles_total"]
        child_wall += child["wall_us_total"]
    _require(_close(node["cycles_self"] + child_cycles,
                    node["cycles_total"]), path,
             "conservation violated: cycles_total != cycles_self + "
             "sum(children cycles_total)")
    _require(_close(node["wall_us_self"] + child_wall,
                    node["wall_us_total"]), path,
             "conservation violated: wall_us_total != wall_us_self + "
             "sum(children wall_us_total)")
    return phase_cycles


def check_cost_attribution(ledger, metrics, path):
    """Schema + conservation for the ledger, reconciled against gauges."""
    phase_cycles = _check_ledger_node(ledger, path)
    _require(ledger["name"] == "all", f"{path}.name",
             "the ledger root must be named 'all'")
    if not isinstance(metrics, dict):
        return
    gauges = metrics.get("gauges", {})
    for phase, gauge in PHASE_GAUGES.items():
        if gauge not in gauges:
            continue
        _require(_close(phase_cycles.get(phase, 0.0), gauges[gauge]),
                 f"{path}", f"ledger phase {phase!r} "
                 f"({phase_cycles.get(phase, 0.0)!r} cycles) does not "
                 f"reconcile with gauge {gauge!r} ({gauges[gauge]!r})")


def check_engine_speedup(fragment, path):
    _require(isinstance(fragment, dict), path, "expected an object")
    _require(isinstance(fragment.get("kernels"), list) and
             fragment["kernels"], f"{path}.kernels",
             "expected a non-empty array")
    for i, kernel in enumerate(fragment["kernels"]):
        kpath = f"{path}.kernels[{i}]"
        _check_string(kernel, "name", kpath)
        _check_number(kernel, "interp_ns", kpath, minimum=0)
        _check_number(kernel, "vm_ns", kpath, minimum=0)
        _check_number(kernel, "speedup", kpath, minimum=0)
        _require(kernel["interp_ns"] > 0 and kernel["vm_ns"] > 0,
                 kpath, "timings must be positive")
    _check_number(fragment, "geomean", path, minimum=0)
    _require(fragment["geomean"] > 0, f"{path}.geomean",
             "expected a positive geomean")


def check_search(fragment, path):
    """The parallel-search / rating-cache section of a headline document.

    Two hard gates live here rather than in the drift sentinel, because
    they are correctness claims, not reproducibility claims: the batched
    parallel run must produce the bit-identical outcome of the serial run,
    and a warm rating-cache rerun must serve >90% of lookups from disk.
    The wall-clock speedup gate only applies when the recording machine
    had at least 4 hardware threads — on a 1- or 2-core CI box the >= 2x
    target is unreachable no matter how good the fan-out is.
    """
    _require(isinstance(fragment, dict), path, "expected an object")
    _check_string(fragment, "benchmark", path)
    _check_number(fragment, "threads", path, minimum=1)
    _check_number(fragment, "hardware_concurrency", path, minimum=1)
    _check_number(fragment, "serial_wall_s", path, minimum=0)
    _check_number(fragment, "parallel_wall_s", path, minimum=0)
    _check_number(fragment, "search_speedup", path, minimum=0)
    _check_bool(fragment, "outcome_identical", path)
    _require(fragment["outcome_identical"], f"{path}.outcome_identical",
             "parallel search outcome differs from the serial outcome")
    if fragment["hardware_concurrency"] >= 4:
        _require(fragment["search_speedup"] >= 2.0,
                 f"{path}.search_speedup",
                 f"expected >= 2.0x on a {fragment['hardware_concurrency']}"
                 f"-thread machine, got {fragment['search_speedup']!r}")
    cache = fragment.get("cache")
    _require(isinstance(cache, dict), f"{path}.cache", "expected an object")
    cpath = f"{path}.cache"
    _check_number(cache, "cold_stores", cpath, minimum=1)
    _check_number(cache, "warm_hits", cpath, minimum=0)
    _check_number(cache, "warm_misses", cpath, minimum=0)
    _check_number(cache, "warm_hit_rate", cpath, minimum=0)
    _require(cache["warm_hit_rate"] <= 1.0, f"{cpath}.warm_hit_rate",
             "expected a rate in [0, 1]")
    _require(cache["warm_hit_rate"] > 0.9, f"{cpath}.warm_hit_rate",
             f"warm rerun served only {cache['warm_hit_rate']!r} "
             "of lookups from the cache (gate: > 0.9)")
    _check_bool(cache, "warm_outcome_identical", cpath)
    _require(cache["warm_outcome_identical"],
             f"{cpath}.warm_outcome_identical",
             "warm cache rerun outcome differs from the cold run")


def check_telemetry(fragment, path):
    """The live-telemetry section of a headline document.

    The hard gate is non-perturbation: a tuning run scraped at full tilt
    must produce the bit-identical outcome of an unobserved run. Scrape
    latency percentiles are recorded for dashboards but not gated (they
    are wall-clock, machine-dependent); errors are gated at zero because
    every hammered request hit a handler the server itself registered.
    """
    _require(isinstance(fragment, dict), path, "expected an object")
    _check_number(fragment, "scrapes", path, minimum=1)
    _check_number(fragment, "errors", path, minimum=0)
    _require(fragment["errors"] == 0, f"{path}.errors",
             f"scrape hammer saw {fragment['errors']!r} failed requests")
    _check_number(fragment, "scrape_p50_us", path, minimum=0)
    _check_number(fragment, "scrape_p99_us", path, minimum=0)
    _require(fragment["scrape_p50_us"] <= fragment["scrape_p99_us"],
             path, "scrape_p50_us must be <= scrape_p99_us")
    _check_bool(fragment, "outcome_identical", path)
    _require(fragment["outcome_identical"], f"{path}.outcome_identical",
             "tuning outcome under scrape load differs from the "
             "unobserved outcome")


def check_crash_sweep(fragment, path):
    """The worker-isolation crash sweep of a headline document.

    Three hard gates, because these are correctness claims about the
    out-of-process sandbox: every isolated arm must complete (a crashed
    worker is respawned, never the run), every transient arm must produce
    the bit-identical outcome of a crash-free run with nothing quarantined
    (a survived crash leaves no trace), and at least one worker must
    actually have been respawned (the sweep injected real abort()s — zero
    respawns means the faults never fired and the gates were vacuous).
    """
    _require(isinstance(fragment, dict), path, "expected an object")
    _require(isinstance(fragment.get("arms"), list) and fragment["arms"],
             f"{path}.arms", "expected a non-empty array")
    for i, arm in enumerate(fragment["arms"]):
        apath = f"{path}.arms[{i}]"
        _check_string(arm, "benchmark", apath)
        _check_string(arm, "mode", apath)
        _require(arm["mode"] in ("transient", "sticky", "unisolated"),
                 f"{apath}.mode", f"unknown mode {arm['mode']!r}")
        _check_bool(arm, "isolated", apath)
        _check_bool(arm, "completed", apath)
        _check_bool(arm, "identical", apath)
        _check_number(arm, "respawns", apath, minimum=0)
        _check_number(arm, "quarantined", apath, minimum=0)
        if arm["isolated"]:
            _require(arm["completed"], f"{apath}.completed",
                     "an isolated arm did not complete (worker crash "
                     "escaped the sandbox)")
        if arm["mode"] == "transient":
            _require(arm["identical"], f"{apath}.identical",
                     "transient arm outcome differs from the crash-free "
                     "run (a survived crash left a trace)")
            _require(arm["quarantined"] == 0, f"{apath}.quarantined",
                     "transient arm quarantined a config (non-sticky "
                     "crashes must clear on retry)")
        if not arm["completed"]:
            _require(not arm["identical"], f"{apath}.identical",
                     "an arm that did not complete cannot match")
    summary = fragment.get("summary")
    _require(isinstance(summary, dict), f"{path}.summary",
             "expected an object")
    for key in ("isolated_completion_rate", "transient_identity_rate",
                "unisolated_completion_rate"):
        _check_number(summary, key, f"{path}.summary", minimum=0)
        _require(summary[key] <= 1.0, f"{path}.summary.{key}",
                 "expected a rate in [0, 1]")
    _require(summary["isolated_completion_rate"] == 1.0,
             f"{path}.summary.isolated_completion_rate",
             "isolated arms must always complete")
    _require(summary["transient_identity_rate"] == 1.0,
             f"{path}.summary.transient_identity_rate",
             "every transient arm must reproduce the crash-free outcome")
    _check_number(summary, "total_respawns", f"{path}.summary", minimum=1)


def check_dist_sweep(fragment, path):
    """The distributed-tuning sweep of a headline document.

    The hard gate is identity: every arm — any fleet size, and the kill
    arm where a worker drops its socket mid-run — must produce the
    bit-identical TuningOutcome of the threaded baseline. The kill arm
    must additionally show the liveness machinery actually fired: a
    worker was lost, at least one task requeued, and a replacement was
    absorbed mid-run (the bench kills the fleet's only worker, so the
    run provably cannot finish without the respawn) — otherwise the
    identity claim under churn was vacuous. Wall times are recorded for
    dashboards but not gated.
    """
    _require(isinstance(fragment, dict), path, "expected an object")
    _check_string(fragment, "benchmark", path)
    _check_number(fragment, "baseline_threads", path, minimum=1)
    _check_number(fragment, "baseline_wall_s", path, minimum=0)
    _require(isinstance(fragment.get("arms"), list) and fragment["arms"],
             f"{path}.arms", "expected a non-empty array")
    kill_arms = 0
    for i, arm in enumerate(fragment["arms"]):
        apath = f"{path}.arms[{i}]"
        _check_string(arm, "mode", apath)
        _require(arm["mode"] in ("fleet", "kill"), f"{apath}.mode",
                 f"unknown mode {arm['mode']!r}")
        _check_number(arm, "workers", apath, minimum=1)
        _check_number(arm, "wall_s", apath, minimum=0)
        _check_bool(arm, "completed", apath)
        _check_bool(arm, "outcome_identical", apath)
        _check_number(arm, "tasks_dispatched", apath, minimum=1)
        _check_number(arm, "tasks_requeued", apath, minimum=0)
        _check_number(arm, "workers_lost", apath, minimum=0)
        _check_number(arm, "workers_respawned", apath, minimum=0)
        _require(arm["completed"], f"{apath}.completed",
                 "a distributed arm did not complete (an agent exited "
                 "non-zero or the fleet never formed)")
        _require(arm["outcome_identical"], f"{apath}.outcome_identical",
                 "distributed outcome differs from the threaded baseline")
        if arm["mode"] == "kill":
            kill_arms += 1
            _require(arm["workers_lost"] >= 1, f"{apath}.workers_lost",
                     "the kill arm never lost a worker (the death hook "
                     "did not fire, so the churn gate is vacuous)")
            _require(arm["tasks_requeued"] >= 1, f"{apath}.tasks_requeued",
                     "the kill arm requeued nothing (the dead worker "
                     "held no work, so the churn gate is vacuous)")
            _require(arm["workers_respawned"] >= 1,
                     f"{apath}.workers_respawned",
                     "the kill arm absorbed no replacement worker "
                     "(the run should not even have finished)")
    _require(kill_arms >= 1, f"{path}.arms",
             "expected at least one kill arm")
    summary = fragment.get("summary")
    _require(isinstance(summary, dict), f"{path}.summary",
             "expected an object")
    _check_number(summary, "identity_rate", f"{path}.summary", minimum=0)
    _require(summary["identity_rate"] == 1.0,
             f"{path}.summary.identity_rate",
             "every distributed arm must reproduce the threaded outcome")
    _check_number(summary, "tasks_requeued", f"{path}.summary", minimum=1)
    _check_number(summary, "workers_respawned", f"{path}.summary",
                  minimum=1)


def check_dist_sweep_doc(doc, path):
    _require(doc.get("schema") == 1, path, "expected schema 1")
    _require("dist_sweep" in doc, path, "missing key 'dist_sweep'")
    check_dist_sweep(doc["dist_sweep"], f"{path}.dist_sweep")


def check_crash_sweep_doc(doc, path):
    _require(doc.get("schema") == 1, path, "expected schema 1")
    _require("crash_sweep" in doc, path, "missing key 'crash_sweep'")
    check_crash_sweep(doc["crash_sweep"], f"{path}.crash_sweep")


def check_engine_compare(doc, path):
    _require(doc.get("schema") == 1, path, "expected schema 1")
    _require("engine_speedup" in doc, path, "missing key 'engine_speedup'")
    check_engine_speedup(doc["engine_speedup"], f"{path}.engine_speedup")


def check_headline(doc, path):
    _require(doc.get("schema") == 1, path, "expected schema 1")
    _require(isinstance(doc.get("machines"), list) and doc["machines"],
             f"{path}.machines", "expected a non-empty array")
    for i, machine in enumerate(doc["machines"]):
        mpath = f"{path}.machines[{i}]"
        _check_string(machine, "machine", mpath)
        _require(isinstance(machine.get("runs"), list) and machine["runs"],
                 f"{mpath}.runs", "expected a non-empty array")
        for j, run in enumerate(machine["runs"]):
            rpath = f"{mpath}.runs[{j}]"
            _check_string(run, "benchmark", rpath)
            _check_string(run, "method", rpath)
            _require(run["method"] in ("CBR", "MBR", "RBR", "AVG", "WHL"),
                     f"{rpath}.method", f"unknown method {run['method']!r}")
            _check_number(run, "ref_improvement_pct", rpath)
            _check_number(run, "tuning_time_reduction_pct", rpath)
            _check_number(run, "configs_evaluated", rpath, minimum=1)
            _check_number(run, "invocations", rpath, minimum=1)
    headline = doc.get("headline")
    _require(isinstance(headline, dict), f"{path}.headline",
             "expected an object")
    for key in ("max_improvement_pct", "avg_improvement_pct",
                "max_time_reduction_pct", "avg_time_reduction_pct"):
        _check_number(headline, key, f"{path}.headline")
    if "engine_speedup" in doc:
        check_engine_speedup(doc["engine_speedup"], f"{path}.engine_speedup")
    # The parallel-search section joined the artifact later still, so it is
    # also optional for old files — but gated whenever present.
    if "search" in doc:
        check_search(doc["search"], f"{path}.search")
    # Ditto the live-telemetry section.
    if "telemetry" in doc:
        check_telemetry(doc["telemetry"], f"{path}.telemetry")
    # Ditto the worker-isolation crash sweep.
    if "crash_sweep" in doc:
        check_crash_sweep(doc["crash_sweep"], f"{path}.crash_sweep")
    # Ditto the distributed-tuning sweep.
    if "dist_sweep" in doc:
        check_dist_sweep(doc["dist_sweep"], f"{path}.dist_sweep")
    _require("metrics" in doc, path, "missing key 'metrics'")
    check_metrics(doc["metrics"], f"{path}.metrics")
    # cost_attribution joined the artifact after the metrics section, so
    # it is optional for old files — but validated whenever present.
    if "cost_attribution" in doc:
        check_cost_attribution(doc["cost_attribution"], doc["metrics"],
                               f"{path}.cost_attribution")


def check_fault_sweep(doc, path):
    _require(doc.get("schema") == 1, path, "expected schema 1")
    _require(isinstance(doc.get("sweep"), list) and doc["sweep"],
             f"{path}.sweep", "expected a non-empty array")
    for i, point in enumerate(doc["sweep"]):
        ppath = f"{path}.sweep[{i}]"
        _check_string(point, "benchmark", ppath)
        _check_number(point, "fault_prob", ppath, minimum=0)
        _require(point["fault_prob"] <= 1.0, f"{ppath}.fault_prob",
                 "expected a probability in [0, 1]")
        _check_number(point, "seed", ppath, minimum=0)
        _check_bool(point, "guarded", ppath)
        _check_bool(point, "completed", ppath)
        _check_bool(point, "matches_baseline", ppath)
        _check_number(point, "ref_improvement_pct", ppath)
        _check_number(point, "quarantined", ppath, minimum=0)
        _check_number(point, "invocations", ppath, minimum=0)
        if point["completed"]:
            _require(point["invocations"] >= 1, f"{ppath}.invocations",
                     "a completed run consumed at least one invocation")
        else:
            _require(not point["matches_baseline"],
                     f"{ppath}.matches_baseline",
                     "a run that did not complete cannot match")
    summary = doc.get("summary")
    _require(isinstance(summary, dict), f"{path}.summary",
             "expected an object")
    for key in ("guarded_completion_rate", "unguarded_completion_rate",
                "guarded_match_rate"):
        _check_number(summary, key, f"{path}.summary", minimum=0)
        _require(summary[key] <= 1.0, f"{path}.summary.{key}",
                 "expected a rate in [0, 1]")


CHECKERS = {
    "headline": check_headline,
    "engine_compare": check_engine_compare,
    "fault_sweep": check_fault_sweep,
    "crash_sweep": check_crash_sweep_doc,
    "dist_sweep": check_dist_sweep_doc,
}


def check_document(doc, path="$"):
    _require(isinstance(doc, dict), path, "top level must be an object")
    _check_all_finite(doc, path)
    _check_string(doc, "bench", path)
    checker = CHECKERS.get(doc["bench"])
    _require(checker is not None, f"{path}.bench",
             f"no schema registered for bench {doc['bench']!r}")
    checker(doc, path)


def check_file(filename):
    try:
        with open(filename, "r", encoding="utf-8") as handle:
            doc = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{filename}: FAIL ({exc})")
        return False
    try:
        check_document(doc)
    except SchemaError as exc:
        print(f"{filename}: FAIL ({exc})")
        return False
    print(f"{filename}: OK")
    return True


# --- engine-speedup regression gate -----------------------------------------

def extract_speedups(doc, path):
    """Return {kernel name: speedup} from a validated document."""
    _require("engine_speedup" in doc, path, "missing key 'engine_speedup'")
    fragment = doc["engine_speedup"]
    return {k["name"]: k["speedup"] for k in fragment["kernels"]}


def compare_speedups(candidate, baseline, max_regress_pct):
    """Check candidate speedups against baseline; returns error strings.

    Only kernels present in both documents are compared (so adding a new
    kernel does not break the gate against an older baseline), but the two
    sets must overlap — disjoint kernel lists mean the baseline is stale.
    """
    floor = 1.0 - max_regress_pct / 100.0
    cand = extract_speedups(candidate, "candidate")
    base = extract_speedups(baseline, "baseline")
    shared = sorted(set(cand) & set(base))
    if not shared:
        return ["no kernels in common between candidate and baseline"]
    errors = []
    for name in shared:
        allowed = base[name] * floor
        if cand[name] < allowed:
            errors.append(
                f"kernel {name!r}: speedup {cand[name]:.3f}x regressed more "
                f"than {max_regress_pct}% below baseline {base[name]:.3f}x "
                f"(floor {allowed:.3f}x)")
    return errors


def check_file_against_baseline(filename, baseline_file, max_regress_pct):
    try:
        with open(baseline_file, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        with open(filename, "r", encoding="utf-8") as handle:
            candidate = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{filename}: COMPARE FAIL ({exc})")
        return False
    try:
        errors = compare_speedups(candidate, baseline, max_regress_pct)
    except SchemaError as exc:
        print(f"{filename}: COMPARE FAIL ({exc})")
        return False
    if errors:
        for error in errors:
            print(f"{filename}: COMPARE FAIL ({error})")
        return False
    print(f"{filename}: COMPARE OK (vs {baseline_file}, "
          f"max regress {max_regress_pct}%)")
    return True


# --- metrics drift sentinel --------------------------------------------------

def _flatten_ledger(node, prefix=""):
    """{'all;sparc2;SWIM': cycles_total, ...} — wall is deliberately
    excluded (it varies run to run; cycles are deterministic)."""
    path = f"{prefix};{node['name']}" if prefix else node["name"]
    out = {path: node["cycles_total"]}
    for child in node.get("children", []):
        out.update(_flatten_ledger(child, path))
    return out


def _flatten_metrics(doc):
    """One {label: value} map covering everything the sentinel watches."""
    flat = {}
    metrics = doc.get("metrics", {})
    for name, value in metrics.get("counters", {}).items():
        flat[f"counters.{name}"] = value
    for name, value in metrics.get("gauges", {}).items():
        flat[f"gauges.{name}"] = value
    for name, hist in metrics.get("histograms", {}).items():
        flat[f"histograms.{name}.count"] = hist.get("count", 0)
        flat[f"histograms.{name}.sum"] = hist.get("sum", 0.0)
    if "cost_attribution" in doc:
        for path, cycles in _flatten_ledger(doc["cost_attribution"]).items():
            flat[f"ledger.{path}"] = cycles
    return flat


def compare_metrics(candidate, baseline, max_drift_pct, waived=()):
    """Diff two documents' metrics + ledger; returns error strings.

    The PEAK pipeline is a deterministic simulation, so counters, gauges,
    and ledger cycle totals should reproduce exactly; the tolerance only
    absorbs float accumulation order. Keys in the baseline but not the
    candidate fail (a silently vanishing metric is instrumentation rot);
    new keys in the candidate are fine (adding metrics must not break the
    gate against an older baseline). Wall-clock values are waived.
    """
    waived = tuple(waived) + ("wall",)
    cand = _flatten_metrics(candidate)
    base = _flatten_metrics(baseline)
    if not base:
        return ["baseline has no metrics to compare against"]
    errors = []
    for key in sorted(base):
        if any(w in key for w in waived):
            continue
        if key not in cand:
            errors.append(f"metric {key!r} present in baseline but missing "
                          f"from candidate")
            continue
        b, c = base[key], cand[key]
        allowed = abs(b) * max_drift_pct / 100.0
        if abs(c - b) > allowed:
            errors.append(
                f"metric {key!r} drifted out of band: {c!r} vs baseline "
                f"{b!r} (allowed +/-{max_drift_pct}%)")
    return errors


def check_file_metrics_against_baseline(filename, baseline_file,
                                        max_drift_pct, waived):
    try:
        with open(baseline_file, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        with open(filename, "r", encoding="utf-8") as handle:
            candidate = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{filename}: METRICS FAIL ({exc})")
        return False
    errors = compare_metrics(candidate, baseline, max_drift_pct, waived)
    if errors:
        for error in errors:
            print(f"{filename}: METRICS FAIL ({error})")
        return False
    print(f"{filename}: METRICS OK (vs {baseline_file}, "
          f"max drift {max_drift_pct}%)")
    return True


# --- self-test fixtures -----------------------------------------------------

GOOD = {
    "bench": "headline",
    "schema": 1,
    "machines": [
        {
            "machine": "UltraSPARC-II",
            "runs": [
                {
                    "benchmark": "MGRID",
                    "method": "MBR",
                    "ref_improvement_pct": 12.5,
                    "tuning_time_reduction_pct": 80.0,
                    "configs_evaluated": 40,
                    "invocations": 12000,
                }
            ],
        }
    ],
    "headline": {
        "max_improvement_pct": 178.0,
        "avg_improvement_pct": 26.0,
        "max_time_reduction_pct": 96.0,
        "avg_time_reduction_pct": 80.0,
    },
    "metrics": {
        "counters": {"search.configs_evaluated": 40,
                     "rating.invocations": 12000},
        "gauges": {"rating.mbr_residual": 0.02,
                   "sim.cycles_timed": 900.0,
                   "profile.cycles": 100.0},
        "histograms": {
            "rating.window_samples": {
                "bounds": [10.0, 20.0],
                "counts": [3, 1, 0],
                "count": 4,
                "sum": 55.0,
                "p50": 8.3,
                "p90": 16.0,
                "p99": 19.0,
            }
        },
    },
    "cost_attribution": {
        "name": "all", "cycles_self": 0.0, "cycles_total": 1000.0,
        "wall_us_self": 0.0, "wall_us_total": 50.0, "children": [
            {"name": "UltraSPARC-II", "cycles_self": 0.0,
             "cycles_total": 1000.0, "wall_us_self": 0.0,
             "wall_us_total": 50.0, "children": [
                 {"name": "MGRID", "cycles_self": 0.0,
                  "cycles_total": 1000.0, "wall_us_self": 0.0,
                  "wall_us_total": 50.0, "children": [
                      {"name": "resid", "cycles_self": 0.0,
                       "cycles_total": 1000.0, "wall_us_self": 0.0,
                       "wall_us_total": 50.0, "children": [
                           {"name": "profile", "cycles_self": 100.0,
                            "cycles_total": 100.0, "wall_us_self": 10.0,
                            "wall_us_total": 10.0, "children": []},
                           {"name": "MBR", "cycles_self": 0.0,
                            "cycles_total": 900.0, "wall_us_self": 30.0,
                            "wall_us_total": 40.0, "children": [
                                {"name": "timed", "cycles_self": 900.0,
                                 "cycles_total": 900.0, "wall_us_self": 10.0,
                                 "wall_us_total": 10.0, "children": []},
                            ]},
                       ]},
                  ]},
             ]},
        ],
    },
}

GOOD_SEARCH = {
    "benchmark": "SWIM",
    "threads": 4,
    "hardware_concurrency": 8,
    "serial_wall_s": 1.2,
    "parallel_wall_s": 0.4,
    "search_speedup": 3.0,
    "outcome_identical": True,
    "cache": {
        "cold_stores": 112,
        "warm_hits": 112,
        "warm_misses": 0,
        "warm_hit_rate": 1.0,
        "warm_outcome_identical": True,
    },
}

GOOD_TELEMETRY = {
    "scrapes": 240,
    "errors": 0,
    "scrape_p50_us": 180.0,
    "scrape_p99_us": 2400.0,
    "outcome_identical": True,
}

GOOD_FAULT = {
    "bench": "fault_sweep",
    "schema": 1,
    "sweep": [
        {
            "benchmark": "SWIM",
            "fault_prob": 0.05,
            "seed": 1,
            "guarded": True,
            "completed": True,
            "matches_baseline": True,
            "ref_improvement_pct": 5.3,
            "quarantined": 4,
            "invocations": 1452,
        },
        {
            "benchmark": "SWIM",
            "fault_prob": 0.05,
            "seed": 1,
            "guarded": False,
            "completed": False,
            "matches_baseline": False,
            "ref_improvement_pct": 0.0,
            "quarantined": 0,
            "invocations": 0,
        },
    ],
    "summary": {
        "guarded_completion_rate": 1.0,
        "unguarded_completion_rate": 0.0,
        "guarded_match_rate": 1.0,
    },
}

GOOD_CRASH = {
    "arms": [
        {"benchmark": "SWIM", "mode": "transient", "isolated": True,
         "completed": True, "identical": True, "respawns": 1,
         "quarantined": 0},
        {"benchmark": "SWIM", "mode": "sticky", "isolated": True,
         "completed": True, "identical": False, "respawns": 44,
         "quarantined": 15},
        {"benchmark": "SWIM", "mode": "unisolated", "isolated": False,
         "completed": False, "identical": False, "respawns": 0,
         "quarantined": 0},
    ],
    "summary": {
        "isolated_completion_rate": 1.0,
        "transient_identity_rate": 1.0,
        "unisolated_completion_rate": 0.0,
        "total_respawns": 45,
    },
}

GOOD_DIST = {
    "benchmark": "SWIM",
    "baseline_threads": 2,
    "baseline_wall_s": 0.041,
    "arms": [
        {"mode": "fleet", "workers": 1, "wall_s": 0.062, "completed": True,
         "outcome_identical": True, "tasks_dispatched": 38,
         "tasks_requeued": 0, "workers_lost": 0, "workers_respawned": 0},
        {"mode": "fleet", "workers": 2, "wall_s": 0.055, "completed": True,
         "outcome_identical": True, "tasks_dispatched": 38,
         "tasks_requeued": 0, "workers_lost": 0, "workers_respawned": 0},
        {"mode": "kill", "workers": 1, "wall_s": 0.058, "completed": True,
         "outcome_identical": True, "tasks_dispatched": 40,
         "tasks_requeued": 2, "workers_lost": 1, "workers_respawned": 1},
    ],
    "summary": {
        "identity_rate": 1.0,
        "tasks_requeued": 2,
        "workers_respawned": 1,
    },
}

GOOD_ENGINE = {
    "bench": "engine_compare",
    "schema": 1,
    "engine_speedup": {
        "kernels": [
            {"name": "branchy_small", "interp_ns": 90000.0,
             "vm_ns": 30000.0, "speedup": 3.0},
            {"name": "array_sweep", "interp_ns": 80000.0,
             "vm_ns": 40000.0, "speedup": 2.0},
        ],
        "geomean": 2.449,
    },
}


def _mutate(doc, fn):
    clone = json.loads(json.dumps(doc))
    fn(clone)
    return clone


def self_test():
    failures = []
    cases = [0]

    def expect(doc, valid, label):
        cases[0] += 1
        try:
            check_document(doc)
            ok = True
        except SchemaError:
            ok = False
        if ok != valid:
            failures.append(label)

    expect(GOOD, True, "good document rejected")
    expect(_mutate(GOOD, lambda d: d.pop("headline")), False,
           "missing headline accepted")
    expect(_mutate(GOOD, lambda d: d.update(schema=2)), False,
           "wrong schema accepted")
    expect(
        _mutate(GOOD, lambda d: d["machines"][0]["runs"][0].update(
            method="XYZ")), False, "unknown method accepted")
    expect(
        _mutate(GOOD, lambda d: d["machines"][0]["runs"][0].update(
            configs_evaluated=0)), False, "zero configs_evaluated accepted")
    expect(
        _mutate(
            GOOD, lambda d: d["metrics"]["histograms"][
                "rating.window_samples"].update(counts=[3, 1])), False,
        "short histogram counts accepted")
    expect(
        _mutate(
            GOOD, lambda d: d["metrics"]["histograms"][
                "rating.window_samples"].update(count=99)), False,
        "inconsistent histogram count accepted")
    expect(_mutate(GOOD, lambda d: d["metrics"].pop("counters")), False,
           "missing counters accepted")
    expect(_mutate(GOOD, lambda d: d["metrics"]["histograms"][
        "rating.window_samples"].update(p90=5.0)), False,
        "out-of-order percentiles accepted")
    expect(_mutate(GOOD, lambda d: d.pop("cost_attribution")), True,
           "headline without cost_attribution rejected")

    # cost_attribution: structure, conservation, gauge reconciliation.
    def ledger_method(d):
        return (d["cost_attribution"]["children"][0]["children"][0]
                ["children"][0]["children"][1])

    expect(_mutate(GOOD, lambda d: d["cost_attribution"].update(name="x")),
           False, "ledger root not named 'all' accepted")
    expect(_mutate(GOOD, lambda d: ledger_method(d).update(
        cycles_total=500.0)), False, "conservation violation accepted")
    expect(_mutate(GOOD, lambda d: ledger_method(d)["children"][0].update(
        cycles_self=float("nan"), cycles_total=float("nan"))), False,
        "NaN in cost_attribution accepted")
    expect(_mutate(GOOD, lambda d: d["metrics"]["gauges"].update(
        **{"sim.cycles_timed": 500.0})), False,
        "ledger/gauge cycle mismatch accepted")

    # The parallel-search section: optional, but hard-gated when present.
    def with_search(fn=None):
        def apply(d):
            d["search"] = json.loads(json.dumps(GOOD_SEARCH))
            if fn is not None:
                fn(d["search"])
        return _mutate(GOOD, apply)

    expect(with_search(), True, "headline with good search section rejected")
    expect(with_search(lambda s: s.update(outcome_identical=False)), False,
           "non-identical parallel outcome accepted")
    expect(with_search(lambda s: s["cache"].update(
        warm_hit_rate=0.5)), False, "50% warm hit rate accepted")
    expect(with_search(lambda s: s["cache"].update(
        warm_outcome_identical=False)), False,
        "non-identical warm cache outcome accepted")
    expect(with_search(lambda s: s.update(search_speedup=1.1)), False,
           "1.1x speedup on an 8-thread machine accepted")
    expect(with_search(lambda s: s.update(
        hardware_concurrency=1, search_speedup=1.0)), True,
        "speedup gate applied on a 1-thread machine")
    expect(with_search(lambda s: s.pop("cache")), False,
           "search section without cache stats accepted")
    expect(with_search(lambda s: s["cache"].update(cold_stores=0)), False,
           "cold run that stored nothing accepted")

    # The live-telemetry section: optional, but hard-gated when present.
    def with_telemetry(fn=None):
        def apply(d):
            d["telemetry"] = json.loads(json.dumps(GOOD_TELEMETRY))
            if fn is not None:
                fn(d["telemetry"])
        return _mutate(GOOD, apply)

    expect(with_telemetry(), True,
           "headline with good telemetry section rejected")
    expect(with_telemetry(lambda t: t.update(outcome_identical=False)),
           False, "perturbed outcome under scrape load accepted")
    expect(with_telemetry(lambda t: t.update(errors=3)), False,
           "failed scrapes accepted")
    expect(with_telemetry(lambda t: t.update(scrapes=0)), False,
           "telemetry section with zero scrapes accepted")
    expect(with_telemetry(lambda t: t.update(
        scrape_p50_us=5000.0, scrape_p99_us=100.0)), False,
        "p50 > p99 accepted")
    expect(with_telemetry(lambda t: t.pop("scrape_p99_us")), False,
           "missing scrape_p99_us accepted")

    # The worker-isolation crash sweep: optional in a headline, gated when
    # present, and also a standalone document schema.
    def with_crash(fn=None):
        def apply(d):
            d["crash_sweep"] = json.loads(json.dumps(GOOD_CRASH))
            if fn is not None:
                fn(d["crash_sweep"])
        return _mutate(GOOD, apply)

    expect(with_crash(), True,
           "headline with good crash_sweep section rejected")
    expect(with_crash(lambda c: c.update(arms=[])), False,
           "empty crash_sweep arms accepted")
    expect(with_crash(lambda c: c["arms"][0].update(mode="weird")), False,
           "unknown crash arm mode accepted")
    expect(with_crash(lambda c: c["arms"][0].update(
        completed=False, identical=False)), False,
        "isolated arm that did not complete accepted")
    expect(with_crash(lambda c: c["arms"][0].update(identical=False)),
           False, "non-identical transient arm accepted")
    expect(with_crash(lambda c: c["arms"][0].update(quarantined=2)), False,
           "transient arm with quarantined configs accepted")
    expect(with_crash(lambda c: c["arms"][2].update(identical=True)),
           False, "incomplete arm claiming identity accepted")
    expect(with_crash(lambda c: c["summary"].update(
        transient_identity_rate=1.2)), False, "crash rate > 1 accepted")
    expect(with_crash(lambda c: c["summary"].update(total_respawns=0)),
           False, "crash sweep with zero respawns accepted")
    expect(with_crash(lambda c: c.pop("summary")), False,
           "missing crash_sweep summary accepted")
    expect({"bench": "crash_sweep", "schema": 1, "crash_sweep": GOOD_CRASH},
           True, "good standalone crash_sweep document rejected")
    expect({"bench": "crash_sweep", "schema": 1}, False,
           "standalone crash_sweep document without fragment accepted")

    # The distributed-tuning sweep: optional in a headline, gated when
    # present, and also a standalone document schema.
    def with_dist(fn=None):
        def apply(d):
            d["dist_sweep"] = json.loads(json.dumps(GOOD_DIST))
            if fn is not None:
                fn(d["dist_sweep"])
        return _mutate(GOOD, apply)

    expect(with_dist(), True,
           "headline with good dist_sweep section rejected")
    expect(with_dist(lambda c: c.update(arms=[])), False,
           "empty dist_sweep arms accepted")
    expect(with_dist(lambda c: c["arms"][0].update(mode="weird")), False,
           "unknown dist arm mode accepted")
    expect(with_dist(lambda c: c["arms"][0].update(
        outcome_identical=False)), False,
        "non-identical distributed outcome accepted")
    expect(with_dist(lambda c: c["arms"][0].update(completed=False)),
           False, "distributed arm that did not complete accepted")
    expect(with_dist(lambda c: c["arms"][0].update(tasks_dispatched=0)),
           False, "distributed arm that dispatched nothing accepted")
    expect(with_dist(lambda c: c["arms"][2].update(workers_lost=0)),
           False, "kill arm that lost no worker accepted")
    expect(with_dist(lambda c: c["arms"][2].update(tasks_requeued=0)),
           False, "kill arm that requeued nothing accepted")
    expect(with_dist(lambda c: c["arms"][2].update(workers_respawned=0)),
           False, "kill arm that absorbed no replacement accepted")
    expect(with_dist(lambda c: c["arms"][2].pop("workers_respawned")),
           False, "kill arm without a respawn count accepted")
    expect(with_dist(lambda c: c["arms"].pop(2)), False,
           "dist_sweep without a kill arm accepted")
    expect(with_dist(lambda c: c["summary"].update(identity_rate=0.75)),
           False, "dist identity rate below 1 accepted")
    expect(with_dist(lambda c: c.pop("summary")), False,
           "missing dist_sweep summary accepted")
    expect({"bench": "dist_sweep", "schema": 1, "dist_sweep": GOOD_DIST},
           True, "good standalone dist_sweep document rejected")
    expect({"bench": "dist_sweep", "schema": 1}, False,
           "standalone dist_sweep document without fragment accepted")

    expect(GOOD_ENGINE, True, "good engine_compare document rejected")
    expect(_mutate(GOOD_ENGINE,
                   lambda d: d["engine_speedup"].update(kernels=[])), False,
           "empty kernel list accepted")
    expect(
        _mutate(GOOD_ENGINE, lambda d: d["engine_speedup"]["kernels"][0]
                .update(vm_ns=0)), False, "zero vm_ns accepted")
    expect(_mutate(GOOD_ENGINE,
                   lambda d: d["engine_speedup"].pop("geomean")), False,
           "missing geomean accepted")
    expect(_mutate(GOOD, lambda d: d.update(
        engine_speedup={"kernels": [], "geomean": 1.0})), False,
        "headline with malformed engine_speedup accepted")
    expect(_mutate(GOOD, lambda d: d.update(
        engine_speedup=GOOD_ENGINE["engine_speedup"])), True,
        "headline with engine_speedup rejected")

    expect(GOOD_FAULT, True, "good fault_sweep document rejected")
    expect(_mutate(GOOD_FAULT, lambda d: d.update(sweep=[])), False,
           "empty sweep accepted")
    expect(_mutate(GOOD_FAULT, lambda d: d["sweep"][0].update(
        fault_prob=1.5)), False, "fault_prob > 1 accepted")
    expect(_mutate(GOOD_FAULT, lambda d: d["sweep"][0].update(
        guarded="yes")), False, "non-boolean guarded accepted")
    expect(_mutate(GOOD_FAULT, lambda d: d["sweep"][1].update(
        matches_baseline=True)), False,
        "incomplete run claiming a baseline match accepted")
    expect(_mutate(GOOD_FAULT, lambda d: d["summary"].update(
        guarded_match_rate=1.2)), False, "rate > 1 accepted")
    expect(_mutate(GOOD_FAULT, lambda d: d.pop("summary")), False,
           "missing fault_sweep summary accepted")

    # NaN/Inf rejection applies to every schema, at any depth.
    expect(_mutate(GOOD_FAULT, lambda d: d["sweep"][0].update(
        ref_improvement_pct=float("nan"))), False,
        "NaN in fault_sweep accepted")
    expect(_mutate(GOOD, lambda d: d["headline"].update(
        avg_improvement_pct=float("inf"))), False,
        "Infinity in headline accepted")
    expect(_mutate(GOOD, lambda d: d["metrics"]["gauges"].update(
        bad=float("nan"))), False, "NaN metric gauge accepted")

    def expect_compare(cand, base, pct, ok_expected, label):
        cases[0] += 1
        errors = compare_speedups(cand, base, pct)
        if bool(not errors) != ok_expected:
            failures.append(label)

    regressed = _mutate(GOOD_ENGINE, lambda d: d["engine_speedup"][
        "kernels"][0].update(speedup=1.0))
    expect_compare(GOOD_ENGINE, GOOD_ENGINE, 50, True,
                   "identical speedups failed the gate")
    expect_compare(regressed, GOOD_ENGINE, 50, False,
                   "3.0x -> 1.0x regression passed a 50% gate")
    expect_compare(regressed, GOOD_ENGINE, 70, True,
                   "3.0x -> 1.0x failed a 70% gate (floor 0.9x)")
    disjoint = _mutate(GOOD_ENGINE, lambda d: d["engine_speedup"][
        "kernels"][0].update(name="other"))
    expect_compare(
        _mutate(disjoint, lambda d: d["engine_speedup"]["kernels"].pop()),
        _mutate(GOOD_ENGINE,
                lambda d: d["engine_speedup"]["kernels"].pop(0)),
        50, False, "disjoint kernel sets passed the gate")

    # The metrics-drift sentinel.
    def expect_drift(cand, base, pct, ok_expected, label):
        cases[0] += 1
        errors = compare_metrics(cand, base, pct)
        if bool(not errors) != ok_expected:
            failures.append(label)

    expect_drift(GOOD, GOOD, 10, True, "identical metrics failed the gate")
    expect_drift(_mutate(GOOD, lambda d: d["metrics"]["counters"].update(
        **{"rating.invocations": 18000})), GOOD, 10, False,
        "50% drift in rating.invocations passed a 10% gate")
    expect_drift(_mutate(GOOD, lambda d: d["metrics"]["counters"].pop(
        "rating.invocations")), GOOD, 10, False,
        "metric missing from candidate passed the gate")
    expect_drift(_mutate(GOOD, lambda d: d["metrics"]["counters"].update(
        extra=1)), GOOD, 10, True,
        "new metric in candidate failed the gate")
    expect_drift(_mutate(GOOD, lambda d: d["cost_attribution"].update(
        wall_us_self=99999.0, wall_us_total=99999.0 + 50.0)), GOOD, 10,
        True, "wall drift was not waived")
    deep_drift = _mutate(GOOD, lambda d: ledger_method(d)["children"][0]
                         .update(cycles_self=300.0, cycles_total=300.0))
    expect_drift(deep_drift, GOOD, 10, False,
                 "ledger cycle drift passed the gate")

    if failures:
        for failure in failures:
            print(f"self-test: FAIL ({failure})")
        return False
    print(f"self-test: OK ({cases[0]} cases)")
    return True


def main(argv):
    if "--self-test" in argv:
        return 0 if self_test() else 1
    files = []
    baseline = None
    metrics_baseline = None
    max_regress_pct = 50.0
    max_metric_drift_pct = 10.0
    waived = []

    def value_of(flag, index):
        if index + 1 >= len(argv):
            print(f"{flag} requires an argument")
            return None
        return argv[index + 1]

    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--compare":
            baseline = value_of(arg, i)
            if baseline is None:
                return 1
            i += 2
        elif arg == "--compare-metrics":
            metrics_baseline = value_of(arg, i)
            if metrics_baseline is None:
                return 1
            i += 2
        elif arg == "--waive-metric":
            waiver = value_of(arg, i)
            if waiver is None:
                return 1
            waived.append(waiver)
            i += 2
        elif arg in ("--max-regress-pct", "--max-metric-drift-pct"):
            raw = value_of(arg, i)
            if raw is None:
                return 1
            try:
                pct = float(raw)
            except ValueError:
                print(f"{arg}: not a number: {raw!r}")
                return 1
            if arg == "--max-regress-pct":
                max_regress_pct = pct
            else:
                max_metric_drift_pct = pct
            i += 2
        elif arg.startswith("--"):
            print(f"unknown option {arg!r}")
            return 1
        else:
            files.append(arg)
            i += 1
    if not files:
        print(__doc__.strip())
        return 1
    ok = all([check_file(f) for f in files])
    if baseline is not None:
        ok = all([check_file_against_baseline(f, baseline, max_regress_pct)
                  for f in files]) and ok
    if metrics_baseline is not None:
        ok = all([check_file_metrics_against_baseline(
            f, metrics_baseline, max_metric_drift_pct, waived)
            for f in files]) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
