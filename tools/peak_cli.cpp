/// \file peak_cli.cpp
/// The `peak` command-line tool: drive the library without writing code.
///
///   peak list                          available benchmarks
///   peak analyze  [--machine M]        consultant verdicts per section
///   peak tune     --benchmark B [--machine M] [--method X] [--csv]
///   peak sweep    [--machine M] [--csv|--markdown]   (the Figure 7 runs)
///   peak app      [--machine M]        whole-application tuning
///
/// Machines: sparc2 (default), p4. Methods: CBR MBR RBR AVG WHL (default:
/// consultant's choice).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel.hpp"
#include "core/peak.hpp"
#include "core/profile.hpp"
#include "core/config_store.hpp"
#include "core/rating_cache.hpp"
#include "core/report.hpp"
#include "core/tuning_driver.hpp"
#include "fault/injector.hpp"
#include "obs/export.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/trace.hpp"
#include "support/table.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace peak;

struct Args {
  std::string command;
  std::string benchmark;
  std::string machine = "sparc2";
  std::optional<rating::Method> method;
  std::string save_path;     ///< persist tuned configs (tune)
  std::string load_path;     ///< evaluate stored configs (apply)
  std::string trace_path;    ///< span/event export (.jsonl or Chrome JSON)
  std::string metrics_path;  ///< metrics registry snapshot (JSON)
  std::string folded_path;   ///< cost ledger as folded stacks (flamegraph)
  bool progress = false;     ///< live dashboard on stderr while running
  double fault_prob = 0.0;        ///< per-config fault probability (tune)
  std::uint64_t fault_seed = 0x5eed;  ///< fault injector seed
  bool no_guard = false;          ///< disable the guarded executor
  std::string journal_path;       ///< crash-safe tuning journal (tune)
  bool resume = false;            ///< replay the journal before tuning
  /// Batched search probing: 1 = batch semantics on one thread, N > 1
  /// fans each probe round out over N workers (bit-identical outcome for
  /// every N >= 1), 0 = the classic serial chained-stream path.
  unsigned search_threads =
      std::max(1u, std::thread::hardware_concurrency());
  std::string rating_cache_path;  ///< persistent rating cache (tune)
  bool csv = false;
  bool markdown = false;
  bool verbose = false;  ///< print the metrics table after the command

  /// True when the tune command must run through the fault-aware driver
  /// instead of the plain Peak facade.
  [[nodiscard]] bool wants_driver() const {
    return fault_prob > 0.0 || no_guard || !journal_path.empty() || resume;
  }
};

std::optional<rating::Method> parse_method(const std::string& name) {
  for (rating::Method m :
       {rating::Method::kCBR, rating::Method::kMBR, rating::Method::kRBR,
        rating::Method::kAVG, rating::Method::kWHL})
    if (name == rating::to_string(m)) return m;
  return std::nullopt;
}

int usage() {
  std::fprintf(stderr,
               "usage: peak <list|analyze|tune|sweep|app|apply> [options]\n"
               "  --benchmark NAME   (tune)\n"
               "  --machine sparc2|p4\n"
               "  --method CBR|MBR|RBR|AVG|WHL\n"
               "  --csv | --markdown\n"
               "  --save FILE   (tune: persist the winning config)\n"
               "  --load FILE   (apply: evaluate a stored config)\n"
               "  --trace FILE    span trace (.jsonl = JSONL, else Chrome "
               "trace JSON)\n"
               "  --metrics FILE  metrics registry snapshot as JSON\n"
               "  --cost-folded FILE  cost ledger as folded stacks "
               "(flamegraph.pl input)\n"
               "  --progress      live progress dashboard on stderr\n"
               "  --fault-prob P  (tune) inject faults into P of configs\n"
               "  --fault-seed S  (tune) fault injector seed\n"
               "  --no-guard      (tune) disable the guarded executor\n"
               "  --journal FILE  (tune) append-only crash-safe journal\n"
               "  --resume        (tune) replay the journal, then continue\n"
               "  --search-threads N  (tune) parallel batched probing; "
               "default = cores,\n"
               "                  1 = same result serially, 0 = classic "
               "serial path\n"
               "  --rating-cache FILE (tune) persistent content-addressed "
               "rating cache\n"
               "                  (ignored when --fault-prob > 0)\n"
               "  --verbose       print the metrics table on exit\n");
  return 2;
}

sim::MachineModel machine_of(const Args& args) {
  return args.machine == "p4" ? sim::pentium4() : sim::sparc2();
}

int cmd_list() {
  support::Table table;
  table.row({"benchmark", "section", "paper method", "paper invocations"});
  for (const auto& w : workloads::all_workloads())
    table.add_row()
        .cell(w->benchmark())
        .cell(w->ts_name())
        .cell(rating::to_string(w->paper_method()))
        .cell(std::to_string(w->paper_invocations()));
  table.print(std::cout);
  return 0;
}

int cmd_analyze(const Args& args) {
  const sim::MachineModel machine = machine_of(args);
  support::Table table;
  table.row({"section", "context vars", "#ctx", "chain", "checkpoint"});
  for (const auto& w : workloads::all_workloads()) {
    if (!args.benchmark.empty() && w->benchmark() != args.benchmark)
      continue;
    const workloads::Trace train =
        w->trace(workloads::DataSet::kTrain, 42);
    const core::ProfileData p =
        core::profile_workload(*w, train, machine);
    std::string chain;
    for (rating::Method m : p.decision.chain) {
      if (!chain.empty()) chain += ">";
      chain += rating::to_string(m);
    }
    table.add_row()
        .cell(w->full_name())
        .cell(p.context_analysis.describe(w->function()))
        .cell(std::to_string(p.num_contexts))
        .cell(chain)
        .cell(p.checkpoint_plan.describe(w->function()));
  }
  table.print(std::cout);
  return 0;
}

/// Fault-aware tuning: drives a TuningDriver directly so the fault
/// injector, guarded executor, and crash-safe journal can be wired in.
int cmd_tune_driver(const Args& args,
                    const workloads::Workload& workload) {
  const sim::MachineModel machine = machine_of(args);
  const sim::FlagEffectModel effects(search::gcc33_o3_space());
  const workloads::Trace train =
      workload.trace(workloads::DataSet::kTrain, 42);
  const core::ProfileData profile =
      core::profile_workload(workload, train, machine);

  fault::FaultModel model;
  model.fault_prob = args.fault_prob;
  model.seed = args.fault_seed;
  fault::FaultInjector injector(model);
  // The -O3 start config is shipping production code; faulting it would
  // only test the harness, not the tuner.
  injector.exempt(search::o3_config(effects.space()));

  core::DriverOptions options;
  if (args.fault_prob > 0.0) options.fault.injector = &injector;
  options.fault.guard_execution = !args.no_guard;
  options.fault.journal_path = args.journal_path;
  options.fault.resume = args.resume;
  options.search_threads = args.search_threads;
  // Must outlive the driver; the evaluator ignores it whenever a fault
  // injector is installed (cached ratings would be unsound there).
  std::optional<core::RatingCache> cache;
  if (!args.rating_cache_path.empty()) {
    cache.emplace(args.rating_cache_path);
    options.rating_cache = &*cache;
  }

  core::TuningDriver driver(workload, profile, train, machine, effects,
                            options);
  core::TuningOutcome outcome;
  try {
    outcome = args.method ? driver.tune(*args.method) : driver.tune_auto();
  } catch (const fault::FaultError& e) {
    std::fprintf(stderr, "tuning died on an unguarded fault: %s\n",
                 e.what());
    return 1;
  }

  const workloads::Trace ref = workload.trace(workloads::DataSet::kRef, 1);
  const double o3 = core::expected_trace_time(
      workload, ref, machine, effects, search::o3_config(effects.space()));
  const double tuned = core::expected_trace_time(workload, ref, machine,
                                                 effects,
                                                 outcome.best_config);

  std::printf("%s on %s via %s\n", workload.full_name().c_str(),
              machine.name.c_str(), rating::to_string(outcome.method));
  std::printf("  improvement over -O3 (ref): %.2f%%\n",
              (o3 / tuned - 1.0) * 100.0);
  std::printf("  flags removed: %s\n",
              outcome.best_config
                  .describe(effects.space(), /*invert=*/true)
                  .c_str());
  std::printf("  cost: %zu invocations (%.2f program runs)\n",
              outcome.cost.invocations, outcome.cost.program_runs);
  if (args.fault_prob > 0.0)
    std::printf("  faults: prob %.3f seed %llu, guard %s\n",
                args.fault_prob,
                static_cast<unsigned long long>(args.fault_seed),
                args.no_guard ? "OFF" : "on");
  if (!args.journal_path.empty())
    std::printf("  journal: %s%s\n", args.journal_path.c_str(),
                args.resume ? " (resumed)" : "");
  if (cache)
    std::printf("  rating cache: %s (%zu entries%s)\n",
                cache->path().c_str(), cache->size(),
                args.fault_prob > 0.0 ? ", disabled under faults" : "");
  const auto& quarantine = driver.quarantine();
  if (quarantine.size() > 0 || args.fault_prob > 0.0) {
    std::printf("  quarantined configs: %zu\n", quarantine.size());
    for (const auto& [key, entry] : quarantine.entries()) {
      if (!entry.quarantined) continue;
      std::printf("    %s  (%s, %zu failures)\n", key.c_str(),
                  fault::to_string(entry.kind), entry.failures);
    }
  }

  if (!args.save_path.empty()) {
    core::ConfigStore store(effects.space());
    store.load_file(args.save_path);  // merge with existing records
    core::StoredConfig entry;
    entry.config = outcome.best_config;
    entry.method = outcome.method;
    entry.improvement_pct = (o3 / tuned - 1.0) * 100.0;
    for (const auto& [key, q] : quarantine.entries())
      if (q.quarantined)
        entry.quarantined.push_back({key, q.kind, q.failures});
    store.put(workload.full_name(), machine.name, entry);
    if (!store.save_file(args.save_path)) {
      std::fprintf(stderr, "failed to write %s\n", args.save_path.c_str());
      return 1;
    }
    std::printf("  saved to %s\n", args.save_path.c_str());
  }
  return 0;
}

int cmd_tune(const Args& args) {
  if (args.benchmark.empty()) return usage();
  const auto workload = workloads::make_workload(args.benchmark);
  if (!workload) {
    std::fprintf(stderr, "unknown benchmark '%s'\n",
                 args.benchmark.c_str());
    return 1;
  }
  if (args.wants_driver()) return cmd_tune_driver(args, *workload);
  const sim::MachineModel machine = machine_of(args);
  core::PeakOptions popts;
  popts.driver.search_threads = args.search_threads;
  std::optional<core::RatingCache> cache;  // must outlive `peak`
  if (!args.rating_cache_path.empty()) {
    cache.emplace(args.rating_cache_path);
    popts.driver.rating_cache = &*cache;
  }
  core::Peak peak(machine, popts);

  core::MethodRun run;
  if (args.method) {
    const workloads::Trace train =
        workload->trace(workloads::DataSet::kTrain, 1);
    core::BenchmarkResult result =
        peak.run_benchmark(*workload, /*all_methods=*/true, {*args.method});
    const core::MethodRun* found =
        result.find(*args.method, workloads::DataSet::kTrain);
    if (!found) {
      std::fprintf(stderr, "method did not run\n");
      return 1;
    }
    run = *found;
  } else {
    run = peak.tune_with_consultant(*workload);
  }

  std::printf("%s on %s via %s\n", workload->full_name().c_str(),
              machine.name.c_str(), rating::to_string(run.method));
  std::printf("  improvement over -O3 (ref): %.2f%%\n",
              run.ref_improvement_pct);
  std::printf("  flags removed: %s\n",
              run.best_config
                  .describe(peak.effects().space(), /*invert=*/true)
                  .c_str());
  std::printf("  cost: %zu invocations (%.2f program runs)\n",
              run.cost.invocations, run.cost.program_runs);
  if (cache)
    std::printf("  rating cache: %s (%zu entries)\n",
                cache->path().c_str(), cache->size());

  if (!args.save_path.empty()) {
    core::ConfigStore store(peak.effects().space());
    store.load_file(args.save_path);  // merge with existing records
    core::StoredConfig entry;
    entry.config = run.best_config;
    entry.method = run.method;
    entry.improvement_pct = run.ref_improvement_pct;
    store.put(workload->full_name(), machine.name, entry);
    if (!store.save_file(args.save_path)) {
      std::fprintf(stderr, "failed to write %s\n", args.save_path.c_str());
      return 1;
    }
    std::printf("  saved to %s\n", args.save_path.c_str());
  }
  return 0;
}

int cmd_apply(const Args& args) {
  if (args.benchmark.empty() || args.load_path.empty()) return usage();
  const auto workload = workloads::make_workload(args.benchmark);
  if (!workload) {
    std::fprintf(stderr, "unknown benchmark '%s'\n",
                 args.benchmark.c_str());
    return 1;
  }
  const sim::MachineModel machine = machine_of(args);
  const sim::FlagEffectModel effects(search::gcc33_o3_space());
  core::ConfigStore store(effects.space());
  if (!store.load_file(args.load_path)) {
    std::fprintf(stderr, "cannot read %s\n", args.load_path.c_str());
    return 1;
  }
  const auto entry = store.get(workload->full_name(), machine.name);
  if (!entry) {
    std::fprintf(stderr, "no stored config for %s @ %s\n",
                 workload->full_name().c_str(), machine.name.c_str());
    return 1;
  }
  const workloads::Trace ref = workload->trace(workloads::DataSet::kRef, 1);
  const double o3 = core::expected_trace_time(
      *workload, ref, machine, effects, search::o3_config(effects.space()));
  const double tuned = core::expected_trace_time(*workload, ref, machine,
                                                 effects, entry->config);
  std::printf("%s @ %s (stored via %s): improvement %.2f%% on ref\n",
              workload->full_name().c_str(), machine.name.c_str(),
              rating::to_string(entry->method),
              (o3 / tuned - 1.0) * 100.0);
  return 0;
}

int cmd_sweep(const Args& args) {
  const sim::MachineModel machine = machine_of(args);
  core::Peak peak(machine);
  std::vector<core::BenchmarkResult> results;
  for (const std::string& name : workloads::figure7_benchmarks()) {
    const auto workload = workloads::make_workload(name);
    std::vector<rating::Method> extra;
    if (name == "MGRID") extra.push_back(rating::Method::kCBR);
    results.push_back(peak.run_benchmark(*workload, true, extra));
  }
  if (args.csv)
    std::cout << core::to_csv(results);
  else
    std::cout << core::to_markdown(results);
  return 0;
}

int cmd_app(const Args& args) {
  std::vector<std::unique_ptr<workloads::Workload>> owned;
  std::vector<const workloads::Workload*> sections;
  for (const std::string& name : workloads::figure7_benchmarks()) {
    owned.push_back(workloads::make_workload(name));
    sections.push_back(owned.back().get());
  }
  const core::ApplicationOutcome outcome =
      core::tune_application(sections, machine_of(args), {}, 4);
  std::cout << core::to_markdown(outcome);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (argc < 2) return usage();
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--benchmark") {
      const char* v = next();
      if (!v) return usage();
      args.benchmark = v;
    } else if (arg == "--machine") {
      const char* v = next();
      if (!v) return usage();
      args.machine = v;
    } else if (arg == "--method") {
      const char* v = next();
      if (!v) return usage();
      args.method = parse_method(v);
      if (!args.method) return usage();
    } else if (arg == "--save") {
      const char* v = next();
      if (!v) return usage();
      args.save_path = v;
    } else if (arg == "--load") {
      const char* v = next();
      if (!v) return usage();
      args.load_path = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (!v) return usage();
      args.trace_path = v;
    } else if (arg == "--metrics") {
      const char* v = next();
      if (!v) return usage();
      args.metrics_path = v;
    } else if (arg == "--cost-folded") {
      const char* v = next();
      if (!v) return usage();
      args.folded_path = v;
    } else if (arg == "--progress") {
      args.progress = true;
    } else if (arg == "--fault-prob") {
      const char* v = next();
      if (!v) return usage();
      args.fault_prob = std::strtod(v, nullptr);
      if (args.fault_prob < 0.0 || args.fault_prob > 1.0) return usage();
    } else if (arg == "--fault-seed") {
      const char* v = next();
      if (!v) return usage();
      args.fault_seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--no-guard") {
      args.no_guard = true;
    } else if (arg == "--journal") {
      const char* v = next();
      if (!v) return usage();
      args.journal_path = v;
    } else if (arg == "--resume") {
      args.resume = true;
    } else if (arg == "--search-threads") {
      const char* v = next();
      if (!v) return usage();
      args.search_threads =
          static_cast<unsigned>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--rating-cache") {
      const char* v = next();
      if (!v) return usage();
      args.rating_cache_path = v;
    } else if (arg == "--csv") {
      args.csv = true;
    } else if (arg == "--markdown") {
      args.markdown = true;
    } else if (arg == "--verbose") {
      args.verbose = true;
    } else {
      return usage();
    }
  }

  if (!args.trace_path.empty()) {
    auto sink = obs::make_file_sink(args.trace_path);
    if (!sink) {
      std::fprintf(stderr, "cannot open trace file %s\n",
                   args.trace_path.c_str());
      return 1;
    }
    obs::Tracer::global().set_sink(std::move(sink));
  }

  obs::ProgressView progress;
  if (args.progress) progress.start();

  int rc;
  if (args.command == "list")
    rc = cmd_list();
  else if (args.command == "analyze")
    rc = cmd_analyze(args);
  else if (args.command == "tune")
    rc = cmd_tune(args);
  else if (args.command == "sweep")
    rc = cmd_sweep(args);
  else if (args.command == "app")
    rc = cmd_app(args);
  else if (args.command == "apply")
    rc = cmd_apply(args);
  else
    rc = usage();

  if (args.progress) progress.stop();

  // Dropping the sink flushes and closes the trace file.
  obs::Tracer::global().set_sink(nullptr);
  if (!args.folded_path.empty() &&
      !obs::write_folded_file(obs::Ledger::global().snapshot(),
                              args.folded_path)) {
    std::fprintf(stderr, "failed to write %s\n", args.folded_path.c_str());
    if (rc == 0) rc = 1;
  }
  if (!args.metrics_path.empty() &&
      !obs::write_metrics_json_file(obs::MetricsRegistry::global().snapshot(),
                                    args.metrics_path)) {
    std::fprintf(stderr, "failed to write %s\n", args.metrics_path.c_str());
    if (rc == 0) rc = 1;
  }
  if (args.verbose)
    obs::metrics_table(obs::MetricsRegistry::global().snapshot())
        .print(std::cerr);
  return rc;
}
