/// \file peak_cli.cpp
/// The `peak` command-line tool: drive the library without writing code.
///
///   peak list                          available benchmarks
///   peak analyze  [--machine M]        consultant verdicts per section
///   peak tune     --benchmark B [--machine M] [--method X] [--csv]
///   peak sweep    [--machine M] [--csv|--markdown]   (the Figure 7 runs)
///   peak app      [--machine M]        whole-application tuning
///   peak monitor  <host:port|port|port-file> [--once]   watch a live run
///   peak worker   (--connect H:P | --listen P)   serve a tuning fleet
///
/// Machines: sparc2 (default), p4. Methods: CBR MBR RBR AVG WHL (default:
/// consultant's choice).

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/parallel.hpp"
#include "core/peak.hpp"
#include "core/profile.hpp"
#include "core/config_store.hpp"
#include "core/rating_cache.hpp"
#include "core/report.hpp"
#include "core/jsonl.hpp"
#include "core/remote_eval.hpp"
#include "core/tuning_driver.hpp"
#include "dist/coordinator.hpp"
#include "dist/worker_agent.hpp"
#include "fault/injector.hpp"
#include "fault/quarantine.hpp"
#include "obs/event_ring.hpp"
#include "obs/export.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "obs/telemetry_server.hpp"
#include "obs/trace.hpp"
#include "proc/worker_table.hpp"
#include "support/http_server.hpp"
#include "support/shutdown.hpp"
#include "support/table.hpp"
#include "support/tcp.hpp"
#include "workloads/workload.hpp"

namespace {

using namespace peak;

struct Args {
  std::string command;
  std::string benchmark;
  std::string machine = "sparc2";
  std::optional<rating::Method> method;
  std::string save_path;     ///< persist tuned configs (tune)
  std::string load_path;     ///< evaluate stored configs (apply)
  std::string trace_path;    ///< span/event export (.jsonl or Chrome JSON)
  std::string metrics_path;  ///< metrics registry snapshot (JSON)
  std::string folded_path;   ///< cost ledger as folded stacks (flamegraph)
  bool progress = false;     ///< live dashboard on stderr while running
  double fault_prob = 0.0;        ///< per-config fault probability (tune)
  std::uint64_t fault_seed = 0x5eed;  ///< fault injector seed
  bool no_guard = false;          ///< disable the guarded executor
  std::string journal_path;       ///< crash-safe tuning journal (tune)
  bool resume = false;            ///< replay the journal before tuning
  bool journal_strict = false;    ///< fail on corrupt journal lines
  /// Batched search probing: 1 = batch semantics on one thread, N > 1
  /// fans each probe round out over N workers (bit-identical outcome for
  /// every N >= 1), 0 = the classic serial chained-stream path.
  unsigned search_threads =
      std::max(1u, std::thread::hardware_concurrency());
  /// Out-of-process isolation: N > 0 forks each probe round out over N
  /// supervised worker subprocesses (bit-identical to --search-threads N;
  /// worker crashes are contained and retried). 0 = in-process.
  unsigned isolate_workers = 0;
  std::string rating_cache_path;  ///< persistent rating cache (tune)
  /// -1 = telemetry off; 0 = serve on an ephemeral port; else that port.
  int telemetry_port = -1;
  std::string progress_json_path;  ///< periodic atomic ProgressModel JSON
  std::string monitor_target;      ///< host:port, port, or port file
  bool once = false;               ///< monitor: one snapshot, no tail
  bool csv = false;
  bool markdown = false;
  bool verbose = false;  ///< print the metrics table after the command
  /// Distributed tuning (tune): "listen:PORT" accepts `peak worker
  /// --connect` agents, --workers dials agents in --listen mode. Both
  /// imply the driver path; mutually exclusive with each other and with
  /// --fault-prob / --isolate-workers.
  std::string distribute;          ///< "listen:PORT" (tune)
  std::string workers_csv;         ///< "host1:p1,host2:p2" (tune)
  unsigned min_workers = 0;        ///< 0 = dialed endpoints, or 1
  std::string worker_connect;      ///< worker: coordinator host:port
  int worker_listen_port = -1;     ///< worker: -1 = connect mode
  std::string worker_name;         ///< worker: advertised fleet label

  /// True when distributed tuning is requested at all.
  [[nodiscard]] bool distributed() const {
    return !distribute.empty() || !workers_csv.empty();
  }

  /// True when the tune command must run through the fault-aware driver
  /// instead of the plain Peak facade.
  [[nodiscard]] bool wants_driver() const {
    return fault_prob > 0.0 || no_guard || !journal_path.empty() ||
           resume || distributed();
  }

  /// The `--resume` command line to suggest after a graceful interrupt.
  [[nodiscard]] std::string resume_hint() const {
    if (journal_path.empty())
      return "re-run with --journal FILE to make interrupted runs "
             "resumable";
    std::string hint = "peak tune --benchmark " + benchmark;
    if (machine != "sparc2") hint += " --machine " + machine;
    hint += " --journal " + journal_path + " --resume";
    return "resume with: " + hint;
  }
};

std::optional<rating::Method> parse_method(const std::string& name) {
  for (rating::Method m :
       {rating::Method::kCBR, rating::Method::kMBR, rating::Method::kRBR,
        rating::Method::kAVG, rating::Method::kWHL})
    if (name == rating::to_string(m)) return m;
  return std::nullopt;
}

int usage() {
  std::fprintf(stderr,
               "usage: peak <list|analyze|tune|sweep|app|apply|monitor"
               "|worker> [options]\n"
               "  --benchmark NAME   (tune)\n"
               "  --machine sparc2|p4\n"
               "  --method CBR|MBR|RBR|AVG|WHL\n"
               "  --csv | --markdown\n"
               "  --save FILE   (tune: persist the winning config)\n"
               "  --load FILE   (apply: evaluate a stored config)\n"
               "  --trace FILE    span trace (.jsonl = JSONL, else Chrome "
               "trace JSON)\n"
               "  --metrics FILE  metrics registry snapshot as JSON\n"
               "  --cost-folded FILE  cost ledger as folded stacks "
               "(flamegraph.pl input)\n"
               "  --progress      live progress dashboard on stderr\n"
               "  --fault-prob P  (tune) inject faults into P of configs\n"
               "  --fault-seed S  (tune) fault injector seed\n"
               "  --no-guard      (tune) disable the guarded executor\n"
               "  --journal FILE  (tune) append-only crash-safe journal\n"
               "  --resume        (tune) replay the journal, then continue\n"
               "  --journal-strict  (tune) fail on corrupt journal lines "
               "instead of\n"
               "                  truncating to the intact prefix\n"
               "  --search-threads N  (tune) parallel batched probing; "
               "default = cores,\n"
               "                  1 = same result serially, 0 = classic "
               "serial path\n"
               "  --isolate-workers N  (tune) rate in N supervised worker "
               "subprocesses\n"
               "                  (crash containment; bit-identical to "
               "--search-threads N)\n"
               "  --rating-cache FILE (tune) persistent content-addressed "
               "rating cache\n"
               "                  (ignored when --fault-prob > 0)\n"
               "  --telemetry-port N  (tune) serve /metrics /snapshot "
               "/events /healthz\n"
               "                  /quarantine /cache/stats /workers on "
               "127.0.0.1:N (0 = ephemeral;\n"
               "                  bound port printed and written to "
               "<journal>.port or peak.port)\n"
               "  --progress-json FILE  (tune) periodically rewrite FILE "
               "(atomic) with\n"
               "                  the progress model as JSON\n"
               "  peak monitor <host:port|port|port-file> [--once]\n"
               "                  render a remote /snapshot, then tail "
               "/events (SSE)\n"
               "  --distribute listen:PORT  (tune) accept peak worker "
               "agents on PORT\n"
               "                  (0 = ephemeral) and tune over the fleet; "
               "bit-identical\n"
               "                  to --search-threads for any fleet size\n"
               "  --workers H1:P1,H2:P2  (tune) dial worker agents running "
               "--listen\n"
               "  --min-workers N  (tune) fleet size to wait for before "
               "tuning\n"
               "                  (default: the dialed endpoints, else 1)\n"
               "  peak worker (--connect HOST:PORT | --listen PORT) "
               "[--name NAME]\n"
               "                  serve rating tasks to a tuning "
               "coordinator; --connect\n"
               "                  dials one coordinator, --listen accepts "
               "them (0 =\n"
               "                  ephemeral port, printed on stderr)\n"
               "  --verbose       print the metrics table on exit\n");
  return 2;
}

sim::MachineModel machine_of(const Args& args) {
  return args.machine == "p4" ? sim::pentium4() : sim::sparc2();
}

std::string quarantine_json_of(const fault::Quarantine& quarantine) {
  const auto entries = quarantine.snapshot();
  std::ostringstream os;
  std::size_t quarantined = 0;
  for (const auto& [key, e] : entries)
    if (e.quarantined) ++quarantined;
  os << "{\"size\":" << quarantined << ",\"entries\":[";
  bool first = true;
  for (const auto& [key, e] : entries) {
    os << (first ? "" : ",") << "{\"config\":\"" << obs::json_escape(key)
       << "\",\"kind\":\"" << fault::to_string(e.kind)
       << "\",\"failures\":" << e.failures << ",\"quarantined\":"
       << (e.quarantined ? "true" : "false") << "}";
    first = false;
  }
  os << "]}";
  return os.str();
}

std::string cache_stats_json_of(const core::RatingCache* cache) {
  std::ostringstream os;
  os << "{\"path\":\""
     << obs::json_escape(cache ? cache->path() : std::string())
     << "\",\"entries\":" << (cache ? cache->size() : 0)
     << ",\"hits\":" << obs::counter("search.cache.hit").value()
     << ",\"misses\":" << obs::counter("search.cache.miss").value()
     << ",\"stores\":" << obs::counter("search.cache.store").value()
     << "}";
  return os.str();
}

/// RAII wiring of --telemetry-port and --progress-json around a tune
/// command: starts the server (port file `<journal>.port`, or `peak.port`
/// without a journal) and the JSON writer, forwards run-phase changes,
/// stops both — final progress document included — on scope exit.
class TelemetryScope {
public:
  /// `quarantine` may start null and be filled in later (the driver that
  /// owns it is constructed after profiling); the provider reads it
  /// atomically per request.
  TelemetryScope(
      const Args& args,
      std::shared_ptr<std::atomic<const fault::Quarantine*>> quarantine,
      const core::RatingCache* cache) {
    if (!args.progress_json_path.empty()) {
      obs::ProgressJsonWriter::Options wo;
      wo.path = args.progress_json_path;
      writer_.emplace(wo);
      writer_->start();
    }
    if (args.telemetry_port < 0) return;
    obs::TelemetryServer::Options o;
    o.port = static_cast<std::uint16_t>(args.telemetry_port);
    o.port_file = args.journal_path.empty() ? "peak.port"
                                            : args.journal_path + ".port";
    if (quarantine)
      o.quarantine_json = [quarantine] {
        const fault::Quarantine* q = quarantine->load();
        return q ? quarantine_json_of(*q)
                 : std::string("{\"size\":0,\"entries\":[]}");
      };
    o.cache_stats_json = [cache] { return cache_stats_json_of(cache); };
    o.workers_json = [] { return proc::WorkerTable::global().json(); };
    const std::string port_file = o.port_file;
    server_.emplace(std::move(o));
    std::string error;
    if (!server_->start(&error)) {
      std::fprintf(stderr, "telemetry: %s\n", error.c_str());
      server_.reset();
      failed_ = true;
      return;
    }
    obs::publish_run_event("tune_start",
                           "{\"kind\":\"tune_start\",\"text\":\"tuning "
                           "run started\"}");
    std::printf("  telemetry: http://127.0.0.1:%u/ (port file %s)\n",
                server_->port(), port_file.c_str());
  }

  ~TelemetryScope() {
    if (server_) {
      server_->set_run_phase("done");
      obs::publish_run_event("tune_done",
                             "{\"kind\":\"tune_done\",\"text\":\"tuning "
                             "run finished\"}");
      server_->stop();
    }
    if (writer_) writer_->stop();
  }

  /// False when --telemetry-port was given but the server could not
  /// start — the operator asked to observe this run and cannot.
  [[nodiscard]] bool ok() const { return !failed_; }

  void phase(const char* p) {
    if (server_) server_->set_run_phase(p);
  }

private:
  std::optional<obs::TelemetryServer> server_;
  std::optional<obs::ProgressJsonWriter> writer_;
  bool failed_ = false;
};

int cmd_list() {
  support::Table table;
  table.row({"benchmark", "section", "paper method", "paper invocations"});
  for (const auto& w : workloads::all_workloads())
    table.add_row()
        .cell(w->benchmark())
        .cell(w->ts_name())
        .cell(rating::to_string(w->paper_method()))
        .cell(std::to_string(w->paper_invocations()));
  table.print(std::cout);
  return 0;
}

int cmd_analyze(const Args& args) {
  const sim::MachineModel machine = machine_of(args);
  support::Table table;
  table.row({"section", "context vars", "#ctx", "chain", "checkpoint"});
  for (const auto& w : workloads::all_workloads()) {
    if (!args.benchmark.empty() && w->benchmark() != args.benchmark)
      continue;
    const workloads::Trace train =
        w->trace(workloads::DataSet::kTrain, 42);
    const core::ProfileData p =
        core::profile_workload(*w, train, machine);
    std::string chain;
    for (rating::Method m : p.decision.chain) {
      if (!chain.empty()) chain += ">";
      chain += rating::to_string(m);
    }
    table.add_row()
        .cell(w->full_name())
        .cell(p.context_analysis.describe(w->function()))
        .cell(std::to_string(p.num_contexts))
        .cell(chain)
        .cell(p.checkpoint_plan.describe(w->function()));
  }
  table.print(std::cout);
  return 0;
}

/// Fault-aware tuning: drives a TuningDriver directly so the fault
/// injector, guarded executor, and crash-safe journal can be wired in.
/// Parse and validate the dist flags into a ready coordinator. Returns
/// false (with a diagnostic already printed) when the fleet cannot form.
bool start_coordinator(const Args& args, const core::DriverOptions& options,
                       std::optional<dist::Coordinator>& coordinator) {
  core::SessionSpec spec = core::make_session_spec(
      args.benchmark, args.machine == "p4" ? "p4" : "sparc2", options);
  std::vector<std::string> endpoints;
  if (!args.workers_csv.empty()) {
    std::string rest = args.workers_csv;
    while (!rest.empty()) {
      const std::size_t comma = rest.find(',');
      endpoints.push_back(rest.substr(0, comma));
      rest = comma == std::string::npos ? "" : rest.substr(comma + 1);
    }
  }
  dist::DistPolicy policy;
  policy.min_workers = args.min_workers != 0 ? args.min_workers
                       : endpoints.empty()   ? 1
                                             : endpoints.size();
  coordinator.emplace(std::move(spec), policy);
  std::string error;
  if (!endpoints.empty()) {
    if (!coordinator->dial(endpoints, &error)) {
      std::fprintf(stderr, "distribute: %s\n", error.c_str());
      return false;
    }
  } else {
    // --distribute listen:PORT
    const std::string value = args.distribute;
    if (value.rfind("listen:", 0) != 0) {
      std::fprintf(stderr,
                   "distribute: expected listen:PORT, got '%s'\n",
                   value.c_str());
      return false;
    }
    char* end = nullptr;
    const unsigned long port = std::strtoul(value.c_str() + 7, &end, 10);
    if (end == value.c_str() + 7 || *end != '\0' || port > 65535) {
      std::fprintf(stderr, "distribute: bad port in '%s'\n", value.c_str());
      return false;
    }
    if (!coordinator->listen(static_cast<std::uint16_t>(port),
                             /*loopback_only=*/false, &error)) {
      std::fprintf(stderr, "distribute: %s\n", error.c_str());
      return false;
    }
    std::printf("  distribute: waiting for %zu worker%s on port %u "
                "(peak worker --connect HOST:%u)\n",
                policy.min_workers, policy.min_workers == 1 ? "" : "s",
                coordinator->port(), coordinator->port());
    std::fflush(stdout);
  }
  if (!coordinator->wait_for_fleet(&error)) {
    std::fprintf(stderr, "distribute: %s\n", error.c_str());
    return false;
  }
  std::printf("  distribute: fleet of %zu worker%s ready\n",
              coordinator->fleet_size(),
              coordinator->fleet_size() == 1 ? "" : "s");
  return true;
}

int cmd_tune_driver(const Args& args,
                    const workloads::Workload& workload) {
  const sim::MachineModel machine = machine_of(args);
  const sim::FlagEffectModel effects(search::gcc33_o3_space());

  // Must outlive the driver (and the telemetry server, whose /cache/stats
  // provider reads it); the evaluator ignores it whenever a fault
  // injector is installed (cached ratings would be unsound there).
  std::optional<core::RatingCache> cache;
  if (!args.rating_cache_path.empty()) cache.emplace(args.rating_cache_path);

  // The quarantine lives in the driver, which is built only after
  // profiling; the /quarantine provider reads this pointer per request.
  auto quarantine_view =
      std::make_shared<std::atomic<const fault::Quarantine*>>(nullptr);
  TelemetryScope telemetry(args, quarantine_view,
                           cache ? &*cache : nullptr);
  if (!telemetry.ok()) return 1;
  telemetry.phase("profiling");

  const workloads::Trace train =
      workload.trace(workloads::DataSet::kTrain, 42);
  const core::ProfileData profile =
      core::profile_workload(workload, train, machine);

  fault::FaultModel model;
  model.fault_prob = args.fault_prob;
  model.seed = args.fault_seed;
  fault::FaultInjector injector(model);
  // The -O3 start config is shipping production code; faulting it would
  // only test the harness, not the tuner.
  injector.exempt(search::o3_config(effects.space()));

  core::DriverOptions options;
  if (args.fault_prob > 0.0) options.fault.injector = &injector;
  options.fault.guard_execution = !args.no_guard;
  options.fault.journal_path = args.journal_path;
  options.fault.resume = args.resume;
  options.fault.journal_strict = args.journal_strict;
  options.search_threads = args.search_threads;
  options.isolate_workers = args.isolate_workers;
  if (cache) options.rating_cache = &*cache;

  // Must outlive the driver: the evaluator talks to the fleet on every
  // probe round. Declared before `driver` so its destructor (bye frames,
  // socket teardown) runs after the driver's.
  std::optional<dist::Coordinator> coordinator;
  if (args.distributed()) {
    telemetry.phase("fleet");
    if (!start_coordinator(args, options, coordinator)) return 1;
    options.coordinator = &*coordinator;
  }

  core::TuningDriver driver(workload, profile, train, machine, effects,
                            options);
  quarantine_view->store(&driver.quarantine());
  telemetry.phase("tuning");
  core::TuningOutcome outcome;
  try {
    outcome = args.method ? driver.tune(*args.method) : driver.tune_auto();
  } catch (const support::ShutdownRequested& e) {
    // Unwinding through here runs the driver/cache/telemetry destructors:
    // the journal and rating cache are already durable per record, the
    // telemetry server stops, and the supervisor (if any) has reaped its
    // workers before rethrowing. A distributed fleet gets an explicit
    // goodbye first: the in-flight round has already drained (shutdown
    // only surfaces between rounds), so every worker is idle and the bye
    // frame lets agents in --connect mode exit cleanly.
    if (coordinator) coordinator->shutdown();
    telemetry.phase("interrupted");
    std::fprintf(stderr, "\ninterrupted by signal %d; %s\n", e.signal(),
                 args.resume_hint().c_str());
    return 128 + e.signal();
  } catch (const fault::FaultError& e) {
    std::fprintf(stderr, "tuning died on an unguarded fault: %s\n",
                 e.what());
    return 1;
  }
  telemetry.phase("reporting");

  const workloads::Trace ref = workload.trace(workloads::DataSet::kRef, 1);
  const double o3 = core::expected_trace_time(
      workload, ref, machine, effects, search::o3_config(effects.space()));
  const double tuned = core::expected_trace_time(workload, ref, machine,
                                                 effects,
                                                 outcome.best_config);

  std::printf("%s on %s via %s\n", workload.full_name().c_str(),
              machine.name.c_str(), rating::to_string(outcome.method));
  std::printf("  improvement over -O3 (ref): %.2f%%\n",
              (o3 / tuned - 1.0) * 100.0);
  std::printf("  flags removed: %s\n",
              outcome.best_config
                  .describe(effects.space(), /*invert=*/true)
                  .c_str());
  std::printf("  cost: %zu invocations (%.2f program runs)\n",
              outcome.cost.invocations, outcome.cost.program_runs);
  if (args.fault_prob > 0.0)
    std::printf("  faults: prob %.3f seed %llu, guard %s\n",
                args.fault_prob,
                static_cast<unsigned long long>(args.fault_seed),
                args.no_guard ? "OFF" : "on");
  if (!args.journal_path.empty())
    std::printf("  journal: %s%s\n", args.journal_path.c_str(),
                args.resume ? " (resumed)" : "");
  if (coordinator) {
    const dist::CoordinatorStats& stats = coordinator->stats();
    std::printf("  fleet: %zu workers (%llu tasks dispatched, %llu "
                "requeued, %llu lost, %llu respawned)\n",
                coordinator->fleet_size(),
                static_cast<unsigned long long>(stats.tasks_dispatched),
                static_cast<unsigned long long>(stats.tasks_requeued),
                static_cast<unsigned long long>(stats.workers_lost),
                static_cast<unsigned long long>(stats.workers_respawned));
    coordinator->shutdown();
  }
  if (cache)
    std::printf("  rating cache: %s (%zu entries%s)\n",
                cache->path().c_str(), cache->size(),
                args.fault_prob > 0.0 ? ", disabled under faults" : "");
  const auto& quarantine = driver.quarantine();
  if (quarantine.size() > 0 || args.fault_prob > 0.0) {
    std::printf("  quarantined configs: %zu\n", quarantine.size());
    for (const auto& [key, entry] : quarantine.entries()) {
      if (!entry.quarantined) continue;
      std::printf("    %s  (%s, %zu failures)\n", key.c_str(),
                  fault::to_string(entry.kind), entry.failures);
    }
  }

  if (!args.save_path.empty()) {
    core::ConfigStore store(effects.space());
    store.load_file(args.save_path);  // merge with existing records
    core::StoredConfig entry;
    entry.config = outcome.best_config;
    entry.method = outcome.method;
    entry.improvement_pct = (o3 / tuned - 1.0) * 100.0;
    for (const auto& [key, q] : quarantine.entries())
      if (q.quarantined)
        entry.quarantined.push_back({key, q.kind, q.failures});
    store.put(workload.full_name(), machine.name, entry);
    if (!store.save_file(args.save_path)) {
      std::fprintf(stderr, "failed to write %s\n", args.save_path.c_str());
      return 1;
    }
    std::printf("  saved to %s\n", args.save_path.c_str());
  }
  return 0;
}

int cmd_tune(const Args& args) {
  if (args.benchmark.empty()) return usage();
  if (args.distributed()) {
    // Fault injection and quarantine verdicts depend on attempt history
    // held coordinator-side; shipping them would break the pure-function
    // task contract. Subprocess isolation is the same transport solved a
    // different way. Both refuse loudly rather than silently diverge.
    if (!args.distribute.empty() && !args.workers_csv.empty()) {
      std::fprintf(stderr,
                   "--distribute and --workers are mutually exclusive\n");
      return 2;
    }
    if (args.fault_prob > 0.0) {
      std::fprintf(stderr,
                   "--fault-prob cannot combine with distributed tuning "
                   "(fault verdicts are coordinator-side state)\n");
      return 2;
    }
    if (args.isolate_workers > 0) {
      std::fprintf(stderr,
                   "--isolate-workers cannot combine with distributed "
                   "tuning (pick one worker transport)\n");
      return 2;
    }
    if (args.search_threads == 0) {
      std::fprintf(stderr,
                   "distributed tuning needs batch semantics; drop "
                   "--search-threads 0\n");
      return 2;
    }
  }
  const auto workload = workloads::make_workload(args.benchmark);
  if (!workload) {
    std::fprintf(stderr, "unknown benchmark '%s'\n",
                 args.benchmark.c_str());
    return 1;
  }
  if (args.wants_driver()) return cmd_tune_driver(args, *workload);
  const sim::MachineModel machine = machine_of(args);
  core::PeakOptions popts;
  popts.driver.search_threads = args.search_threads;
  popts.driver.isolate_workers = args.isolate_workers;
  std::optional<core::RatingCache> cache;  // must outlive `peak`
  if (!args.rating_cache_path.empty()) {
    cache.emplace(args.rating_cache_path);
    popts.driver.rating_cache = &*cache;
  }
  // The facade path has no quarantine (no fault wiring) — /quarantine
  // answers 404 there.
  TelemetryScope telemetry(args, nullptr, cache ? &*cache : nullptr);
  if (!telemetry.ok()) return 1;
  telemetry.phase("tuning");
  core::Peak peak(machine, popts);

  core::MethodRun run;
  try {
    if (args.method) {
      const workloads::Trace train =
          workload->trace(workloads::DataSet::kTrain, 1);
      core::BenchmarkResult result = peak.run_benchmark(
          *workload, /*all_methods=*/true, {*args.method});
      const core::MethodRun* found =
          result.find(*args.method, workloads::DataSet::kTrain);
      if (!found) {
        std::fprintf(stderr, "method did not run\n");
        return 1;
      }
      run = *found;
    } else {
      run = peak.tune_with_consultant(*workload);
    }
  } catch (const support::ShutdownRequested& e) {
    telemetry.phase("interrupted");
    std::fprintf(stderr, "\ninterrupted by signal %d; %s\n", e.signal(),
                 args.resume_hint().c_str());
    return 128 + e.signal();
  }
  telemetry.phase("reporting");

  std::printf("%s on %s via %s\n", workload->full_name().c_str(),
              machine.name.c_str(), rating::to_string(run.method));
  std::printf("  improvement over -O3 (ref): %.2f%%\n",
              run.ref_improvement_pct);
  std::printf("  flags removed: %s\n",
              run.best_config
                  .describe(peak.effects().space(), /*invert=*/true)
                  .c_str());
  std::printf("  cost: %zu invocations (%.2f program runs)\n",
              run.cost.invocations, run.cost.program_runs);
  if (cache)
    std::printf("  rating cache: %s (%zu entries)\n",
                cache->path().c_str(), cache->size());

  if (!args.save_path.empty()) {
    core::ConfigStore store(peak.effects().space());
    store.load_file(args.save_path);  // merge with existing records
    core::StoredConfig entry;
    entry.config = run.best_config;
    entry.method = run.method;
    entry.improvement_pct = run.ref_improvement_pct;
    store.put(workload->full_name(), machine.name, entry);
    if (!store.save_file(args.save_path)) {
      std::fprintf(stderr, "failed to write %s\n", args.save_path.c_str());
      return 1;
    }
    std::printf("  saved to %s\n", args.save_path.c_str());
  }
  return 0;
}

int cmd_apply(const Args& args) {
  if (args.benchmark.empty() || args.load_path.empty()) return usage();
  const auto workload = workloads::make_workload(args.benchmark);
  if (!workload) {
    std::fprintf(stderr, "unknown benchmark '%s'\n",
                 args.benchmark.c_str());
    return 1;
  }
  const sim::MachineModel machine = machine_of(args);
  const sim::FlagEffectModel effects(search::gcc33_o3_space());
  core::ConfigStore store(effects.space());
  if (!store.load_file(args.load_path)) {
    std::fprintf(stderr, "cannot read %s\n", args.load_path.c_str());
    return 1;
  }
  const auto entry = store.get(workload->full_name(), machine.name);
  if (!entry) {
    std::fprintf(stderr, "no stored config for %s @ %s\n",
                 workload->full_name().c_str(), machine.name.c_str());
    return 1;
  }
  const workloads::Trace ref = workload->trace(workloads::DataSet::kRef, 1);
  const double o3 = core::expected_trace_time(
      *workload, ref, machine, effects, search::o3_config(effects.space()));
  const double tuned = core::expected_trace_time(*workload, ref, machine,
                                                 effects, entry->config);
  std::printf("%s @ %s (stored via %s): improvement %.2f%% on ref\n",
              workload->full_name().c_str(), machine.name.c_str(),
              rating::to_string(entry->method),
              (o3 / tuned - 1.0) * 100.0);
  return 0;
}

/// Resolve the `peak monitor` target — "host:port", a bare port (host
/// 127.0.0.1), or a port file as written next to the journal.
bool resolve_monitor_target(const std::string& target, std::string* host,
                            std::uint16_t* port) {
  const auto parse_port = [&](const std::string& text) {
    char* end = nullptr;
    const unsigned long p = std::strtoul(text.c_str(), &end, 10);
    if (end == text.c_str() || *end != '\0' || p == 0 || p > 65535)
      return false;
    *port = static_cast<std::uint16_t>(p);
    return true;
  };
  const auto colon = target.rfind(':');
  if (colon != std::string::npos) {
    *host = target.substr(0, colon);
    return !host->empty() && parse_port(target.substr(colon + 1));
  }
  *host = "127.0.0.1";
  if (!target.empty() &&
      std::all_of(target.begin(), target.end(), [](unsigned char c) {
        return std::isdigit(c);
      }))
    return parse_port(target);
  std::ifstream in(target);
  std::string line;
  if (!in || !std::getline(in, line)) return false;
  return parse_port(line);
}

/// Print one complete SSE frame: `[kind] text`, where text comes from the
/// data payload's "text" member (raw data when it has none).
void print_sse_frame(const std::string& frame) {
  std::string event = "message", data;
  std::size_t pos = 0;
  while (pos <= frame.size()) {
    const std::size_t eol = std::min(frame.find('\n', pos), frame.size());
    const std::string line = frame.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.rfind("event: ", 0) == 0) event = line.substr(7);
    else if (line.rfind("data: ", 0) == 0) data = line.substr(6);
    // ignore "id: " bookkeeping and ":" comments (keepalives)
  }
  if (data.empty()) return;
  std::string text = data;
  try {
    const core::jsonl::JsonValue v = core::jsonl::JsonParser(data).parse();
    if (v.has("text")) text = v.at("text").as_string();
  } catch (const std::exception&) {
    // non-JSON payload: print it raw
  }
  std::printf("  [%s] %s\n", event.c_str(), text.c_str());
  std::fflush(stdout);
}

int cmd_monitor(const Args& args) {
  if (args.monitor_target.empty()) return usage();
  std::string host;
  std::uint16_t port = 0;
  if (!resolve_monitor_target(args.monitor_target, &host, &port)) {
    std::fprintf(stderr, "monitor: cannot resolve '%s'\n",
                 args.monitor_target.c_str());
    return 1;
  }
  const support::HttpClientResult snap =
      support::http_get(host, port, "/snapshot");
  if (!snap.ok || snap.status != 200) {
    std::fprintf(stderr, "monitor: GET /snapshot failed: %s\n",
                 snap.ok ? ("HTTP " + std::to_string(snap.status)).c_str()
                         : snap.error.c_str());
    return 1;
  }
  obs::RemoteSnapshot remote;
  try {
    remote = obs::parse_snapshot_json(snap.body);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "monitor: malformed snapshot: %s\n", e.what());
    return 1;
  }
  std::printf("%s:%u  phase %s  up %.1fs\n", host.c_str(), port,
              remote.run_phase.c_str(),
              static_cast<double>(remote.uptime_us) / 1e6);
  std::fputs(obs::render_progress_frame(remote.progress).c_str(), stdout);
  if (args.once) return 0;

  // Tail events published after the snapshot; the stream ends when the
  // run finishes (the server closes every connection on stop).
  const std::string path =
      "/events?from=" + std::to_string(remote.events_head_seq + 1);
  std::string buffer, error;
  const bool ok = support::http_stream(
      host, port, path,
      [&buffer](std::string_view chunk) {
        buffer.append(chunk);
        std::size_t sep;
        while ((sep = buffer.find("\n\n")) != std::string::npos) {
          print_sse_frame(buffer.substr(0, sep));
          buffer.erase(0, sep + 2);
        }
        return true;  // empty chunk = read timeout; keep waiting
      },
      &error);
  if (!ok) {
    std::fprintf(stderr, "monitor: %s\n", error.c_str());
    return 1;
  }
  return 0;
}

/// `peak worker`: a long-lived rating agent. Connect mode dials one
/// coordinator and exits when that session ends; listen mode serves
/// coordinators until SIGINT/SIGTERM.
int cmd_worker(const Args& args) {
  dist::WorkerOptions options;
  options.name = args.worker_name;
  if (!args.worker_connect.empty()) {
    if (args.worker_listen_port >= 0) {
      std::fprintf(stderr,
                   "peak worker: --connect and --listen are mutually "
                   "exclusive\n");
      return 2;
    }
    std::string host;
    std::uint16_t port = 0;
    if (!support::split_host_port(args.worker_connect, &host, &port)) {
      std::fprintf(stderr, "peak worker: bad --connect '%s'\n",
                   args.worker_connect.c_str());
      return 2;
    }
    options.connect_host = host;
    options.connect_port = port;
  } else if (args.worker_listen_port >= 0) {
    options.listen = true;
    options.listen_port =
        static_cast<std::uint16_t>(args.worker_listen_port);
  } else {
    std::fprintf(stderr,
                 "peak worker: need --connect HOST:PORT or --listen "
                 "PORT\n");
    return usage();
  }
  dist::WorkerAgent agent(options);
  return agent.run();
}

int cmd_sweep(const Args& args) {
  const sim::MachineModel machine = machine_of(args);
  core::Peak peak(machine);
  std::vector<core::BenchmarkResult> results;
  for (const std::string& name : workloads::figure7_benchmarks()) {
    const auto workload = workloads::make_workload(name);
    std::vector<rating::Method> extra;
    if (name == "MGRID") extra.push_back(rating::Method::kCBR);
    results.push_back(peak.run_benchmark(*workload, true, extra));
  }
  if (args.csv)
    std::cout << core::to_csv(results);
  else
    std::cout << core::to_markdown(results);
  return 0;
}

int cmd_app(const Args& args) {
  std::vector<std::unique_ptr<workloads::Workload>> owned;
  std::vector<const workloads::Workload*> sections;
  for (const std::string& name : workloads::figure7_benchmarks()) {
    owned.push_back(workloads::make_workload(name));
    sections.push_back(owned.back().get());
  }
  const core::ApplicationOutcome outcome =
      core::tune_application(sections, machine_of(args), {}, 4);
  std::cout << core::to_markdown(outcome);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (argc < 2) return usage();
  args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--benchmark") {
      const char* v = next();
      if (!v) return usage();
      args.benchmark = v;
    } else if (arg == "--machine") {
      const char* v = next();
      if (!v) return usage();
      args.machine = v;
    } else if (arg == "--method") {
      const char* v = next();
      if (!v) return usage();
      args.method = parse_method(v);
      if (!args.method) return usage();
    } else if (arg == "--save") {
      const char* v = next();
      if (!v) return usage();
      args.save_path = v;
    } else if (arg == "--load") {
      const char* v = next();
      if (!v) return usage();
      args.load_path = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (!v) return usage();
      args.trace_path = v;
    } else if (arg == "--metrics") {
      const char* v = next();
      if (!v) return usage();
      args.metrics_path = v;
    } else if (arg == "--cost-folded") {
      const char* v = next();
      if (!v) return usage();
      args.folded_path = v;
    } else if (arg == "--progress") {
      args.progress = true;
    } else if (arg == "--fault-prob") {
      const char* v = next();
      if (!v) return usage();
      args.fault_prob = std::strtod(v, nullptr);
      if (args.fault_prob < 0.0 || args.fault_prob > 1.0) return usage();
    } else if (arg == "--fault-seed") {
      const char* v = next();
      if (!v) return usage();
      args.fault_seed = std::strtoull(v, nullptr, 0);
    } else if (arg == "--no-guard") {
      args.no_guard = true;
    } else if (arg == "--journal") {
      const char* v = next();
      if (!v) return usage();
      args.journal_path = v;
    } else if (arg == "--resume") {
      args.resume = true;
    } else if (arg == "--journal-strict") {
      args.journal_strict = true;
    } else if (arg == "--isolate-workers") {
      const char* v = next();
      if (!v) return usage();
      args.isolate_workers =
          static_cast<unsigned>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--search-threads") {
      const char* v = next();
      if (!v) return usage();
      args.search_threads =
          static_cast<unsigned>(std::strtoul(v, nullptr, 0));
    } else if (arg == "--distribute") {
      const char* v = next();
      if (!v) return usage();
      args.distribute = v;
    } else if (arg == "--workers") {
      const char* v = next();
      if (!v) return usage();
      args.workers_csv = v;
    } else if (arg == "--min-workers") {
      const char* v = next();
      if (!v) return usage();
      args.min_workers = static_cast<unsigned>(std::strtoul(v, nullptr, 0));
      if (args.min_workers == 0) return usage();
    } else if (arg == "--connect") {
      const char* v = next();
      if (!v) return usage();
      args.worker_connect = v;
    } else if (arg == "--listen") {
      const char* v = next();
      if (!v) return usage();
      char* end = nullptr;
      const unsigned long p = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0' || p > 65535) return usage();
      args.worker_listen_port = static_cast<int>(p);
    } else if (arg == "--name") {
      const char* v = next();
      if (!v) return usage();
      args.worker_name = v;
    } else if (arg == "--rating-cache") {
      const char* v = next();
      if (!v) return usage();
      args.rating_cache_path = v;
    } else if (arg == "--telemetry-port") {
      const char* v = next();
      if (!v) return usage();
      char* end = nullptr;
      const unsigned long p = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0' || p > 65535) return usage();
      args.telemetry_port = static_cast<int>(p);
    } else if (arg == "--progress-json") {
      const char* v = next();
      if (!v) return usage();
      args.progress_json_path = v;
    } else if (arg == "--once") {
      args.once = true;
    } else if (arg == "--csv") {
      args.csv = true;
    } else if (arg == "--markdown") {
      args.markdown = true;
    } else if (arg == "--verbose") {
      args.verbose = true;
    } else if (args.command == "monitor" && args.monitor_target.empty() &&
               arg.rfind("--", 0) != 0) {
      args.monitor_target = arg;
    } else {
      return usage();
    }
  }

  if (!args.trace_path.empty()) {
    auto sink = obs::make_file_sink(args.trace_path);
    if (!sink) {
      std::fprintf(stderr, "cannot open trace file %s\n",
                   args.trace_path.c_str());
      return 1;
    }
    obs::Tracer::global().set_sink(std::move(sink));
  }

  // A first SIGINT/SIGTERM during `peak tune` unwinds gracefully (journal
  // and cache stay durable, workers get reaped or sent a bye frame, a
  // --resume hint prints); a second force-exits with 128+signal. A
  // listening `peak worker` uses the same flag to stop accepting.
  if (args.command == "tune" || args.command == "worker")
    support::install_shutdown_handlers();

  obs::ProgressView progress;
  if (args.progress) progress.start();

  int rc;
  if (args.command == "list")
    rc = cmd_list();
  else if (args.command == "analyze")
    rc = cmd_analyze(args);
  else if (args.command == "tune")
    rc = cmd_tune(args);
  else if (args.command == "sweep")
    rc = cmd_sweep(args);
  else if (args.command == "app")
    rc = cmd_app(args);
  else if (args.command == "apply")
    rc = cmd_apply(args);
  else if (args.command == "monitor")
    rc = cmd_monitor(args);
  else if (args.command == "worker")
    rc = cmd_worker(args);
  else
    rc = usage();

  if (args.progress) progress.stop();

  // Dropping the sink flushes and closes the trace file.
  obs::Tracer::global().set_sink(nullptr);
  if (!args.folded_path.empty() &&
      !obs::write_folded_file(obs::Ledger::global().snapshot(),
                              args.folded_path)) {
    std::fprintf(stderr, "failed to write %s\n", args.folded_path.c_str());
    if (rc == 0) rc = 1;
  }
  if (!args.metrics_path.empty() &&
      !obs::write_metrics_json_file(obs::MetricsRegistry::global().snapshot(),
                                    args.metrics_path)) {
    std::fprintf(stderr, "failed to write %s\n", args.metrics_path.c_str());
    if (rc == 0) rc = 1;
  }
  if (args.verbose)
    obs::metrics_table(obs::MetricsRegistry::global().snapshot())
        .print(std::cerr);
  return rc;
}
