#!/usr/bin/env python3
"""Lint for the Prometheus text exposition served at /metrics.

The telemetry server renders the metrics registry and the cost ledger in
text exposition format 0.0.4. This script validates a scrape (the
TELEMETRY_metrics.txt file the telemetry ctest fixture dumps, or a live
`curl .../metrics` capture) against the format rules a real Prometheus
server enforces, plus this repo's own conventions:

  - every line is a `# HELP`, `# TYPE`, or sample line; the file ends in
    a newline
  - metric and label names match the Prometheus grammar; label values use
    only the three legal escapes (\\\\, \\", \\n)
  - each family is TYPE-declared exactly once, before its first sample,
    with a known type, and all of its samples are contiguous
  - counter sample names end in `_total`
  - histograms expose cumulative, non-decreasing `_bucket{le="..."}`
    series closed by `le="+Inf"`, plus `_sum` and `_count`, with
    count == the +Inf bucket
  - no duplicate series (same name and label set), no NaN/Infinity sample
    values (the exporters clamp non-finite values to 0, so one showing up
    here is a bug), and every family carries the `peak_` prefix

Usage:
    tools/check_prometheus.py TELEMETRY_metrics.txt [...]
    tools/check_prometheus.py --self-test

Exit status: 0 if every file lints (or the self-test passes), 1 otherwise.
Stdlib only — no third-party dependencies.
"""

import math
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>\S+)"
    r"(?: (?P<timestamp>-?\d+))?$")
KNOWN_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


class LintError(Exception):
    def __init__(self, line_no, message):
        super().__init__(f"line {line_no}: {message}")
        self.line_no = line_no


def parse_labels(raw, line_no):
    """`k="v",k2="v2"` -> dict, enforcing name and escape rules."""
    labels = {}
    i = 0
    while i < len(raw):
        eq = raw.find("=", i)
        if eq < 0:
            raise LintError(line_no, f"malformed labels {raw!r}")
        name = raw[i:eq]
        if not LABEL_NAME.match(name):
            raise LintError(line_no, f"bad label name {name!r}")
        if eq + 1 >= len(raw) or raw[eq + 1] != '"':
            raise LintError(line_no, f"label {name!r}: value not quoted")
        j = eq + 2
        value = []
        while j < len(raw) and raw[j] != '"':
            if raw[j] == "\\":
                if j + 1 >= len(raw) or raw[j + 1] not in ("\\", '"', "n"):
                    raise LintError(
                        line_no, f"label {name!r}: illegal escape")
                value.append({"\\": "\\", '"': '"', "n": "\n"}[raw[j + 1]])
                j += 2
            else:
                value.append(raw[j])
                j += 1
        if j >= len(raw):
            raise LintError(line_no, f"label {name!r}: unterminated value")
        if name in labels:
            raise LintError(line_no, f"duplicate label {name!r}")
        labels[name] = "".join(value)
        i = j + 1
        if i < len(raw):
            if raw[i] != ",":
                raise LintError(line_no, f"expected ',' in labels {raw!r}")
            i += 1
    return labels


def parse_value(raw, line_no):
    if raw in ("+Inf", "-Inf", "Inf", "NaN", "nan"):
        raise LintError(line_no, f"non-finite sample value {raw!r}")
    try:
        value = float(raw)
    except ValueError:
        raise LintError(line_no, f"bad sample value {raw!r}") from None
    if not math.isfinite(value):
        raise LintError(line_no, f"non-finite sample value {raw!r}")
    return value


def family_of(name):
    """Strip the histogram sub-series suffix to get the declared family."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


class Family:
    def __init__(self, kind, line_no):
        self.kind = kind
        self.line_no = line_no
        self.samples = []  # (line_no, name, labels, value)
        self.closed = False


def lint_text(text):
    """Lint one exposition document; raises LintError on the first fault."""
    if not text:
        raise LintError(0, "empty exposition")
    if not text.endswith("\n"):
        raise LintError(text.count("\n") + 1, "missing trailing newline")

    families = {}
    current = None  # family name whose block we are inside
    series_seen = set()

    for line_no, line in enumerate(text.split("\n")[:-1], start=1):
        if line == "":
            raise LintError(line_no, "blank line in exposition")
        if line.startswith("#"):
            parts = line.split(" ", 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                # Arbitrary comments are legal; ours are always HELP/TYPE.
                continue
            name = parts[2]
            if not METRIC_NAME.match(name):
                raise LintError(line_no, f"bad metric name {name!r}")
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in KNOWN_TYPES:
                    raise LintError(line_no, f"bad TYPE line {line!r}")
                if name in families:
                    raise LintError(
                        line_no, f"family {name!r} TYPE-declared twice")
                if not name.startswith("peak_"):
                    raise LintError(
                        line_no, f"family {name!r} lacks the peak_ prefix")
                if current is not None:
                    families[current].closed = True
                families[name] = Family(parts[3], line_no)
                current = name
            continue

        match = SAMPLE.match(line)
        if not match:
            raise LintError(line_no, f"malformed sample line {line!r}")
        name = match.group("name")
        labels = parse_labels(match.group("labels") or "", line_no)
        value = parse_value(match.group("value"), line_no)

        family_name = family_of(name)
        if family_name not in families and name in families:
            family_name = name  # e.g. a gauge literally named *_count
        family = families.get(family_name)
        if family is None:
            raise LintError(
                line_no, f"sample {name!r} has no preceding TYPE line")
        if family_name != current:
            if family.closed:
                raise LintError(
                    line_no,
                    f"samples of {family_name!r} are not contiguous")
            raise LintError(
                line_no,
                f"sample {name!r} inside the {current!r} block")

        if family.kind == "counter" and not name.endswith("_total"):
            raise LintError(
                line_no, f"counter sample {name!r} must end in _total")
        if family.kind == "histogram":
            if name == family_name:
                raise LintError(
                    line_no,
                    f"histogram {name!r} exposed without a sub-series "
                    "suffix")
            if name.endswith("_bucket") and "le" not in labels:
                raise LintError(
                    line_no, f"bucket sample {name!r} lacks an le label")
        elif name != family_name:
            raise LintError(
                line_no,
                f"sample {name!r} does not match family {family_name!r}")

        series = (name, tuple(sorted(labels.items())))
        if series in series_seen:
            raise LintError(line_no, f"duplicate series {series!r}")
        series_seen.add(series)
        family.samples.append((line_no, name, labels, value))

    for name, family in families.items():
        if not family.samples:
            raise LintError(family.line_no,
                            f"family {name!r} declared but has no samples")
        if family.kind == "histogram":
            _lint_histogram(name, family)
    return len(series_seen)


def _lint_histogram(name, family):
    """Cumulative buckets closed by +Inf; count == the +Inf bucket."""
    def bucket_key(labels):
        return tuple(sorted((k, v) for k, v in labels.items() if k != "le"))

    buckets = {}
    sums = {}
    counts = {}
    for line_no, sample, labels, value in family.samples:
        if sample.endswith("_bucket"):
            buckets.setdefault(bucket_key(labels), []).append(
                (line_no, labels["le"], value))
        elif sample.endswith("_sum"):
            sums[bucket_key(labels)] = line_no
        elif sample.endswith("_count"):
            counts[bucket_key(labels)] = (line_no, value)

    if not buckets:
        raise LintError(family.line_no,
                        f"histogram {name!r} has no _bucket samples")
    for key, series in buckets.items():
        if key not in sums:
            raise LintError(series[0][0],
                            f"histogram {name!r} lacks a _sum sample")
        if key not in counts:
            raise LintError(series[0][0],
                            f"histogram {name!r} lacks a _count sample")
        if series[-1][1] != "+Inf":
            raise LintError(
                series[-1][0],
                f"histogram {name!r}: last bucket must be le=\"+Inf\"")
        previous_le = None
        previous_value = None
        for line_no, le, value in series:
            if le != "+Inf":
                try:
                    le_value = float(le)
                except ValueError:
                    raise LintError(
                        line_no, f"bad le value {le!r}") from None
                if previous_le is not None and le_value <= previous_le:
                    raise LintError(
                        line_no,
                        f"histogram {name!r}: le bounds not increasing")
                previous_le = le_value
            if previous_value is not None and value < previous_value:
                raise LintError(
                    line_no,
                    f"histogram {name!r}: bucket counts not cumulative")
            previous_value = value
        count_line, count_value = counts[key]
        if count_value != series[-1][2]:
            raise LintError(
                count_line,
                f"histogram {name!r}: _count {count_value!r} != +Inf "
                f"bucket {series[-1][2]!r}")


def check_file(filename):
    try:
        with open(filename, "r", encoding="utf-8") as handle:
            text = handle.read()
    except OSError as exc:
        print(f"{filename}: FAIL ({exc})")
        return False
    try:
        series = lint_text(text)
    except LintError as exc:
        print(f"{filename}: FAIL ({exc})")
        return False
    print(f"{filename}: OK ({series} series)")
    return True


# --- self-test fixtures -----------------------------------------------------

GOOD = """\
# HELP peak_search_configs_evaluated_total total configs evaluated
# TYPE peak_search_configs_evaluated_total counter
peak_search_configs_evaluated_total 111
# TYPE peak_sim_cycles_timed gauge
peak_sim_cycles_timed 1.5e+06
# TYPE peak_telemetry_scrape_us histogram
peak_telemetry_scrape_us_bucket{le="100"} 3
peak_telemetry_scrape_us_bucket{le="1000"} 5
peak_telemetry_scrape_us_bucket{le="+Inf"} 6
peak_telemetry_scrape_us_sum 4200
peak_telemetry_scrape_us_count 6
# TYPE peak_cost_cycles gauge
peak_cost_cycles{path="all"} 1000
peak_cost_cycles{path="all;sparc2;SWIM \\"x\\";calc1"} 1000
"""


def self_test():
    failures = []
    cases = [0]

    def expect(text, valid, label):
        cases[0] += 1
        try:
            lint_text(text)
            ok = True
        except LintError:
            ok = False
        if ok != valid:
            failures.append(label)

    expect(GOOD, True, "good exposition rejected")
    expect("", False, "empty exposition accepted")
    expect(GOOD[:-1], False, "missing trailing newline accepted")
    expect(GOOD + "\n", False, "blank line accepted")
    expect("peak_x_total 1\n", False, "sample without TYPE accepted")
    expect("# TYPE peak_x counter\npeak_x 1\n", False,
           "counter sample without _total accepted")
    expect("# TYPE peak_x_total wibble\npeak_x_total 1\n", False,
           "unknown TYPE accepted")
    expect("# TYPE x_total counter\nx_total 1\n", False,
           "family without peak_ prefix accepted")
    expect("# TYPE peak_x_total counter\npeak_x_total NaN\n", False,
           "NaN sample accepted")
    expect("# TYPE peak_x_total counter\npeak_x_total 1\n"
           "peak_x_total 2\n", False, "duplicate series accepted")
    expect("# TYPE peak_x_total counter\n"
           "peak_x_total{q=\"a\"} 1\npeak_x_total{q=\"b\"} 2\n", True,
           "distinct label sets rejected as duplicates")
    expect("# TYPE peak_x_total counter\npeak_x_total{q=\"a\\t\"} 1\n",
           False, "illegal label escape accepted")
    expect("# TYPE peak_x_total counter\npeak_x_total{9q=\"a\"} 1\n",
           False, "bad label name accepted")
    expect("# TYPE peak_x_total counter\n"
           "# TYPE peak_x_total counter\npeak_x_total 1\n", False,
           "double TYPE declaration accepted")
    expect("# TYPE peak_x_total counter\n", False,
           "family without samples accepted")
    expect("# TYPE peak_a_total counter\npeak_a_total 1\n"
           "# TYPE peak_b gauge\npeak_b 1\npeak_a_total{q=\"x\"} 2\n",
           False, "non-contiguous family accepted")

    histogram = ("# TYPE peak_h histogram\n"
                 "peak_h_bucket{le=\"10\"} 3\n"
                 "peak_h_bucket{le=\"20\"} 5\n"
                 "peak_h_bucket{le=\"+Inf\"} 6\n"
                 "peak_h_sum 50\n"
                 "peak_h_count 6\n")
    expect(histogram, True, "good histogram rejected")
    expect(histogram.replace("peak_h_bucket{le=\"+Inf\"} 6\n", ""), False,
           "histogram without +Inf bucket accepted")
    expect(histogram.replace("peak_h_count 6", "peak_h_count 9"), False,
           "count != +Inf bucket accepted")
    expect(histogram.replace("le=\"20\"} 5", "le=\"20\"} 2"), False,
           "non-cumulative buckets accepted")
    expect(histogram.replace("le=\"20\"", "le=\"5\""), False,
           "non-increasing le bounds accepted")
    expect(histogram.replace("peak_h_sum 50\n", ""), False,
           "histogram without _sum accepted")

    if failures:
        for failure in failures:
            print(f"self-test: FAIL ({failure})")
        return False
    print(f"self-test: OK ({cases[0]} cases)")
    return True


def main(argv):
    if "--self-test" in argv:
        return 0 if self_test() else 1
    files = [arg for arg in argv if not arg.startswith("--")]
    if len(files) != len(argv):
        unknown = [arg for arg in argv if arg.startswith("--")]
        print(f"unknown option {unknown[0]!r}")
        return 1
    if not files:
        print(__doc__.strip())
        return 1
    return 0 if all([check_file(f) for f in files]) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
