#!/usr/bin/env python3
"""Docs-drift gate for the peak CLI.

docs/CLI.md claims to document every flag the binary advertises. This
script keeps that claim true by construction: it runs the binary's
--help, extracts the flag set and the subcommand list, extracts the
same from the markdown, and fails on any difference in either
direction —

  * a flag in --help but not in the docs: the flag was added without
    documenting it;
  * a flag in the docs but not in --help: the docs reference a flag
    that was renamed or removed (stale docs);
  * a subcommand in --help without a `peak <name>` heading in the docs.

Other docs (README.md, docs/INTERNALS.md, docs/ARCHITECTURE.md) are
not required to document everything, but they must never reference a
flag the binary does not have: each `--mentions FILE` runs the one-way
stale check on FILE, skipping flags of the other tools those docs
invoke (cmake, ctest, the python checkers — see ALLOWED_MENTIONS) and
markdown link targets (section anchors contain `--`).

Run it in CI after the build (wired as the check_docs_cli ctest), or
standalone:

    tools/check_docs.py --binary build/tools/peak --doc docs/CLI.md \\
        --mentions README.md --mentions docs/INTERNALS.md
    tools/check_docs.py --self-test

Exit status: 0 when the sets match (or the self-test passes), 1
otherwise. Stdlib only — no third-party dependencies.
"""

import re
import subprocess
import sys

FLAG_RE = re.compile(r"--[a-z][a-z0-9-]*")
SUBCOMMANDS_RE = re.compile(r"peak <([a-z|]+)>")

#: Tokens the docs may mention that the usage text never lists:
#: "--help" is the conventional way to ask for usage, not a flag of its
#: own (any unknown option prints usage).
ALLOWED_DOC_ONLY = {"--help"}

#: Flags of the *other* tools the prose docs invoke — cmake/ctest,
#: GoogleTest, and the python checkers. Ignored by the --mentions
#: check; never ignored in docs/CLI.md, which is peak-flags-only.
ALLOWED_MENTIONS = ALLOWED_DOC_ONLY | {
    "--build", "--preset", "--test-dir", "--output-on-failure",  # cmake/ctest
    "--gtest_filter",
    "--self-test", "--compare", "--compare-metrics",  # check_bench_json.py
    "--max-regress-pct", "--max-metric-drift-pct",
    "--binary", "--doc", "--mentions",  # this script
}

#: Markdown link targets — `(#parallelism--transports-tune)` — contain
#: `--` runs that are section anchors, not flags.
LINK_TARGET_RE = re.compile(r"\]\([^)]*\)")


def flags_of(text):
    return set(FLAG_RE.findall(text))


def mention_errors(doc_text, help_flags, label):
    """One-way staleness check: every peak-looking flag must exist."""
    mentioned = flags_of(LINK_TARGET_RE.sub("]", doc_text))
    errors = []
    for flag in sorted(mentioned - help_flags - ALLOWED_MENTIONS):
        errors.append(f"{label}: flag {flag} is mentioned but not in "
                      "--help (stale docs)")
    return errors


def subcommands_of(help_text):
    match = SUBCOMMANDS_RE.search(help_text)
    return set(match.group(1).split("|")) if match else set()


def diff_docs(help_text, doc_text):
    """Return a list of error strings; empty means the docs are in sync."""
    errors = []
    help_flags = flags_of(help_text)
    doc_flags = flags_of(doc_text) - ALLOWED_DOC_ONLY
    if not help_flags:
        errors.append("no flags found in --help output (wrong binary?)")
    for flag in sorted(help_flags - doc_flags):
        errors.append(f"flag {flag} is in --help but not documented")
    for flag in sorted(doc_flags - help_flags):
        errors.append(f"flag {flag} is documented but not in --help "
                      "(stale docs)")
    subcommands = subcommands_of(help_text)
    if not subcommands:
        errors.append("no subcommand list found in --help output")
    for sub in sorted(subcommands):
        if f"peak {sub}" not in doc_text:
            errors.append(f"subcommand '{sub}' has no 'peak {sub}' "
                          "section in the docs")
    return errors


def help_text_of(binary):
    # The CLI prints usage (to stderr) and exits 2 for --help, like any
    # unknown option; both streams and any exit status are acceptable.
    proc = subprocess.run([binary, "--help"], capture_output=True,
                          text=True, timeout=60)
    return proc.stdout + proc.stderr


# --- self-test fixtures -----------------------------------------------------

GOOD_HELP = """usage: peak <list|tune|worker> [options]
  --benchmark NAME   (tune)
  --machine sparc2|p4
  --search-threads N  (tune) parallel batched probing
  peak worker (--connect HOST:PORT | --listen PORT) [--name NAME]
"""

GOOD_DOC = """# The peak CLI
Ask for usage with `--help`.
### `peak list`
### `peak tune`
`--benchmark NAME` and `--machine sparc2|p4` select the scenario;
`--search-threads N` fans probes out.
### `peak worker`
`--connect HOST:PORT` dials, `--listen PORT` accepts, `--name` labels.
"""


def self_test():
    failures = []
    cases = [0]

    def expect(help_text, doc_text, ok_expected, label):
        cases[0] += 1
        errors = diff_docs(help_text, doc_text)
        if bool(not errors) != ok_expected:
            failures.append(f"{label}: {errors}")

    expect(GOOD_HELP, GOOD_DOC, True, "matching docs rejected")
    expect(GOOD_HELP + "  --new-flag N  (tune) undocumented\n", GOOD_DOC,
           False, "undocumented flag accepted")
    expect(GOOD_HELP, GOOD_DOC + "`--removed-flag` does things.\n",
           False, "stale documented flag accepted")
    expect(GOOD_HELP,
           GOOD_DOC.replace("### `peak worker`",
                            "### Worker agents\nRun `peak worker`:"),
           True, "subcommand mention outside a heading rejected")
    expect(GOOD_HELP,
           GOOD_DOC.replace("peak worker", "worker mode"),
           False, "missing subcommand section accepted")
    expect("no usage line here\n", "# docs\n", False,
           "help with no flags/subcommands accepted")
    # --help in the docs is the conventional invocation, never a flag
    # the usage text lists; it must not count as stale.
    expect(GOOD_HELP, GOOD_DOC + "See `--help`.\n", True,
           "--help mention flagged as stale")

    help_flags = flags_of(GOOD_HELP)

    def expect_mentions(doc_text, ok_expected, label):
        cases[0] += 1
        errors = mention_errors(doc_text, help_flags, "readme")
        if bool(not errors) != ok_expected:
            failures.append(f"{label}: {errors}")

    expect_mentions("Tune with `--benchmark` and `--search-threads`.\n",
                    True, "valid mentions rejected")
    expect_mentions("Pass `--no-such-flag` to the run.\n",
                    False, "stale mention accepted")
    expect_mentions("Run `cmake --preset asan` and `ctest --test-dir b`.\n",
                    True, "other tools' flags flagged as stale")
    expect_mentions("See [§8](F.md#search--the-rating-cache-core) too.\n",
                    True, "anchor inside a link target read as a flag")

    if failures:
        for failure in failures:
            print(f"self-test: FAIL ({failure})")
        return False
    print(f"self-test: OK ({cases[0]} cases)")
    return True


def main(argv):
    if "--self-test" in argv:
        return 0 if self_test() else 1
    binary = None
    doc = None
    mentions = []
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg in ("--binary", "--doc", "--mentions"):
            if i + 1 >= len(argv):
                print(f"{arg} requires an argument")
                return 1
            if arg == "--binary":
                binary = argv[i + 1]
            elif arg == "--doc":
                doc = argv[i + 1]
            else:
                mentions.append(argv[i + 1])
            i += 2
        else:
            print(f"unknown option {arg!r}")
            return 1
    if binary is None or doc is None:
        print(__doc__.strip())
        return 1
    try:
        help_text = help_text_of(binary)
    except OSError as exc:
        print(f"{binary}: FAIL ({exc})")
        return 1
    try:
        with open(doc, "r", encoding="utf-8") as handle:
            doc_text = handle.read()
    except OSError as exc:
        print(f"{doc}: FAIL ({exc})")
        return 1
    errors = [f"{doc}: {e}" for e in diff_docs(help_text, doc_text)]
    help_flags = flags_of(help_text)
    for path in mentions:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                errors.extend(mention_errors(handle.read(), help_flags,
                                             path))
        except OSError as exc:
            errors.append(f"{path}: {exc}")
    if errors:
        for error in errors:
            print(f"FAIL ({error})")
        return 1
    checked = ", ".join([doc] + mentions)
    print(f"OK ({checked} in sync with {binary} --help)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
