#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "support/http_server.hpp"

namespace peak::support {
namespace {

/// Raw-socket client for the cases the convenience client does not cover
/// (HEAD, POST, hand-torn requests): send `request` in `pieces` chunks
/// with tiny pauses, then read the full response until close.
std::string raw_round_trip(std::uint16_t port, const std::string& request,
                           std::size_t pieces = 1) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::size_t step =
      pieces == 0 ? request.size() : (request.size() + pieces - 1) / pieces;
  for (std::size_t off = 0; off < request.size(); off += step) {
    const std::size_t n = std::min(step, request.size() - off);
    EXPECT_EQ(::send(fd, request.data() + off, n, 0),
              static_cast<ssize_t>(n));
    if (pieces > 1)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::string response;
  char buf[4096];
  ssize_t got;
  while ((got = ::recv(fd, buf, sizeof(buf), 0)) > 0)
    response.append(buf, static_cast<std::size_t>(got));
  ::close(fd);
  return response;
}

TEST(HttpParser, ParsesARequestFedOneByteAtATime) {
  HttpParser parser;
  const std::string request =
      "GET /metrics?from=3&max=10 HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "X-Custom-Header: value with spaces\r\n"
      "\r\n";
  for (std::size_t i = 0; i + 1 < request.size(); ++i)
    ASSERT_EQ(parser.feed(request.substr(i, 1)),
              HttpParser::State::kNeedMore)
        << "byte " << i;
  ASSERT_EQ(parser.feed(request.substr(request.size() - 1)),
            HttpParser::State::kDone);
  const HttpRequest& req = parser.request();
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/metrics");
  EXPECT_EQ(req.query, "from=3&max=10");
  EXPECT_EQ(req.query_param("from"), "3");
  EXPECT_EQ(req.query_param("max"), "10");
  EXPECT_EQ(req.query_param("missing", "fallback"), "fallback");
  EXPECT_EQ(req.version, "HTTP/1.1");
  // Header names are lower-cased on parse.
  EXPECT_EQ(req.headers.at("x-custom-header"), "value with spaces");
  EXPECT_EQ(req.headers.at("host"), "localhost");
}

TEST(HttpParser, OversizedHeadersReport431) {
  HttpParser parser(/*max_bytes=*/256);
  std::string request = "GET / HTTP/1.1\r\nX-Big: ";
  request.append(1024, 'a');
  EXPECT_EQ(parser.feed(request), HttpParser::State::kError);
  EXPECT_EQ(parser.error_status(), 431);
}

TEST(HttpParser, MalformedRequestLineReports400) {
  HttpParser parser;
  EXPECT_EQ(parser.feed("NOT-A-REQUEST\r\n\r\n"),
            HttpParser::State::kError);
  EXPECT_EQ(parser.error_status(), 400);
}

TEST(HttpParser, BodyRespectsContentLength) {
  HttpParser parser;
  ASSERT_EQ(parser.feed("POST /x HTTP/1.1\r\nContent-Length: 5\r\n\r\nhel"),
            HttpParser::State::kNeedMore);
  ASSERT_EQ(parser.feed("lo"), HttpParser::State::kDone);
  EXPECT_EQ(parser.request().body, "hello");
}

TEST(HttpParser, OversizedBodyReports413) {
  HttpParser parser(/*max_bytes=*/128);
  EXPECT_EQ(
      parser.feed("POST /x HTTP/1.1\r\nContent-Length: 100000\r\n\r\n"),
      HttpParser::State::kError);
  EXPECT_EQ(parser.error_status(), 413);
}

class HttpServerTest : public ::testing::Test {
protected:
  void SetUp() override {
    server_.handle("/hello", [](const HttpRequest&) {
      return HttpResponse::text(200, "hello world\n");
    });
    server_.handle("/count", [this](const HttpRequest&) {
      ++hits_;
      return HttpResponse::json("{\"ok\":true}");
    });
    std::string error;
    ASSERT_TRUE(server_.start(&error)) << error;
  }

  HttpServer server_;
  std::atomic<int> hits_{0};
};

TEST_F(HttpServerTest, ServesRegisteredPaths) {
  const HttpClientResult r =
      http_get("127.0.0.1", server_.port(), "/hello");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "hello world\n");
  EXPECT_EQ(r.headers.at("connection"), "close");
  EXPECT_EQ(r.headers.at("content-length"),
            std::to_string(r.body.size()));
}

TEST_F(HttpServerTest, UnknownPathsAnswer404) {
  const HttpClientResult r =
      http_get("127.0.0.1", server_.port(), "/no/such/path");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.status, 404);
}

TEST_F(HttpServerTest, HeadGetsHeadersButNoBody) {
  const std::string response = raw_round_trip(
      server_.port(), "HEAD /hello HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  // Content-Length still describes the GET body; the body is absent.
  EXPECT_NE(response.find("Content-Length: 12\r\n"), std::string::npos);
  const std::size_t end = response.find("\r\n\r\n");
  ASSERT_NE(end, std::string::npos);
  EXPECT_EQ(response.substr(end + 4), "");
}

TEST_F(HttpServerTest, NonGetMethodsAnswer405) {
  const std::string response = raw_round_trip(
      server_.port(),
      "POST /hello HTTP/1.1\r\nHost: x\r\nContent-Length: 0\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 405"), std::string::npos);
}

TEST_F(HttpServerTest, TornRequestsReassemble) {
  const std::string response = raw_round_trip(
      server_.port(), "GET /hello HTTP/1.1\r\nHost: x\r\n\r\n",
      /*pieces=*/9);
  EXPECT_NE(response.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(response.find("hello world\n"), std::string::npos);
}

TEST_F(HttpServerTest, MalformedRequestAnswers400) {
  const std::string response =
      raw_round_trip(server_.port(), "garbage\r\n\r\n");
  EXPECT_NE(response.find("HTTP/1.1 400"), std::string::npos);
}

/// The TSan-labelled hammer: many clients scraping concurrently must all
/// get complete responses and count exactly once each.
TEST_F(HttpServerTest, ConcurrentScrapeHammer) {
  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 25;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  clients.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    clients.emplace_back([this, &ok] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        const HttpClientResult r =
            http_get("127.0.0.1", server_.port(), "/count");
        if (r.ok && r.status == 200 && r.body == "{\"ok\":true}") ++ok;
      }
    });
  for (std::thread& c : clients) c.join();
  EXPECT_EQ(ok.load(), kThreads * kRequestsPerThread);
  EXPECT_EQ(hits_.load(), kThreads * kRequestsPerThread);
}

TEST_F(HttpServerTest, StopIsIdempotentAndUnbindsThePort) {
  const std::uint16_t port = server_.port();
  server_.stop();
  server_.stop();
  EXPECT_FALSE(server_.running());
  const HttpClientResult r = http_get("127.0.0.1", port, "/hello",
                                      std::chrono::milliseconds(500));
  EXPECT_FALSE(r.ok);
}

TEST(HttpServerStream, StreamHandlerDeliversChunksUntilClientBails) {
  HttpServer server;
  server.handle_stream("/stream", [](const HttpRequest&,
                                     HttpServer::StreamWriter& writer) {
    for (int i = 0; i < 100 && writer.alive(); ++i)
      if (!writer.write("data: tick " + std::to_string(i) + "\n\n"))
        return;
  });
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  std::string collected;
  const bool ok = http_stream(
      "127.0.0.1", server.port(), "/stream",
      [&collected](std::string_view chunk) {
        collected.append(chunk);
        return collected.find("tick 5") == std::string::npos;
      },
      &error);
  EXPECT_TRUE(ok) << error;
  EXPECT_NE(collected.find("data: tick 0"), std::string::npos);
  EXPECT_NE(collected.find("tick 5"), std::string::npos);
  server.stop();
}

}  // namespace
}  // namespace peak::support
