#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/journal.hpp"
#include "core/profile.hpp"
#include "core/tuning_driver.hpp"
#include "fault/injector.hpp"
#include "workloads/workload.hpp"

namespace peak::core {
namespace {

/// Driver-level fault-tolerance tests: the acceptance criteria of the
/// robustness milestone. A 5% per-config fault rate must not crash or
/// hang tuning, miscompiled configs must never win, and a run killed at
/// any journal line must resume to a bit-identical TuningOutcome.
class FaultTuningTest : public ::testing::Test {
protected:
  FaultTuningTest()
      : machine_(sim::sparc2()), effects_(search::gcc33_o3_space()) {}

  struct Setup {
    std::unique_ptr<workloads::Workload> workload;
    workloads::Trace train;
    ProfileData profile;
  };

  Setup setup(const std::string& name) {
    Setup s;
    s.workload = workloads::make_workload(name);
    s.train = s.workload->trace(workloads::DataSet::kTrain, 42);
    s.profile = profile_workload(*s.workload, s.train, machine_);
    return s;
  }

  /// 5%-of-configs-faulty injector with the -O3 start config exempted
  /// (it is shipping production code, known to work).
  fault::FaultInjector sweep_injector(std::uint64_t seed) const {
    fault::FaultModel model;
    model.fault_prob = 0.05;
    model.seed = seed;
    fault::FaultInjector injector(model);
    injector.exempt(search::o3_config(effects_.space()));
    return injector;
  }

  /// Every non-exempt config glitches deterministically: all of its
  /// timings read as infinity.
  fault::FaultInjector glitch_flood() const {
    fault::FaultModel model;
    model.fault_prob = 1.0;
    model.crash_weight = model.hang_weight = 0.0;
    model.miscompile_weight = model.checkpoint_weight = 0.0;
    model.glitch_weight = 1.0;
    model.deterministic_fraction = 1.0;
    fault::FaultInjector injector(model);
    injector.exempt(search::o3_config(effects_.space()));
    return injector;
  }

  static std::string temp_path(const std::string& name) {
    const std::string path = ::testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
  }

  sim::MachineModel machine_;
  sim::FlagEffectModel effects_;
};

TEST_F(FaultTuningTest, JournalingAloneDoesNotPerturbTuning) {
  Setup s = setup("SWIM");

  TuningDriver plain(*s.workload, s.profile, s.train, machine_, effects_,
                     {});
  const TuningOutcome baseline = plain.tune(rating::Method::kCBR);

  DriverOptions options;
  options.fault.journal_path =
      temp_path("peak_journal_noperturb.jsonl");
  TuningDriver journaled(*s.workload, s.profile, s.train, machine_,
                         effects_, options);
  EXPECT_EQ(journaled.tune(rating::Method::kCBR), baseline);
}

TEST_F(FaultTuningTest, ResumeFromCompleteJournalIsBitIdentical) {
  Setup s = setup("SWIM");
  const std::string path = temp_path("peak_journal_full.jsonl");

  DriverOptions options;
  options.fault.journal_path = path;
  TuningDriver first(*s.workload, s.profile, s.train, machine_, effects_,
                     options);
  const TuningOutcome original = first.tune(rating::Method::kCBR);

  options.fault.resume = true;
  TuningDriver resumed(*s.workload, s.profile, s.train, machine_,
                       effects_, options);
  EXPECT_EQ(resumed.tune(rating::Method::kCBR), original);
}

TEST_F(FaultTuningTest, ResumeFromTruncatedJournalContinuesLive) {
  Setup s = setup("SWIM");
  const std::string path = temp_path("peak_journal_trunc.jsonl");

  DriverOptions options;
  options.fault.journal_path = path;
  TuningDriver first(*s.workload, s.profile, s.train, machine_, effects_,
                     options);
  const TuningOutcome original = first.tune(rating::Method::kCBR);

  // Simulate a kill partway through: keep the segment-start line and the
  // first half of the eval records, plus the partial line the dying
  // process was writing (which load() must skip).
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GT(lines.size(), 4u);
  const std::string cut = temp_path("peak_journal_cut.jsonl");
  {
    std::ofstream out(cut);
    for (std::size_t i = 0; i < 1 + (lines.size() - 1) / 2; ++i)
      out << lines[i] << '\n';
    out << R"({"type":"eval","base":"dead)";  // no trailing newline
  }

  DriverOptions resume_options;
  resume_options.fault.journal_path = cut;
  resume_options.fault.resume = true;
  TuningDriver resumed(*s.workload, s.profile, s.train, machine_,
                       effects_, resume_options);
  EXPECT_EQ(resumed.tune(rating::Method::kCBR), original);
}

TEST_F(FaultTuningTest, ResumeUnderFaultInjectionIsBitIdentical) {
  Setup s = setup("SWIM");
  const fault::FaultInjector injector = sweep_injector(0xfau);
  const std::string path = temp_path("peak_journal_fault.jsonl");

  DriverOptions options;
  options.fault.injector = &injector;
  options.fault.journal_path = path;
  TuningDriver first(*s.workload, s.profile, s.train, machine_, effects_,
                     options);
  const TuningOutcome original = first.tune(rating::Method::kCBR);

  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GT(lines.size(), 4u);
  const std::string cut = temp_path("peak_journal_fault_cut.jsonl");
  {
    std::ofstream out(cut);
    for (std::size_t i = 0; i < 1 + (lines.size() - 1) / 3; ++i)
      out << lines[i] << '\n';
  }

  DriverOptions resume_options = options;
  resume_options.fault.journal_path = cut;
  resume_options.fault.resume = true;
  TuningDriver resumed(*s.workload, s.profile, s.train, machine_,
                       effects_, resume_options);
  const TuningOutcome replayed = resumed.tune(rating::Method::kCBR);
  EXPECT_EQ(replayed, original);
  // Quarantine decisions recorded before the kill must survive it.
  EXPECT_EQ(resumed.quarantine().entries().size(),
            first.quarantine().entries().size());
}

TEST_F(FaultTuningTest, FivePercentFaultSweepCompletesOnAllWorkloads) {
  for (auto& workload : workloads::all_workloads()) {
    SCOPED_TRACE(workload->full_name());
    Setup s;
    s.workload = std::move(workload);
    s.train = s.workload->trace(workloads::DataSet::kTrain, 42);
    s.profile = profile_workload(*s.workload, s.train, machine_);
    const fault::FaultInjector injector = sweep_injector(0x5eedu);

    DriverOptions options;
    options.fault.injector = &injector;
    TuningDriver driver(*s.workload, s.profile, s.train, machine_,
                        effects_, options);
    // Completing at all is the headline claim: every injected hang hits
    // a deadline and every crash is retried or quarantined, so tuning
    // never dies and never spins.
    const TuningOutcome outcome = driver.tune_auto();

    // The winner is never a quarantined or miscompiled configuration.
    EXPECT_FALSE(driver.quarantine().contains(outcome.best_config.key()));
    EXPECT_NE(injector.decide(outcome.best_config).kind,
              fault::FaultKind::kMiscompile);
    EXPECT_GT(outcome.cost.invocations, 0u);
  }
}

TEST_F(FaultTuningTest, ChosenConfigUsuallyMatchesFaultFreeBaseline) {
  Setup s = setup("SWIM");
  // Adoption decisions must be solid for exact-config agreement to be a
  // meaningful robustness metric: at the default 1% threshold the search
  // also picks up ~0.6% jitter flags whose adoption is itself a coin
  // flip of the noise stream. 1.5% keeps the real (story) effects and
  // drops the marginal ones, so disagreement below measures fault
  // damage, not noise.
  search::IterativeEliminationOptions ie;
  ie.improvement_threshold = 1.015;
  // The fault-free control runs the same guard + validation machinery
  // (an injector that never fires), so any winner disagreement below is
  // caused by injected faults, not by validation's extra invocations.
  fault::FaultModel none;
  none.fault_prob = 0.0;
  const fault::FaultInjector no_faults(none);
  DriverOptions clean_options;
  clean_options.ie = ie;
  clean_options.fault.injector = &no_faults;
  TuningDriver clean(*s.workload, s.profile, s.train, machine_, effects_,
                     clean_options);
  const search::FlagConfig baseline = clean.tune_auto().best_config;

  int matches = 0;
  const int seeds = 10;
  for (int seed = 1; seed <= seeds; ++seed) {
    const fault::FaultInjector injector =
        sweep_injector(static_cast<std::uint64_t>(seed));
    DriverOptions options;
    options.ie = ie;
    options.fault.injector = &injector;
    TuningDriver driver(*s.workload, s.profile, s.train, machine_,
                        effects_, options);
    if (driver.tune_auto().best_config == baseline) ++matches;
  }
  // Faults may occasionally hide a genuinely good config (it gets
  // quarantined or rated 0), but on >= 90% of fault seeds the tuner must
  // land on the fault-free answer.
  EXPECT_GE(matches, 9) << matches << "/" << seeds
                        << " seeds matched the fault-free winner";
}

TEST_F(FaultTuningTest, QuarantinedConfigIsSkippedBySearch) {
  Setup s = setup("SWIM");
  DriverOptions options;
  TuningDriver driver(*s.workload, s.profile, s.train, machine_, effects_,
                      options);
  // Pre-quarantine the first config Iterative Elimination would probe
  // (O3 minus the space's first flag), as a persisted ConfigStore entry
  // from an earlier run would.
  search::FlagConfig poisoned = search::o3_config(effects_.space());
  poisoned.set(0, false);
  driver.quarantine().quarantine(poisoned.key(),
                                 fault::FaultKind::kCrash);

  const TuningOutcome outcome = driver.tune(rating::Method::kCBR);
  bool saw_skip = false;
  for (const search::SearchEvent& ev : outcome.events)
    if (ev.kind == search::SearchEvent::Kind::kQuarantined) saw_skip = true;
  EXPECT_TRUE(saw_skip);
  EXPECT_NE(outcome.best_config, poisoned);
}

TEST_F(FaultTuningTest, GlitchFloodExhaustsWindowsAndAbandonsMethod) {
  // Satellite: with guarded execution off, the only protection left is
  // the rating windows' non-finite-sample guard. A config whose every
  // timing reads as infinity must exhaust the window (dropped samples
  // count toward the budget), surface as RatingNotConverging, and make
  // tune() abandon the method — not loop forever, not rate garbage.
  Setup s = setup("WUPWISE");
  ASSERT_EQ(s.profile.decision.initial(), rating::Method::kCBR);
  const fault::FaultInjector injector = glitch_flood();

  DriverOptions options;
  options.fault.injector = &injector;
  options.fault.guard_execution = false;

  for (rating::Method method :
       {rating::Method::kCBR, rating::Method::kMBR}) {
    SCOPED_TRACE(rating::to_string(method));
    TuningDriver driver(*s.workload, s.profile, s.train, machine_,
                        effects_, options);
    const TuningOutcome outcome = driver.tune(method);
    EXPECT_EQ(outcome.best_config, search::o3_config(effects_.space()));
    EXPECT_EQ(outcome.exhausted_fraction, 1.0);
    ASSERT_FALSE(outcome.events.empty());
    EXPECT_EQ(outcome.events.back().kind,
              search::SearchEvent::Kind::kAbandoned);
  }
}

TEST_F(FaultTuningTest, GuardedAutoTuningSurvivesWhatUnguardedCannot) {
  Setup s = setup("WUPWISE");
  const fault::FaultInjector injector = glitch_flood();

  // Unguarded, the fallback chain ends at RBR, whose measurement pairs
  // surface the glitch as a raw FaultError: the tuner dies. This is the
  // paper driver's blind spot, reproduced on purpose.
  DriverOptions unguarded;
  unguarded.fault.injector = &injector;
  unguarded.fault.guard_execution = false;
  TuningDriver blind(*s.workload, s.profile, s.train, machine_, effects_,
                     unguarded);
  EXPECT_THROW(blind.tune_auto(), fault::FaultError);

  // Guarded, every glitching config fails cleanly into quarantine and
  // tuning completes, returning the only healthy config: -O3 itself.
  DriverOptions guarded;
  guarded.fault.injector = &injector;
  TuningDriver driver(*s.workload, s.profile, s.train, machine_, effects_,
                      guarded);
  const TuningOutcome outcome = driver.tune_auto();
  EXPECT_EQ(outcome.best_config, search::o3_config(effects_.space()));
  EXPECT_GT(driver.quarantine().size(), 0u);
}

}  // namespace
}  // namespace peak::core
