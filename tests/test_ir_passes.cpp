#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/fuzz.hpp"
#include "ir/interpreter.hpp"
#include "ir/passes.hpp"
#include "support/check.hpp"

namespace peak::ir {
namespace {

TEST(ConstantFolding, FoldsArithmeticTrees) {
  FunctionBuilder b("cf");
  const auto x = b.param_scalar("x");
  // x = (2 + 3) * 4 - min(10, 7)
  b.assign(x, b.sub(b.mul(b.add(b.c(2), b.c(3)), b.c(4)),
                    b.min(b.c(10), b.c(7))));
  Function fn = b.build();
  EXPECT_TRUE(ConstantFolding().run(fn));
  // The statement's root is now a single constant.
  const Stmt& s = fn.block(fn.entry()).stmts[0];
  ASSERT_EQ(fn.expr(s.rhs).op, ExprOp::kConst);
  EXPECT_DOUBLE_EQ(fn.expr(s.rhs).constant, 13.0);
  // Idempotent.
  EXPECT_FALSE(ConstantFolding().run(fn));
}

TEST(ConstantFolding, PreservesDivisionByZero) {
  FunctionBuilder b("div0");
  const auto x = b.param_scalar("x");
  b.assign(x, b.div(b.c(1), b.c(0)));
  Function fn = b.build();
  ConstantFolding().run(fn);
  Memory mem = Memory::for_function(fn);
  EXPECT_THROW(Interpreter(fn).run(mem), support::CheckError);
}

TEST(ConstantFolding, ConstantBranchBecomesJump) {
  FunctionBuilder b("cb");
  const auto x = b.param_scalar("x");
  b.if_else(b.gt(b.c(5), b.c(3)), [&] { b.assign(x, b.c(1)); },
            [&] { b.assign(x, b.c(2)); });
  Function fn = b.build();
  EXPECT_TRUE(ConstantFolding().run(fn));
  EXPECT_EQ(fn.block(fn.entry()).term.kind, TermKind::kJump);
  // The else arm is now unreachable and gets scrubbed.
  EXPECT_TRUE(UnreachableBlockElimination().run(fn));
  Memory mem = Memory::for_function(fn);
  Interpreter(fn).run(mem);
  EXPECT_DOUBLE_EQ(mem.scalar(x), 1.0);
}

TEST(CopyPropagation, ForwardsThroughBlock) {
  FunctionBuilder b("cp");
  const auto a = b.param_scalar("a");
  const auto t = b.scalar("t");
  const auto out = b.param_scalar("out");
  b.assign(t, b.v(a));
  b.assign(out, b.add(b.v(t), b.v(t)));
  Function fn = b.build();
  EXPECT_TRUE(CopyPropagation().run(fn));
  // out's rhs now reads `a` directly; `t` becomes dead.
  std::vector<VarId> used;
  fn.collect_used_vars(fn.block(fn.entry()).stmts[1].rhs, used);
  for (VarId v : used) EXPECT_EQ(v, a);
  EXPECT_TRUE(DeadCodeElimination().run(fn));
  EXPECT_EQ(fn.block(fn.entry()).stmts.size(), 1u);
}

TEST(CopyPropagation, StopsAtRedefinition) {
  FunctionBuilder b("cp2");
  const auto a = b.param_scalar("a");
  const auto bb = b.param_scalar("b");
  const auto t = b.scalar("t");
  const auto out = b.param_scalar("out");
  b.assign(t, b.v(a));
  b.assign(t, b.v(bb));          // t redefined
  b.assign(out, b.v(t));         // must NOT become `a`
  Function fn = b.build();
  CopyPropagation().run(fn);
  Memory mem = Memory::for_function(fn);
  mem.scalar(a) = 1.0;
  mem.scalar(bb) = 2.0;
  Interpreter(fn).run(mem);
  EXPECT_DOUBLE_EQ(mem.scalar(out), 2.0);
}

TEST(Dce, KeepsArrayStoresAndCounters) {
  FunctionBuilder b("dce");
  const auto arr = b.param_array("arr", 8);
  const auto dead = b.scalar("dead");
  b.assign(dead, b.c(42));
  b.store(arr, b.c(0), b.c(7));
  b.counter(0);
  Function fn = b.build();
  EXPECT_TRUE(DeadCodeElimination().run(fn));
  const auto& stmts = fn.block(fn.entry()).stmts;
  ASSERT_EQ(stmts.size(), 2u);
  EXPECT_EQ(stmts[0].kind, StmtKind::kAssign);  // the store
  EXPECT_FALSE(stmts[0].lhs.is_scalar());
  EXPECT_EQ(stmts[1].kind, StmtKind::kCounter);
}

TEST(Dce, KeepsValuesReadByBranches) {
  FunctionBuilder b("dce2");
  const auto n = b.param_scalar("n");
  const auto t = b.scalar("t");
  const auto out = b.param_scalar("out");
  b.assign(t, b.mul(b.v(n), b.c(2)));
  b.if_then(b.gt(b.v(t), b.c(4)), [&] { b.assign(out, b.c(1)); });
  Function fn = b.build();
  EXPECT_FALSE(DeadCodeElimination().run(fn));  // nothing removable
}

TEST(Licm, HoistsInvariantOutOfLoop) {
  FunctionBuilder b("licm");
  const auto n = b.param_scalar("n");
  const auto k = b.param_scalar("k");
  const auto inv = b.scalar("inv");
  const auto acc = b.param_scalar("acc");
  const auto i = b.scalar("i");
  b.assign(acc, b.c(0));
  b.for_loop(i, b.c(0), b.v(n), [&] {
    b.assign(inv, b.mul(b.v(k), b.v(k)));  // loop-invariant
    b.assign(acc, b.add(b.v(acc), b.v(inv)));
  });
  Function fn = b.build();

  // Count how often inv's definition would execute: before = per
  // iteration; after = once.
  Memory before_mem = Memory::for_function(fn);
  before_mem.scalar(n) = 10;
  before_mem.scalar(k) = 3;
  const RunResult before = Interpreter(fn).run(before_mem);

  EXPECT_TRUE(LoopInvariantCodeMotion().run(fn));
  Memory after_mem = Memory::for_function(fn);
  after_mem.scalar(n) = 10;
  after_mem.scalar(k) = 3;
  const RunResult after = Interpreter(fn).run(after_mem);

  EXPECT_DOUBLE_EQ(after_mem.scalar(acc), before_mem.scalar(acc));
  EXPECT_LT(after.steps, before.steps);  // one multiply instead of ten
}

TEST(Licm, RefusesWhenValueUsedAfterZeroTripLoop) {
  // x has a meaningful value before the loop and is (re)defined inside;
  // with n = 0 the loop never runs, so hoisting would corrupt x.
  FunctionBuilder b("licm2");
  const auto n = b.param_scalar("n");
  const auto x = b.param_scalar("x");
  const auto out = b.param_scalar("out");
  const auto i = b.scalar("i");
  b.for_loop(i, b.c(0), b.v(n), [&] { b.assign(x, b.c(99)); });
  b.assign(out, b.v(x));
  Function fn = b.build();
  LoopInvariantCodeMotion().run(fn);

  Memory mem = Memory::for_function(fn);
  mem.scalar(n) = 0;   // zero-trip
  mem.scalar(x) = 7;
  Interpreter(fn).run(mem);
  EXPECT_DOUBLE_EQ(mem.scalar(out), 7.0);  // pre-loop value survives
}

TEST(PassManager, StandardPipelineShrinksWork) {
  FunctionBuilder b("pipe");
  const auto n = b.param_scalar("n");
  const auto k = b.param_scalar("k");
  const auto t = b.scalar("t");
  const auto inv = b.scalar("inv");
  const auto acc = b.param_scalar("acc");
  const auto i = b.scalar("i");
  b.assign(t, b.v(k));                      // copy
  b.assign(acc, b.mul(b.c(2), b.c(0)));     // folds to 0
  b.for_loop(i, b.c(0), b.v(n), [&] {
    b.assign(inv, b.add(b.v(t), b.c(1)));   // invariant after copy-prop
    b.assign(acc, b.add(b.v(acc), b.v(inv)));
  });
  Function fn = b.build();

  Memory m1 = Memory::for_function(fn);
  m1.scalar(n) = 20;
  m1.scalar(k) = 4;
  const RunResult before = Interpreter(fn).run(m1);

  const std::size_t applications =
      PassManager::standard_pipeline().run(fn, 8);
  EXPECT_GT(applications, 0u);

  Memory m2 = Memory::for_function(fn);
  m2.scalar(n) = 20;
  m2.scalar(k) = 4;
  const RunResult after = Interpreter(fn).run(m2);
  EXPECT_DOUBLE_EQ(m2.scalar(acc), m1.scalar(acc));
  EXPECT_LT(after.steps, before.steps);
}

TEST(Cse, ReusesRepeatedComputation) {
  FunctionBuilder b("cse");
  const auto a = b.param_scalar("a");
  const auto x = b.scalar("x");
  const auto y = b.scalar("y");
  const auto out = b.param_scalar("out");
  b.assign(x, b.mul(b.add(b.v(a), b.c(1)), b.add(b.v(a), b.c(1))));
  b.assign(y, b.mul(b.add(b.v(a), b.c(1)), b.add(b.v(a), b.c(1))));
  b.assign(out, b.add(b.v(x), b.v(y)));
  Function fn = b.build();
  EXPECT_TRUE(CommonSubexpressionElimination().run(fn));
  // y's rhs is now a plain copy of x.
  const Stmt& second = fn.block(fn.entry()).stmts[1];
  EXPECT_EQ(fn.expr(second.rhs).op, ExprOp::kVarRef);
  EXPECT_EQ(fn.expr(second.rhs).var, x);
  // Semantics unchanged.
  Memory mem = Memory::for_function(fn);
  mem.scalar(a) = 3;
  Interpreter(fn).run(mem);
  EXPECT_DOUBLE_EQ(mem.scalar(out), 32.0);
}

TEST(Cse, InvalidatedByRedefinition) {
  FunctionBuilder b("cse2");
  const auto a = b.param_scalar("a");
  const auto x = b.scalar("x");
  const auto y = b.scalar("y");
  const auto out = b.param_scalar("out");
  b.assign(x, b.mul(b.v(a), b.v(a)));
  b.assign(a, b.add(b.v(a), b.c(1)));  // kills a*a
  b.assign(y, b.mul(b.v(a), b.v(a)));  // must recompute
  b.assign(out, b.add(b.v(x), b.v(y)));
  Function fn = b.build();
  CommonSubexpressionElimination().run(fn);
  Memory mem = Memory::for_function(fn);
  mem.scalar(a) = 2;
  Interpreter(fn).run(mem);
  EXPECT_DOUBLE_EQ(mem.scalar(out), 4.0 + 9.0);
}

TEST(Cse, SkipsMemoryReads) {
  FunctionBuilder b("cse3");
  const auto arr = b.param_array("arr", 4, true);
  const auto x = b.scalar("x");
  const auto y = b.scalar("y");
  b.assign(x, b.add(b.at(arr, b.c(0)), b.c(1)));
  b.store(arr, b.c(0), b.c(99));
  b.assign(y, b.add(b.at(arr, b.c(0)), b.c(1)));  // different value!
  const auto out = b.param_scalar("out");
  b.assign(out, b.sub(b.v(y), b.v(x)));
  Function fn = b.build();
  EXPECT_FALSE(CommonSubexpressionElimination().run(fn));
  Memory mem = Memory::for_function(fn);
  mem.array(arr)[0] = 1.0;
  Interpreter(fn).run(mem);
  EXPECT_DOUBLE_EQ(mem.scalar(out), 98.0);
}

/// The heavyweight guarantee: every pass preserves observable semantics on
/// randomly generated programs (differential testing against the
/// interpreter).
class PassSemanticsFuzz : public ::testing::TestWithParam<int> {};

TEST_P(PassSemanticsFuzz, PipelinePreservesMemoryState) {
  const auto seed = static_cast<std::uint64_t>(GetParam());
  const Function original = fuzz_function(seed);

  Memory before = fuzz_memory(original, seed);
  Interpreter(original).run(before);

  Function optimized = original;
  PassManager::standard_pipeline().run(optimized, 8);

  Memory after = fuzz_memory(original, seed);
  Interpreter(optimized).run(after);

  // Params and arrays are the observable state (locals are internal, but
  // comparing everything is an even stronger check — passes may only
  // change dead values; restrict to params + arrays for robustness).
  for (VarId p : original.params()) {
    if (original.var(p).kind == VarKind::kScalar) {
      EXPECT_DOUBLE_EQ(after.scalar(p), before.scalar(p))
          << "seed " << seed << " scalar " << original.var(p).name;
    } else if (original.var(p).kind == VarKind::kArray) {
      EXPECT_EQ(after.array(p), before.array(p))
          << "seed " << seed << " array " << original.var(p).name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, PassSemanticsFuzz,
                         ::testing::Range(1, 41));

}  // namespace
}  // namespace peak::ir
