#include <gtest/gtest.h>

#include <map>
#include <set>

#include "fault/fault.hpp"
#include "fault/injector.hpp"
#include "search/opt_config.hpp"
#include "support/rng.hpp"

namespace peak::fault {
namespace {

search::FlagConfig random_config(support::Rng& rng) {
  const auto& space = search::gcc33_o3_space();
  search::FlagConfig cfg(space);
  for (std::size_t f = 0; f < space.size(); ++f)
    cfg.set(f, rng.uniform() < 0.5);
  return cfg;
}

TEST(FaultKindTest, NamesRoundTrip) {
  for (FaultKind k :
       {FaultKind::kNone, FaultKind::kCrash, FaultKind::kHang,
        FaultKind::kMiscompile, FaultKind::kTimerGlitch,
        FaultKind::kCheckpointCorrupt}) {
    const auto parsed = parse_fault_kind(to_string(k));
    ASSERT_TRUE(parsed.has_value()) << to_string(k);
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(parse_fault_kind("sigsegv").has_value());
}

TEST(FaultInjectorTest, ZeroProbabilityNeverFaults) {
  FaultInjector injector;  // default model: fault_prob = 0
  support::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const search::FlagConfig cfg = random_config(rng);
    EXPECT_EQ(injector.decide(cfg).kind, FaultKind::kNone);
    EXPECT_EQ(injector.fire(cfg, 0, 0), FaultKind::kNone);
  }
}

TEST(FaultInjectorTest, SameSeedReproducesVerdictsAcrossInstances) {
  FaultModel model;
  model.fault_prob = 0.3;
  model.seed = 0xabcdef;
  const FaultInjector a(model);
  const FaultInjector b(model);
  support::Rng rng(11);
  for (int i = 0; i < 300; ++i) {
    const search::FlagConfig cfg = random_config(rng);
    const FaultDecision da = a.decide(cfg);
    const FaultDecision db = b.decide(cfg);
    EXPECT_EQ(da.kind, db.kind);
    EXPECT_EQ(da.deterministic, db.deterministic);
    for (std::uint64_t inv = 0; inv < 4; ++inv)
      for (std::size_t attempt = 0; attempt < 3; ++attempt)
        EXPECT_EQ(a.fire(cfg, inv, attempt), b.fire(cfg, inv, attempt));
  }
}

TEST(FaultInjectorTest, DifferentSeedsGiveDifferentFaultSets) {
  FaultModel m1;
  m1.fault_prob = 0.3;
  m1.seed = 1;
  FaultModel m2 = m1;
  m2.seed = 2;
  const FaultInjector a(m1);
  const FaultInjector b(m2);
  support::Rng rng(13);
  int differing = 0;
  for (int i = 0; i < 300; ++i) {
    const search::FlagConfig cfg = random_config(rng);
    if (a.decide(cfg).kind != b.decide(cfg).kind) ++differing;
  }
  EXPECT_GT(differing, 20);
}

TEST(FaultInjectorTest, StochasticRateTracksFaultProbability) {
  FaultModel model;
  model.fault_prob = 0.05;
  const FaultInjector injector(model);
  support::Rng rng(17);
  int faulty = 0;
  const int n = 4000;
  for (int i = 0; i < n; ++i)
    if (injector.decide(random_config(rng)).kind != FaultKind::kNone)
      ++faulty;
  const double rate = static_cast<double>(faulty) / n;
  EXPECT_GT(rate, 0.03);
  EXPECT_LT(rate, 0.08);
}

TEST(FaultInjectorTest, HangsAndMiscompilesAreAlwaysDeterministic) {
  FaultModel model;
  model.fault_prob = 0.5;
  model.deterministic_fraction = 0.0;  // everything else transient
  const FaultInjector injector(model);
  support::Rng rng(19);
  int seen = 0;
  for (int i = 0; i < 2000 && seen < 50; ++i) {
    const search::FlagConfig cfg = random_config(rng);
    const FaultDecision d = injector.decide(cfg);
    if (d.kind == FaultKind::kHang || d.kind == FaultKind::kMiscompile) {
      EXPECT_TRUE(d.deterministic) << to_string(d.kind);
      ++seen;
    } else if (d.kind != FaultKind::kNone) {
      EXPECT_FALSE(d.deterministic) << to_string(d.kind);
    }
  }
  EXPECT_GT(seen, 0);
}

TEST(FaultInjectorTest, TransientFaultsClearOnSomeAttempts) {
  FaultModel model;
  model.fault_prob = 1.0;
  model.crash_weight = 1.0;
  model.hang_weight = model.miscompile_weight = 0.0;
  model.glitch_weight = model.checkpoint_weight = 0.0;
  model.deterministic_fraction = 0.0;
  model.transient_fire_prob = 0.5;
  const FaultInjector injector(model);
  support::Rng rng(23);
  int fired = 0;
  int clear = 0;
  for (int i = 0; i < 100; ++i) {
    const search::FlagConfig cfg = random_config(rng);
    for (std::uint64_t inv = 0; inv < 4; ++inv)
      for (std::size_t attempt = 0; attempt < 3; ++attempt)
        (injector.fire(cfg, inv, attempt) == FaultKind::kCrash ? fired
                                                               : clear)++;
  }
  // ~half of the (invocation, attempt) draws fire; both outcomes occur.
  EXPECT_GT(fired, 300);
  EXPECT_GT(clear, 300);
}

TEST(FaultInjectorTest, ExemptConfigNeverFaults) {
  FaultModel model;
  model.fault_prob = 1.0;  // everything is faulty...
  FaultInjector injector(model);
  const search::FlagConfig o3 =
      search::o3_config(search::gcc33_o3_space());
  injector.exempt(o3);  // ...except the shipping -O3 configuration
  EXPECT_EQ(injector.decide(o3).kind, FaultKind::kNone);
  EXPECT_EQ(injector.fire(o3, 0, 0), FaultKind::kNone);
}

TEST(FaultInjectorTest, ScriptedFaultOverridesStochasticVerdict) {
  FaultInjector injector;  // fault_prob = 0: nothing fires stochastically
  const search::FlagConfig o3 =
      search::o3_config(search::gcc33_o3_space());
  ScriptedFault sf;
  sf.config_key = o3.key();
  sf.invocation_id = 3;
  sf.kind = FaultKind::kCrash;
  sf.sticky = false;  // transient: clears after the first attempt
  injector.script(sf);

  EXPECT_EQ(injector.fire(o3, 2, 0), FaultKind::kNone);  // other invocation
  EXPECT_EQ(injector.fire(o3, 3, 0), FaultKind::kCrash);
  EXPECT_EQ(injector.fire(o3, 3, 1), FaultKind::kNone);  // retry succeeds

  ScriptedFault sticky = sf;
  sticky.invocation_id = 5;
  sticky.kind = FaultKind::kHang;
  sticky.sticky = true;
  injector.script(sticky);
  EXPECT_EQ(injector.fire(o3, 5, 0), FaultKind::kHang);
  EXPECT_EQ(injector.fire(o3, 5, 2), FaultKind::kHang);  // never clears
}

TEST(FaultInjectorTest, KindWeightsSelectKinds) {
  FaultModel model;
  model.fault_prob = 1.0;
  model.crash_weight = 0.0;
  model.hang_weight = 0.0;
  model.miscompile_weight = 1.0;
  model.glitch_weight = 0.0;
  model.checkpoint_weight = 0.0;
  const FaultInjector injector(model);
  support::Rng rng(29);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(injector.decide(random_config(rng)).kind,
              FaultKind::kMiscompile);
}

}  // namespace
}  // namespace peak::fault
