#include <gtest/gtest.h>

#include "ir/interpreter.hpp"
#include "workloads/native.hpp"
#include "workloads/workload.hpp"

namespace peak::workloads {
namespace {

/// Cross-validation for the remaining Table 1 kernels: bind a trace
/// invocation, run the IR interpreter and the native reference on the same
/// inputs, compare the observable outputs. Together with
/// test_workloads_native.cpp this covers all 14 sections.
ir::Memory bound(const Workload& w, const sim::Invocation& inv) {
  ir::Memory mem = ir::Memory::for_function(w.function());
  inv.bind(mem);
  return mem;
}

TEST(CrossValidationFull, GzipLongestMatch) {
  const auto w = make_workload("GZIP");
  const Trace trace = w->trace(DataSet::kTrain, 41);
  const ir::Function& fn = w->function();
  for (std::size_t k = 0; k < 10; ++k) {
    ir::Memory mem = bound(*w, trace.invocations[k]);
    const double expected = native::longest_match(
        static_cast<std::size_t>(mem.scalar(*fn.find_var("cur_match"))),
        static_cast<std::size_t>(mem.scalar(*fn.find_var("strstart"))),
        static_cast<std::size_t>(
            mem.scalar(*fn.find_var("chain_length"))),
        static_cast<std::size_t>(mem.scalar(*fn.find_var("max_len"))),
        mem.array(*fn.find_var("window")), mem.array(*fn.find_var("prev")));
    ir::Interpreter(fn).run(mem);
    EXPECT_DOUBLE_EQ(mem.scalar(*fn.find_var("best_len")), expected)
        << "invocation " << k;
  }
}

TEST(CrossValidationFull, CraftyAttacked) {
  const auto w = make_workload("CRAFTY");
  const Trace trace = w->trace(DataSet::kTrain, 42);
  const ir::Function& fn = w->function();
  for (std::size_t k = 0; k < 20; ++k) {
    ir::Memory mem = bound(*w, trace.invocations[k]);
    const double expected = native::attacked(
        static_cast<std::size_t>(mem.scalar(*fn.find_var("square"))),
        mem.scalar(*fn.find_var("side")), mem.array(*fn.find_var("board")),
        mem.array(*fn.find_var("dir_step")),
        mem.array(*fn.find_var("ray_len")));
    ir::Interpreter(fn).run(mem);
    EXPECT_DOUBLE_EQ(mem.scalar(*fn.find_var("attacked")), expected)
        << "invocation " << k;
  }
}

TEST(CrossValidationFull, McfPrimalBeaMpp) {
  const auto w = make_workload("MCF");
  const Trace trace = w->trace(DataSet::kTrain, 43);
  const ir::Function& fn = w->function();
  for (std::size_t k = 0; k < 5; ++k) {
    ir::Memory mem = bound(*w, trace.invocations[k]);
    std::vector<double> basket(mem.array(*fn.find_var("basket")).size(),
                               0.0);
    const double expected = native::primal_bea_mpp(
        static_cast<std::size_t>(mem.scalar(*fn.find_var("num_arcs"))),
        mem.array(*fn.find_var("cost")), mem.array(*fn.find_var("tail")),
        mem.array(*fn.find_var("head")), mem.array(*fn.find_var("ident")),
        mem.array(*fn.find_var("potential")), basket);
    ir::Interpreter(fn).run(mem);
    EXPECT_DOUBLE_EQ(mem.scalar(*fn.find_var("basket_size")), expected);
    const auto& basket_ir = mem.array(*fn.find_var("basket"));
    for (std::size_t i = 0; i < static_cast<std::size_t>(expected); ++i)
      EXPECT_DOUBLE_EQ(basket_ir[i], basket[i]) << "slot " << i;
  }
}

TEST(CrossValidationFull, TwolfNewDboxA) {
  const auto w = make_workload("TWOLF");
  const Trace trace = w->trace(DataSet::kTrain, 44);
  const ir::Function& fn = w->function();
  for (std::size_t k = 0; k < 10; ++k) {
    ir::Memory mem = bound(*w, trace.invocations[k]);
    const double expected = native::new_dbox_a(
        static_cast<std::size_t>(mem.scalar(*fn.find_var("num_terms"))),
        mem.array(*fn.find_var("pins_per_net")),
        mem.array(*fn.find_var("xs")), mem.array(*fn.find_var("ys")));
    ir::Interpreter(fn).run(mem);
    EXPECT_NEAR(mem.scalar(*fn.find_var("cost")), expected, 1e-9);
  }
}

TEST(CrossValidationFull, VortexChkGetChunk) {
  const auto w = make_workload("VORTEX");
  const Trace trace = w->trace(DataSet::kTrain, 45);
  const ir::Function& fn = w->function();
  int ok = 0, bad = 0;
  for (std::size_t k = 0; k < 40; ++k) {
    ir::Memory mem = bound(*w, trace.invocations[k]);
    const double expected = native::chk_get_chunk(
        static_cast<std::size_t>(mem.scalar(*fn.find_var("handle"))),
        mem.scalar(*fn.find_var("expected_type")),
        mem.array(*fn.find_var("chunks")));
    ir::Interpreter(fn).run(mem);
    EXPECT_DOUBLE_EQ(mem.scalar(*fn.find_var("status")), expected)
        << "invocation " << k;
    (expected == 1.0 ? ok : bad) += 1;
  }
  // Both outcomes occur in the trace (the comparison is non-trivial).
  EXPECT_GT(ok, 0);
  EXPECT_GT(bad, 0);
}

TEST(CrossValidationFull, MesaSample1dLinear) {
  const auto w = make_workload("MESA");
  const Trace trace = w->trace(DataSet::kTrain, 46);
  const ir::Function& fn = w->function();
  for (std::size_t k = 0; k < 50; ++k) {
    ir::Memory mem = bound(*w, trace.invocations[k]);
    std::vector<double> rgba(4, 0.0);
    native::sample_1d_linear(
        mem.scalar(*fn.find_var("s")), mem.scalar(*fn.find_var("size")),
        mem.scalar(*fn.find_var("wrap")), mem.array(*fn.find_var("image")),
        rgba);
    ir::Interpreter(fn).run(mem);
    const auto& rgba_ir = mem.array(*fn.find_var("rgba"));
    for (std::size_t c = 0; c < 4; ++c)
      EXPECT_NEAR(rgba_ir[c], rgba[c], 1e-12)
          << "invocation " << k << " channel " << c;
  }
}

TEST(CrossValidationFull, AppluBlts) {
  const auto w = make_workload("APPLU");
  const Trace trace = w->trace(DataSet::kTrain, 47);
  const ir::Function& fn = w->function();
  ir::Memory mem = bound(*w, trace.invocations[0]);
  auto v = mem.array(*fn.find_var("v"));
  native::blts(
      static_cast<std::size_t>(mem.scalar(*fn.find_var("nx"))),
      static_cast<std::size_t>(mem.scalar(*fn.find_var("ny"))),
      static_cast<std::size_t>(mem.scalar(*fn.find_var("nz"))),
      mem.scalar(*fn.find_var("omega")), v, mem.array(*fn.find_var("ldz")),
      mem.array(*fn.find_var("ldy")), mem.array(*fn.find_var("ldx")));
  ir::Interpreter(fn).run(mem);
  const auto& v_ir = mem.array(*fn.find_var("v"));
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_NEAR(v_ir[i], v[i], 1e-9) << "cell " << i;
}

TEST(CrossValidationFull, ApsiRadb4AllContexts) {
  const auto w = make_workload("APSI");
  const Trace trace = w->trace(DataSet::kTrain, 48);
  const ir::Function& fn = w->function();
  for (std::size_t k = 0; k < 3; ++k) {  // covers all three shapes
    ir::Memory mem = bound(*w, trace.invocations[k]);
    auto ch = mem.array(*fn.find_var("ch"));
    native::radb4(
        static_cast<std::size_t>(mem.scalar(*fn.find_var("ido"))),
        static_cast<std::size_t>(mem.scalar(*fn.find_var("l1"))),
        mem.array(*fn.find_var("cc")), ch, mem.array(*fn.find_var("wa")));
    ir::Interpreter(fn).run(mem);
    const auto& ch_ir = mem.array(*fn.find_var("ch"));
    for (std::size_t i = 0; i < ch.size(); ++i)
      EXPECT_NEAR(ch_ir[i], ch[i], 1e-12) << "ctx " << k << " elem " << i;
  }
}

TEST(CrossValidationFull, WupwiseZgemmBothShapes) {
  const auto w = make_workload("WUPWISE");
  const Trace trace = w->trace(DataSet::kTrain, 49);
  const ir::Function& fn = w->function();
  for (std::size_t k = 0; k < 2; ++k) {
    ir::Memory mem = bound(*w, trace.invocations[k]);
    auto c = mem.array(*fn.find_var("c"));
    native::zgemm(
        static_cast<std::size_t>(mem.scalar(*fn.find_var("m"))),
        static_cast<std::size_t>(mem.scalar(*fn.find_var("n"))),
        static_cast<std::size_t>(mem.scalar(*fn.find_var("k"))),
        mem.array(*fn.find_var("a")), mem.array(*fn.find_var("b")), c);
    ir::Interpreter(fn).run(mem);
    const auto& c_ir = mem.array(*fn.find_var("c"));
    for (std::size_t i = 0; i < c.size(); ++i)
      EXPECT_NEAR(c_ir[i], c[i], 1e-9) << "shape " << k << " elem " << i;
  }
}

}  // namespace
}  // namespace peak::workloads
