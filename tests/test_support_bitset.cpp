#include <gtest/gtest.h>

#include "support/bitset.hpp"

namespace peak::support {
namespace {

TEST(DynBitset, SetTestReset) {
  DynBitset bits(130);
  EXPECT_EQ(bits.size(), 130u);
  EXPECT_TRUE(bits.none());
  bits.set(0);
  bits.set(64);
  bits.set(129);
  EXPECT_TRUE(bits.test(0));
  EXPECT_TRUE(bits.test(64));
  EXPECT_TRUE(bits.test(129));
  EXPECT_FALSE(bits.test(1));
  EXPECT_EQ(bits.count(), 3u);
  bits.reset(64);
  EXPECT_FALSE(bits.test(64));
  EXPECT_EQ(bits.count(), 2u);
}

TEST(DynBitset, SetAllRespectsSize) {
  DynBitset bits(70, true);
  EXPECT_EQ(bits.count(), 70u);
  bits.reset_all();
  EXPECT_TRUE(bits.none());
  bits.set_all();
  EXPECT_EQ(bits.count(), 70u);
}

TEST(DynBitset, UnionIntersectSubtract) {
  DynBitset a(100), b(100);
  a.set(1);
  a.set(50);
  b.set(50);
  b.set(99);

  DynBitset u = a | b;
  EXPECT_TRUE(u.test(1) && u.test(50) && u.test(99));
  EXPECT_EQ(u.count(), 3u);

  DynBitset i = a & b;
  EXPECT_EQ(i.count(), 1u);
  EXPECT_TRUE(i.test(50));

  DynBitset d = a - b;
  EXPECT_EQ(d.count(), 1u);
  EXPECT_TRUE(d.test(1));
}

TEST(DynBitset, InPlaceOpsReportChange) {
  DynBitset a(10), b(10);
  b.set(3);
  EXPECT_TRUE(a.union_with(b));
  EXPECT_FALSE(a.union_with(b));  // already contained
  DynBitset c(10);
  c.set(3);
  EXPECT_FALSE(a.intersect_with(c));
  DynBitset empty(10);
  EXPECT_TRUE(a.intersect_with(empty));
  EXPECT_TRUE(a.none());
}

TEST(DynBitset, ForEachSetInOrder) {
  DynBitset bits(200);
  bits.set(5);
  bits.set(63);
  bits.set(64);
  bits.set(199);
  const std::vector<std::size_t> got = bits.to_indices();
  const std::vector<std::size_t> want = {5, 63, 64, 199};
  EXPECT_EQ(got, want);
}

TEST(DynBitset, Equality) {
  DynBitset a(65), b(65);
  EXPECT_EQ(a, b);
  a.set(64);
  EXPECT_FALSE(a == b);
  b.set(64);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace peak::support
