#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/profile.hpp"
#include "core/remote_eval.hpp"
#include "core/tuning_driver.hpp"
#include "dist/coordinator.hpp"
#include "dist/protocol.hpp"
#include "dist/worker_agent.hpp"
#include "fault/injector.hpp"
#include "proc/protocol.hpp"
#include "support/check.hpp"
#include "support/shutdown.hpp"
#include "support/tcp.hpp"
#include "workloads/workload.hpp"

namespace peak::dist {
namespace {

/// Acceptance tests of distributed tuning: a coordinator fanning rounds
/// out over real TCP worker agents (in-process threads, loopback
/// sockets) must produce a TuningOutcome and journal bit-identical to
/// `--search-threads N` — including when a worker dies mid-run, when the
/// run is interrupted and resumed, and when every worker keeps crashing
/// on the same task.
class DistTuningTest : public ::testing::Test {
protected:
  DistTuningTest()
      : machine_(sim::sparc2()), effects_(search::gcc33_o3_space()) {}

  void SetUp() override { support::reset_shutdown(); }
  void TearDown() override { support::reset_shutdown(); }

  struct Setup {
    std::unique_ptr<workloads::Workload> workload;
    workloads::Trace train;
    core::ProfileData profile;
  };

  Setup setup(const std::string& name) {
    Setup s;
    s.workload = workloads::make_workload(name);
    s.train = s.workload->trace(workloads::DataSet::kTrain, 42);
    s.profile = core::profile_workload(*s.workload, s.train, machine_);
    return s;
  }

  core::TuningOutcome tune(const Setup& s,
                           const core::DriverOptions& options,
                           rating::Method method) {
    core::TuningDriver driver(*s.workload, s.profile, s.train, machine_,
                              effects_, options);
    return driver.tune(method);
  }

  static core::SessionSpec spec_for(const std::string& benchmark,
                                    const core::DriverOptions& options) {
    return core::make_session_spec(benchmark, "sparc2", options);
  }

  /// A loopback fleet of in-process worker agents dialing the
  /// coordinator; joins them all on destruction.
  struct Fleet {
    std::vector<std::thread> threads;
    std::vector<int> statuses;

    // Threads write statuses[index] concurrently with later add()s;
    // pre-reserving keeps push_back from relocating live slots.
    Fleet() { statuses.reserve(16); }

    void add(std::uint16_t port, WorkerOptions options) {
      const std::size_t index = statuses.size();
      statuses.push_back(-1);
      options.connect_host = "127.0.0.1";
      options.connect_port = port;
      threads.emplace_back([this, index, options] {
        WorkerAgent agent(options);
        statuses[index] = agent.run();
      });
    }

    void join() {
      for (std::thread& t : threads)
        if (t.joinable()) t.join();
    }

    ~Fleet() { join(); }
  };

  /// Coordinator listening on an ephemeral loopback port with `workers`
  /// agents connected and ready.
  std::unique_ptr<Coordinator> form_fleet(const core::SessionSpec& spec,
                                          Fleet& fleet, std::size_t workers,
                                          std::uint64_t max_tasks_first = 0) {
    DistPolicy policy;
    policy.min_workers = workers;
    policy.update_worker_table = false;
    auto coordinator = std::make_unique<Coordinator>(spec, policy);
    std::string error;
    if (!coordinator->listen(0, /*loopback_only=*/true, &error)) {
      ADD_FAILURE() << error;
      return nullptr;
    }
    for (std::size_t i = 0; i < workers; ++i) {
      WorkerOptions wo;
      wo.name = "w" + std::to_string(i);
      if (i == 0) wo.max_tasks = max_tasks_first;
      fleet.add(coordinator->port(), wo);
    }
    if (!coordinator->wait_for_fleet(&error)) {
      ADD_FAILURE() << error;
      return nullptr;
    }
    return coordinator;
  }

  static std::string temp_path(const std::string& name) {
    const std::string path = ::testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
  }

  static std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  }

  sim::MachineModel machine_;
  sim::FlagEffectModel effects_;
};

TEST_F(DistTuningTest, OutcomeAndJournalBitIdenticalToThreaded) {
  Setup s = setup("SWIM");
  core::DriverOptions threaded;
  threaded.search_threads = 2;
  threaded.fault.journal_path = temp_path("peak_dist_journal_t2.jsonl");
  const core::TuningOutcome baseline =
      tune(s, threaded, rating::Method::kCBR);

  core::DriverOptions distributed;
  distributed.search_threads = 2;
  distributed.fault.journal_path = temp_path("peak_dist_journal_d2.jsonl");
  Fleet fleet;
  auto coordinator =
      form_fleet(spec_for("SWIM", distributed), fleet, 2);
  ASSERT_NE(coordinator, nullptr);
  distributed.coordinator = coordinator.get();
  EXPECT_EQ(tune(s, distributed, rating::Method::kCBR), baseline);

  const std::string a = slurp(threaded.fault.journal_path);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, slurp(distributed.fault.journal_path));
  EXPECT_GE(coordinator->stats().tasks_dispatched, 1u);
  EXPECT_EQ(coordinator->stats().tasks_failed, 0u);

  // Graceful shutdown: every agent gets a bye frame and exits 0.
  coordinator->shutdown();
  fleet.join();
  for (int status : fleet.statuses) EXPECT_EQ(status, 0);
}

TEST_F(DistTuningTest, DistMatchesThreadedForRbrToo) {
  Setup s = setup("ART");
  core::DriverOptions threaded;
  threaded.search_threads = 3;
  const core::TuningOutcome baseline =
      tune(s, threaded, rating::Method::kRBR);

  core::DriverOptions distributed;
  distributed.search_threads = 3;
  Fleet fleet;
  auto coordinator =
      form_fleet(spec_for("ART", distributed), fleet, 3);
  ASSERT_NE(coordinator, nullptr);
  distributed.coordinator = coordinator.get();
  EXPECT_EQ(tune(s, distributed, rating::Method::kRBR), baseline);
  coordinator->shutdown();
}

TEST_F(DistTuningTest, WorkerDyingMidRunStaysBitIdentical) {
  Setup s = setup("SWIM");
  core::DriverOptions threaded;
  threaded.search_threads = 2;
  const core::TuningOutcome baseline =
      tune(s, threaded, rating::Method::kRBR);

  // Worker 0 drops its socket abruptly (no bye) after three completed
  // tasks — a real mid-round death. Its queued and in-flight tasks must
  // requeue onto the survivor and the outcome must not change.
  core::DriverOptions distributed;
  distributed.search_threads = 2;
  Fleet fleet;
  auto coordinator = form_fleet(spec_for("SWIM", distributed), fleet, 2,
                                /*max_tasks_first=*/3);
  ASSERT_NE(coordinator, nullptr);
  distributed.coordinator = coordinator.get();
  EXPECT_EQ(tune(s, distributed, rating::Method::kRBR), baseline);
  EXPECT_GE(coordinator->stats().workers_lost, 1u);
  EXPECT_GE(coordinator->stats().tasks_requeued, 1u);
  EXPECT_EQ(coordinator->stats().tasks_failed, 0u);
  coordinator->shutdown();
  fleet.join();
  // The abrupt death is the hook doing its job, not an agent error.
  for (int status : fleet.statuses) EXPECT_EQ(status, 0);
}

TEST_F(DistTuningTest, DeterministicCrasherFailsAfterMaxAttempts) {
  // Three fake workers in sequence, each accepting the session and then
  // dropping dead on its first task: the task burns one attempt per
  // corpse and comes back permanently failed after max_task_attempts,
  // with one recorded failure per attempt.
  core::DriverOptions options;
  const core::SessionSpec spec = spec_for("SWIM", options);
  DistPolicy policy;
  policy.min_workers = 1;
  policy.max_task_attempts = 3;
  policy.update_worker_table = false;
  policy.connect_timeout = std::chrono::milliseconds(5'000);
  Coordinator coordinator(spec, policy);
  std::string error;
  ASSERT_TRUE(coordinator.listen(0, /*loopback_only=*/true, &error))
      << error;

  // Fake workers speak just enough protocol: hello, ready on session,
  // then close the socket the moment a task arrives.
  std::thread corpses([port = coordinator.port()] {
    for (int i = 0; i < 3; ++i) {
      std::string err;
      const int fd = support::tcp_connect("127.0.0.1", port, 2000, &err);
      if (fd < 0) return;
      proc::write_frame(fd, hello_frame("corpse"));
      proc::FrameReader reader;
      bool dead = false;
      while (!dead) {
        char buf[4096];
        const ssize_t got = ::read(fd, buf, sizeof buf);
        if (got <= 0) break;
        reader.feed(buf, static_cast<std::size_t>(got));
        while (auto frame = reader.next()) {
          const auto record = parse_frame(*frame);
          if (frame_op(record) == "session") {
            proc::write_frame(fd, ready_frame());
          } else if (frame_op(record) == "task") {
            dead = true;  // keel over instead of answering
            break;
          }
        }
      }
      ::close(fd);
    }
  });

  ASSERT_TRUE(coordinator.wait_for_fleet(&error)) << error;
  core::RemoteMemberTask task;
  task.base_key = search::o3_config(search::gcc33_o3_space()).key();
  task.cfg_key = task.base_key;
  task.prologue = true;
  const std::vector<proc::TaskOutcome> outcomes =
      coordinator.run_round({task});
  corpses.join();

  ASSERT_EQ(outcomes.size(), 1u);
  EXPECT_FALSE(outcomes[0].ok);
  EXPECT_EQ(outcomes[0].attempts, 3u);
  ASSERT_EQ(outcomes[0].failures.size(), 3u);
  for (const proc::WorkerFailure& f : outcomes[0].failures)
    EXPECT_EQ(f.signature, outcomes[0].failures[0].signature);
  EXPECT_EQ(coordinator.stats().tasks_failed, 1u);
  EXPECT_GE(coordinator.stats().workers_lost, 3u);
  coordinator.shutdown();
}

TEST_F(DistTuningTest, InterruptedDistributedTuneResumesBitIdentical) {
  // Kill-the-coordinator drill: a shutdown request surfaces between
  // rounds (rounds drain first), the journal stays resumable, and a
  // plain single-machine --resume lands on the bit-identical outcome.
  Setup s = setup("SWIM");
  core::DriverOptions plain;
  plain.search_threads = 2;
  const core::TuningOutcome baseline =
      tune(s, plain, rating::Method::kCBR);

  const std::string path = temp_path("peak_dist_resume.jsonl");
  core::DriverOptions interrupted;
  interrupted.search_threads = 2;
  interrupted.fault.journal_path = path;
  Fleet fleet;
  auto coordinator =
      form_fleet(spec_for("SWIM", interrupted), fleet, 2);
  ASSERT_NE(coordinator, nullptr);
  interrupted.coordinator = coordinator.get();
  support::request_shutdown();
  EXPECT_THROW(tune(s, interrupted, rating::Method::kCBR),
               support::ShutdownRequested);
  support::reset_shutdown();
  // The CLI calls shutdown() while unwinding; agents exit 0 via bye.
  coordinator->shutdown();
  fleet.join();
  for (int status : fleet.statuses) EXPECT_EQ(status, 0);

  core::DriverOptions resume;
  resume.search_threads = 2;
  resume.fault.journal_path = path;
  resume.fault.resume = true;
  EXPECT_EQ(tune(s, resume, rating::Method::kCBR), baseline);
  std::remove(path.c_str());
}

TEST_F(DistTuningTest, DistributedModeRefusesFaultInjector) {
  Setup s = setup("SWIM");
  fault::FaultInjector injector;
  core::DriverOptions options;
  options.search_threads = 1;
  options.fault.injector = &injector;
  // Any non-null coordinator trips the refusal before it is ever
  // touched, so a dangling-but-unused pointer is fine here.
  options.coordinator = reinterpret_cast<Coordinator*>(0x1);
  EXPECT_THROW(tune(s, options, rating::Method::kCBR),
               support::CheckError);
}

}  // namespace
}  // namespace peak::dist
