#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/profile.hpp"
#include "core/tuning_driver.hpp"
#include "obs/event_ring.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/prometheus.hpp"
#include "obs/progress.hpp"
#include "obs/telemetry_server.hpp"
#include "support/http_server.hpp"
#include "json_checker.hpp"
#include "workloads/workload.hpp"

namespace peak::obs {
namespace {

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

// --- Metric-name sanitization (satellite 1) ------------------------------

TEST(MetricNameSanitization, MapsHostileCharactersToUnderscore) {
  EXPECT_EQ(sanitize_metric_name("search.configs_evaluated"),
            "search.configs_evaluated");
  EXPECT_EQ(sanitize_metric_name("evil name{with}\"quotes\"\n"),
            "evil_name_with__quotes__");
  EXPECT_EQ(sanitize_metric_name(""), "_");
  EXPECT_EQ(sanitize_metric_name("a/b:c-d"), "a_b_c_d");
}

TEST(MetricNameSanitization, HostileRegistrationsExportCleanly) {
  const std::string hostile = "tele test.evil{label=\"x\"}\nname";
  Counter& c = counter(hostile);
  c.inc(3);
  // Looking the instrument up by the unsanitized spelling finds the same
  // counter (both pass through sanitize_metric_name).
  EXPECT_EQ(&counter(hostile), &c);
  EXPECT_EQ(&counter(sanitize_metric_name(hostile)), &c);

  const MetricsRegistry::Snapshot snap =
      MetricsRegistry::global().snapshot();
  const std::string sanitized = sanitize_metric_name(hostile);
  ASSERT_TRUE(snap.counters.count(sanitized));
  EXPECT_EQ(snap.counters.count(hostile), 0u);

  // The Prometheus name derived from it is a valid metric name.
  const std::string prom = prometheus_name(sanitized, "_total");
  for (char ch : prom)
    EXPECT_TRUE((ch >= 'a' && ch <= 'z') || (ch >= 'A' && ch <= 'Z') ||
                (ch >= '0' && ch <= '9') || ch == '_')
        << "bad char in " << prom;
}

// --- Prometheus exposition (tentpole surface) ----------------------------

TEST(Prometheus, NameMappingAndLabelEscape) {
  EXPECT_EQ(prometheus_name("search.configs_evaluated", "_total"),
            "peak_search_configs_evaluated_total");
  EXPECT_EQ(prometheus_name("telemetry.scrape_us"),
            "peak_telemetry_scrape_us");
  EXPECT_EQ(prometheus_label_escape("a\\b\"c\nd"), "a\\\\b\\\"c\\nd");
}

TEST(Prometheus, ExpositionCoversAllInstrumentKinds) {
  MetricsRegistry::Snapshot metrics;
  metrics.counters["search.configs_evaluated"] = 42;
  metrics.gauges["sim.cycles_timed"] = 1.5e6;
  HistogramSnapshot h;
  h.bounds = {10.0, 100.0};
  h.counts = {3, 2, 1};  // last = overflow
  h.count = 6;
  h.sum = 450.0;
  metrics.histograms["telemetry.scrape_us"] = h;

  Ledger ledger;
  ledger.charge({"sparc2", "SWIM", "calc1", "CBR", "timed"}, 1000.0, 10.0);

  const std::string text = prometheus_text(metrics, ledger.snapshot());

  // Counter: TYPE line + _total suffix.
  EXPECT_NE(text.find("# TYPE peak_search_configs_evaluated_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("peak_search_configs_evaluated_total 42"),
            std::string::npos);
  // Gauge.
  EXPECT_NE(text.find("# TYPE peak_sim_cycles_timed gauge"),
            std::string::npos);
  // Histogram: cumulative buckets closed by +Inf, plus _sum and _count.
  EXPECT_NE(text.find("# TYPE peak_telemetry_scrape_us histogram"),
            std::string::npos);
  EXPECT_NE(text.find("peak_telemetry_scrape_us_bucket{le=\"10\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("peak_telemetry_scrape_us_bucket{le=\"100\"} 5"),
            std::string::npos);
  EXPECT_NE(text.find("peak_telemetry_scrape_us_bucket{le=\"+Inf\"} 6"),
            std::string::npos);
  EXPECT_NE(text.find("peak_telemetry_scrape_us_sum 450"),
            std::string::npos);
  EXPECT_NE(text.find("peak_telemetry_scrape_us_count 6"),
            std::string::npos);
  // Ledger flattening: labelled cost series for the leaf path.
  EXPECT_NE(
      text.find(
          "peak_cost_cycles{path=\"all;sparc2;SWIM;calc1;CBR;timed\"}"),
      std::string::npos);
  EXPECT_NE(text.find("peak_cost_self_cycles{path="), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

// --- EventRing (SSE buffer) ----------------------------------------------

TEST(EventRing, SequencesDenselyAndFetchesByRange) {
  EventRing ring(8);
  EXPECT_EQ(ring.head_seq(), 0u);
  for (int i = 1; i <= 5; ++i)
    EXPECT_EQ(ring.publish("note", "{\"n\":" + std::to_string(i) + "}"),
              static_cast<std::uint64_t>(i));
  EXPECT_EQ(ring.head_seq(), 5u);

  const EventRing::Fetch all = ring.fetch(1, 64);
  EXPECT_EQ(all.dropped, 0u);
  ASSERT_EQ(all.entries.size(), 5u);
  EXPECT_EQ(all.entries.front().seq, 1u);
  EXPECT_EQ(all.entries.back().seq, 5u);
  EXPECT_EQ(all.next_seq, 6u);

  const EventRing::Fetch tail = ring.fetch(4, 64);
  ASSERT_EQ(tail.entries.size(), 2u);
  EXPECT_EQ(tail.entries.front().seq, 4u);

  const EventRing::Fetch capped = ring.fetch(1, 2);
  ASSERT_EQ(capped.entries.size(), 2u);
  EXPECT_EQ(capped.next_seq, 3u);

  const EventRing::Fetch beyond = ring.fetch(99, 64);
  EXPECT_TRUE(beyond.entries.empty());
  EXPECT_EQ(beyond.dropped, 0u);
  EXPECT_EQ(beyond.next_seq, 99u);
}

TEST(EventRing, OverflowEvictsOldestAndReportsTheGap) {
  EventRing ring(4);
  for (int i = 1; i <= 10; ++i) ring.publish("note", "{}");
  // Retained: seqs 7..10. A reader starting at 1 lost exactly 6.
  const EventRing::Fetch fetch = ring.fetch(1, 64);
  EXPECT_EQ(fetch.dropped, 6u);
  ASSERT_EQ(fetch.entries.size(), 4u);
  EXPECT_EQ(fetch.entries.front().seq, 7u);
  EXPECT_EQ(fetch.next_seq, 11u);
  // A reader already past the eviction horizon sees no gap.
  EXPECT_EQ(ring.fetch(8, 64).dropped, 0u);
}

TEST(EventRing, WaitWakesOnPublishAndOnWakeAll) {
  EventRing ring(8);
  // Timeout path: nothing published.
  EXPECT_FALSE(ring.wait(1, std::chrono::milliseconds(10)));

  std::thread publisher([&ring] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ring.publish("note", "{}");
  });
  EXPECT_TRUE(ring.wait(1, std::chrono::seconds(5)));
  publisher.join();

  std::thread waker([&ring] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    ring.wake_all();
  });
  // wake_all unblocks the waiter even though seq 2 never arrives.
  ring.wait(2, std::chrono::seconds(5));
  waker.join();

  ring.clear();
  EXPECT_EQ(ring.head_seq(), 0u);
  EXPECT_EQ(ring.fetch(1, 64).dropped, 0u);
}

// --- ProgressModel JSON round trips --------------------------------------

ProgressModel sample_model() {
  ProgressModel m;
  m.configs_evaluated = 111;
  m.ratings_started = 40;
  m.ratings_converged = 38;
  m.invocations = 5200;
  m.total_cycles = 1.25e9;
  m.phases = {{"profile", 2.0e8}, {"timed", 9.5e8}};
  m.sections = {{"sparc2/SWIM/calc1", 7.0e8}, {"sparc2/SWIM/calc2", 3.0e8}};
  m.workers.spawned = 4;
  m.workers.respawned = 1;
  m.workers.killed = 1;
  m.workers.heartbeat_gaps = 2;
  return m;
}

TEST(ProgressJson, ModelRoundTripsThroughJson) {
  const ProgressModel model = sample_model();
  const std::string json = progress_json(model);
  EXPECT_TRUE(testutil::JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"workers\""), std::string::npos);
  const ProgressModel back = progress_model_from_json(json);
  EXPECT_EQ(back, model);
  // The remote monitor renders the identical frame from the rebuilt model.
  EXPECT_EQ(render_progress_frame(back), render_progress_frame(model));
}

TEST(ProgressJson, WorkersMemberOmittedWhenNothingForked) {
  // Pre-isolation consumers parse the document byte-compatibly: a run
  // that never forked a worker emits no "workers" member at all, and the
  // tolerant parser leaves the zero-initialized struct alone.
  ProgressModel model = sample_model();
  model.workers = {};
  const std::string json = progress_json(model);
  EXPECT_EQ(json.find("\"workers\""), std::string::npos) << json;
  EXPECT_EQ(progress_model_from_json(json), model);
}

TEST(ProgressJson, AtomicWriterLeavesOneCompleteDocument) {
  const ProgressModel model = sample_model();
  const std::string path = temp_path("peak_progress_roundtrip.json");
  ASSERT_TRUE(write_progress_json_atomic(model, path));
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_TRUE(testutil::JsonChecker(text).valid()) << text;
  EXPECT_EQ(progress_model_from_json(text), model);
  std::remove(path.c_str());
}

TEST(ProgressJson, ModelDerivesFromMetricsAndLedger) {
  MetricsRegistry::Snapshot metrics;
  metrics.counters["search.configs_evaluated"] = 7;
  metrics.counters["rating.started"] = 3;
  metrics.counters["rating.converged"] = 2;
  metrics.counters["rating.invocations"] = 640;

  Ledger ledger;
  ledger.charge({"sparc2", "SWIM", "calc1", "CBR", "timed"}, 5000.0);
  ledger.charge({"sparc2", "SWIM", "calc1", "CBR", "profile"}, 1000.0);

  const ProgressModel m =
      build_progress_model(metrics, ledger.snapshot());
  EXPECT_EQ(m.configs_evaluated, 7u);
  EXPECT_EQ(m.ratings_started, 3u);
  EXPECT_EQ(m.ratings_converged, 2u);
  EXPECT_EQ(m.invocations, 640u);
  EXPECT_DOUBLE_EQ(m.total_cycles, 6000.0);
  ASSERT_EQ(m.sections.size(), 1u);
  EXPECT_EQ(m.sections[0].label, "sparc2/SWIM/calc1");
  EXPECT_DOUBLE_EQ(m.sections[0].cycles, 6000.0);
  bool saw_timed = false;
  for (const ProgressModel::Phase& p : m.phases)
    if (p.name == "timed") {
      saw_timed = true;
      EXPECT_DOUBLE_EQ(p.cycles, 5000.0);
    }
  EXPECT_TRUE(saw_timed);
}

// --- /snapshot document round trip ---------------------------------------

TEST(SnapshotJson, RoundTripsPhaseUptimeAndProgress) {
  MetricsRegistry::Snapshot metrics;
  metrics.counters["search.configs_evaluated"] = 9;
  Ledger ledger;
  ledger.charge({"sparc2", "SWIM", "calc1", "CBR", "timed"}, 123.0);
  const Ledger::Node costs = ledger.snapshot();

  const std::string json =
      telemetry_snapshot_json(metrics, costs, "tuning", 123456, 17);
  EXPECT_TRUE(testutil::JsonChecker(json).valid()) << json;

  const RemoteSnapshot snap = parse_snapshot_json(json);
  EXPECT_EQ(snap.run_phase, "tuning");
  EXPECT_EQ(snap.uptime_us, 123456u);
  EXPECT_EQ(snap.events_head_seq, 17u);
  EXPECT_EQ(snap.progress, build_progress_model(metrics, costs));
}

// --- TelemetryServer endpoint integration --------------------------------

class TelemetryServerTest : public ::testing::Test {
protected:
  support::HttpClientResult get(const std::string& path) {
    return support::http_get("127.0.0.1", server_->port(), path);
  }

  void start(TelemetryServer::Options options) {
    server_ = std::make_unique<TelemetryServer>(std::move(options));
    std::string error;
    ASSERT_TRUE(server_->start(&error)) << error;
  }

  std::unique_ptr<TelemetryServer> server_;
};

TEST_F(TelemetryServerTest, ServesAllEndpointsAndThePortFile) {
  const std::string port_file = temp_path("peak_test.port");
  TelemetryServer::Options options;
  options.port_file = port_file;
  options.quarantine_json = [] {
    return std::string("{\"size\":0,\"entries\":[]}");
  };
  start(std::move(options));
  ASSERT_NE(server_->port(), 0);
  server_->set_run_phase("tuning");

  // Port-file rendezvous: one decimal line with the bound port.
  {
    std::ifstream in(port_file);
    ASSERT_TRUE(in.good());
    std::uint32_t port = 0;
    in >> port;
    EXPECT_EQ(port, server_->port());
  }

  const support::HttpClientResult health = get("/healthz");
  ASSERT_TRUE(health.ok) << health.error;
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("\"status\":\"ok\""), std::string::npos);
  EXPECT_NE(health.body.find("\"run_phase\":\"tuning\""),
            std::string::npos);

  const support::HttpClientResult metrics = get("/metrics");
  ASSERT_TRUE(metrics.ok) << metrics.error;
  EXPECT_EQ(metrics.status, 200);
  EXPECT_EQ(metrics.headers.at("content-type"),
            "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(metrics.body.find("peak_telemetry_requests_total"),
            std::string::npos);

  const support::HttpClientResult snapshot = get("/snapshot");
  ASSERT_TRUE(snapshot.ok) << snapshot.error;
  EXPECT_EQ(snapshot.status, 200);
  EXPECT_EQ(snapshot.headers.at("content-type"), "application/json");
  EXPECT_TRUE(testutil::JsonChecker(snapshot.body).valid());
  EXPECT_EQ(parse_snapshot_json(snapshot.body).run_phase, "tuning");

  const support::HttpClientResult quarantine = get("/quarantine");
  ASSERT_TRUE(quarantine.ok) << quarantine.error;
  EXPECT_EQ(quarantine.status, 200);
  EXPECT_EQ(quarantine.body, "{\"size\":0,\"entries\":[]}");

  // No cache provider wired: that endpoint (and unknown paths) 404.
  EXPECT_EQ(get("/cache/stats").status, 404);
  EXPECT_EQ(get("/nope").status, 404);

  server_->stop();
  server_->stop();  // idempotent
  EXPECT_FALSE(server_->running());
  EXPECT_FALSE(std::ifstream(port_file).good())
      << "port file must be removed on stop";
}

TEST_F(TelemetryServerTest, EventsStreamTailsTheRingLive) {
  EventRing::global().clear();
  start({});
  publish_run_event("alpha", "{\"n\":1}");

  std::string collected;
  bool published_beta = false;
  std::string error;
  const bool ok = support::http_stream(
      "127.0.0.1", server_->port(), "/events?from=1",
      [&](std::string_view chunk) {
        collected.append(chunk);
        if (!published_beta &&
            collected.find("event: alpha") != std::string::npos) {
          published_beta = true;
          publish_run_event("beta", "{\"n\":2}");
        }
        return collected.find("event: beta") == std::string::npos;
      },
      &error);
  EXPECT_TRUE(ok) << error;
  // Opening comment, then both events framed with id/event/data.
  EXPECT_NE(collected.find(": peak telemetry event stream"),
            std::string::npos);
  EXPECT_NE(collected.find("id: 1\nevent: alpha\ndata: {\"n\":1}\n\n"),
            std::string::npos);
  EXPECT_NE(collected.find("id: 2\nevent: beta\ndata: {\"n\":2}\n\n"),
            std::string::npos);
  server_->stop();
}

TEST_F(TelemetryServerTest, LaggedConsumerGetsAGapMarkerNotSilence) {
  EventRing& ring = EventRing::global();
  ring.clear();
  // Overflow the ring before anyone connects: a consumer asking for
  // seq 1 lost exactly (published - capacity) events.
  const std::size_t published = ring.capacity() + 5;
  for (std::size_t i = 0; i < published; ++i)
    publish_run_event("note", "{}");
  start({});

  std::string collected;
  std::string error;
  const bool ok = support::http_stream(
      "127.0.0.1", server_->port(), "/events?from=1",
      [&](std::string_view chunk) {
        collected.append(chunk);
        return collected.find("event: gap") == std::string::npos;
      },
      &error);
  EXPECT_TRUE(ok) << error;
  EXPECT_NE(collected.find("event: gap\ndata: {\"dropped\":5}\n\n"),
            std::string::npos);
  server_->stop();
  ring.clear();
}

TEST_F(TelemetryServerTest, WorkersEndpointServesTheProviderDocument) {
  TelemetryServer::Options options;
  options.workers_json = [] {
    return std::string("{\"workers\":[{\"slot\":0,\"state\":\"idle\"}]}");
  };
  start(std::move(options));
  const support::HttpClientResult workers = get("/workers");
  ASSERT_TRUE(workers.ok) << workers.error;
  EXPECT_EQ(workers.status, 200);
  EXPECT_EQ(workers.headers.at("content-type"), "application/json");
  EXPECT_NE(workers.body.find("\"slot\":0"), std::string::npos);
  server_->stop();

  // Without a provider the endpoint is absent, like /cache/stats.
  start({});
  EXPECT_EQ(get("/workers").status, 404);
  server_->stop();
}

TEST_F(TelemetryServerTest, ClientsDisconnectingMidStreamDoNotWedgeIt) {
  // Satellite: an /events consumer that drops its connection mid-stream
  // (crashed dashboard, ^C'd curl) must cost the server nothing. Hammer
  // the failure mode: 100 connects that each abort after the first
  // chunk, with events still being published — then the server must
  // still answer like nothing happened.
  EventRing::global().clear();
  start({});
  publish_run_event("alpha", "{\"n\":1}");

  for (int i = 0; i < 100; ++i) {
    std::string error;
    // Returning false from the sink closes the socket immediately while
    // the server-side streamer is still live and mid-write.
    (void)support::http_stream(
        "127.0.0.1", server_->port(), "/events?from=1",
        [](std::string_view) { return false; }, &error);
    if (i % 10 == 0) publish_run_event("tick", "{}");
  }

  const support::HttpClientResult health = get("/healthz");
  ASSERT_TRUE(health.ok) << health.error;
  EXPECT_EQ(health.status, 200);
  // A fresh consumer still gets a working stream.
  std::string collected;
  std::string error;
  const bool ok = support::http_stream(
      "127.0.0.1", server_->port(), "/events?from=1",
      [&](std::string_view chunk) {
        collected.append(chunk);
        return collected.find("event: alpha") == std::string::npos;
      },
      &error);
  EXPECT_TRUE(ok) << error;
  EXPECT_NE(collected.find("event: alpha"), std::string::npos);
  server_->stop();
  EventRing::global().clear();
}

// --- Determinism under scrape load (tentpole acceptance) ------------------

TEST(TelemetryDeterminism, ScrapeHammerDoesNotPerturbTuning) {
  const sim::MachineModel machine = sim::sparc2();
  const sim::FlagEffectModel effects(search::gcc33_o3_space());
  const auto workload = workloads::make_workload("SWIM");
  const workloads::Trace train =
      workload->trace(workloads::DataSet::kTrain, 42);
  const core::ProfileData profile =
      core::profile_workload(*workload, train, machine);

  // Unobserved baseline.
  core::TuningDriver plain(*workload, profile, train, machine, effects,
                           {});
  const core::TuningOutcome baseline = plain.tune(rating::Method::kCBR);

  // Same tune with the telemetry server up and four clients hammering
  // every endpoint for the whole run.
  TelemetryServer server({});
  std::string error;
  ASSERT_TRUE(server.start(&error)) << error;
  std::atomic<bool> done{false};
  std::atomic<int> scrapes{0};
  const char* paths[] = {"/metrics", "/snapshot", "/healthz",
                         "/metrics"};
  // Keep hammering past `done` until every path was scraped a few times:
  // a simulated tune finishes in tens of milliseconds, so without the
  // floor a fast run could end before the first scrape lands.
  std::vector<std::thread> hammers;
  for (const char* path : paths)
    hammers.emplace_back([&server, &done, &scrapes, path] {
      int mine = 0;
      while (!done.load() || mine < 3) {
        const support::HttpClientResult r =
            support::http_get("127.0.0.1", server.port(), path);
        if (r.ok && r.status == 200) {
          ++scrapes;
          ++mine;
        }
      }
    });

  // Several observed tunes widen the window the scrapers overlap with.
  for (int run = 0; run < 3; ++run) {
    core::TuningDriver observed(*workload, profile, train, machine,
                                effects, {});
    // The whole point: observation is free of observable effect.
    EXPECT_EQ(observed.tune(rating::Method::kCBR), baseline) << run;
  }

  done = true;
  for (std::thread& h : hammers) h.join();
  server.stop();
  EXPECT_GE(scrapes.load(), 12);
}

// --- Exposition dump for the ctest Prometheus lint fixture ---------------

/// Writes TELEMETRY_metrics.txt (cwd) from a real post-tune registry +
/// ledger. The top-level CMakeLists runs exactly this test in the build
/// directory as a fixture, then lints the file with
/// tools/check_prometheus.py.
TEST(TelemetryDump, WritesMetricsExposition) {
  const sim::MachineModel machine = sim::sparc2();
  const sim::FlagEffectModel effects(search::gcc33_o3_space());
  const auto workload = workloads::make_workload("SWIM");
  const workloads::Trace train =
      workload->trace(workloads::DataSet::kTrain, 42);
  const core::ProfileData profile =
      core::profile_workload(*workload, train, machine);
  core::TuningDriver driver(*workload, profile, train, machine, effects,
                            {});
  driver.tune(rating::Method::kCBR);
  // Make sure telemetry's own instruments appear in the dump too.
  counter("telemetry.requests").inc();
  histogram("telemetry.scrape_us", {100.0, 1000.0}).observe(42.0);

  const std::string text =
      prometheus_text(MetricsRegistry::global().snapshot(),
                      Ledger::global().snapshot());
  ASSERT_FALSE(text.empty());
  std::ofstream out("TELEMETRY_metrics.txt", std::ios::trunc);
  out << text;
  ASSERT_TRUE(out.good());
}

}  // namespace
}  // namespace peak::obs
