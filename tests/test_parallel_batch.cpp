#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/journal.hpp"
#include "core/profile.hpp"
#include "core/rating_cache.hpp"
#include "core/tuning_driver.hpp"
#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "search/combined_elimination.hpp"
#include "workloads/workload.hpp"

namespace peak::core {
namespace {

/// Acceptance tests of batched evaluation: for every search_threads
/// N >= 1 the TuningOutcome (winner, ratings, event stream), the journal
/// bytes, and crash-safe resume must be bit-identical to the N = 1 batch
/// path — with and without fault injection — and a warm persistent
/// rating cache must reproduce the outcome from disk.
class ParallelBatchTest : public ::testing::Test {
protected:
  ParallelBatchTest()
      : machine_(sim::sparc2()), effects_(search::gcc33_o3_space()) {}

  struct Setup {
    std::unique_ptr<workloads::Workload> workload;
    workloads::Trace train;
    ProfileData profile;
  };

  Setup setup(const std::string& name) {
    Setup s;
    s.workload = workloads::make_workload(name);
    s.train = s.workload->trace(workloads::DataSet::kTrain, 42);
    s.profile = profile_workload(*s.workload, s.train, machine_);
    return s;
  }

  TuningOutcome tune(const Setup& s, DriverOptions options,
                     rating::Method method) {
    TuningDriver driver(*s.workload, s.profile, s.train, machine_,
                        effects_, options);
    return driver.tune(method);
  }

  fault::FaultInjector sweep_injector(std::uint64_t seed) const {
    fault::FaultModel model;
    model.fault_prob = 0.05;
    model.seed = seed;
    fault::FaultInjector injector(model);
    injector.exempt(search::o3_config(effects_.space()));
    return injector;
  }

  static std::string temp_path(const std::string& name) {
    const std::string path = ::testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
  }

  static std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  }

  static std::uint64_t counter(const std::string& name) {
    const auto snap = obs::MetricsRegistry::global().snapshot();
    const auto it = snap.counters.find(name);
    return it == snap.counters.end() ? 0 : it->second;
  }

  sim::MachineModel machine_;
  sim::FlagEffectModel effects_;
};

TEST_F(ParallelBatchTest, OutcomeBitIdenticalAcrossThreadCountsTenSeeds) {
  Setup s = setup("SWIM");
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    DriverOptions serial;
    serial.seed = seed;
    serial.search_threads = 1;
    const TuningOutcome one = tune(s, serial, rating::Method::kCBR);

    DriverOptions parallel = serial;
    parallel.search_threads = 4;
    EXPECT_EQ(tune(s, parallel, rating::Method::kCBR), one);
  }
}

TEST_F(ParallelBatchTest, OutcomeBitIdenticalForRbrAndOddThreadCounts) {
  Setup s = setup("ART");
  DriverOptions serial;
  serial.search_threads = 1;
  const TuningOutcome one = tune(s, serial, rating::Method::kRBR);
  for (unsigned threads : {2u, 3u, 7u}) {
    SCOPED_TRACE("threads " + std::to_string(threads));
    DriverOptions parallel = serial;
    parallel.search_threads = threads;
    EXPECT_EQ(tune(s, parallel, rating::Method::kRBR), one);
  }
}

TEST_F(ParallelBatchTest, OutcomeBitIdenticalUnderFaultInjection) {
  Setup s = setup("SWIM");
  for (std::uint64_t seed : {0xfaUL, 0xfbUL, 0xfcUL}) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    const fault::FaultInjector injector = sweep_injector(seed);
    DriverOptions serial;
    serial.search_threads = 1;
    serial.fault.injector = &injector;

    TuningDriver one_driver(*s.workload, s.profile, s.train, machine_,
                            effects_, serial);
    const TuningOutcome one = one_driver.tune(rating::Method::kCBR);

    DriverOptions parallel = serial;
    parallel.search_threads = 4;
    TuningDriver four_driver(*s.workload, s.profile, s.train, machine_,
                             effects_, parallel);
    EXPECT_EQ(four_driver.tune(rating::Method::kCBR), one);

    const auto& a = one_driver.quarantine().entries();
    const auto& b = four_driver.quarantine().entries();
    ASSERT_EQ(b.size(), a.size());
    for (const auto& [key, entry] : a) {
      const auto it = b.find(key);
      ASSERT_NE(it, b.end()) << key;
      EXPECT_EQ(it->second.kind, entry.kind) << key;
      EXPECT_EQ(it->second.failures, entry.failures) << key;
      EXPECT_EQ(it->second.quarantined, entry.quarantined) << key;
    }
  }
}

TEST_F(ParallelBatchTest, CombinedEliminationIdenticalAcrossThreadCounts) {
  Setup s = setup("SWIM");
  DriverOptions serial;
  serial.search_threads = 1;
  serial.search_algorithm = std::make_shared<search::CombinedElimination>();
  const TuningOutcome one = tune(s, serial, rating::Method::kCBR);

  DriverOptions parallel = serial;
  parallel.search_threads = 4;
  EXPECT_EQ(tune(s, parallel, rating::Method::kCBR), one);
}

TEST_F(ParallelBatchTest, JournalBytesIdenticalAcrossThreadCounts) {
  Setup s = setup("SWIM");
  DriverOptions serial;
  serial.search_threads = 1;
  serial.fault.journal_path = temp_path("peak_batch_journal_t1.jsonl");
  const TuningOutcome one = tune(s, serial, rating::Method::kCBR);

  DriverOptions parallel;
  parallel.search_threads = 4;
  parallel.fault.journal_path = temp_path("peak_batch_journal_t4.jsonl");
  EXPECT_EQ(tune(s, parallel, rating::Method::kCBR), one);

  const std::string a = slurp(serial.fault.journal_path);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, slurp(parallel.fault.journal_path));
}

TEST_F(ParallelBatchTest, ResumeTruncatedJournalAcrossThreadCounts) {
  // A run journaled at 4 threads, killed partway, must resume to the
  // bit-identical outcome at 1 thread (and vice versa): the journal is a
  // canonical-order record, not a schedule.
  Setup s = setup("SWIM");
  const std::string path = temp_path("peak_batch_journal_cut_src.jsonl");
  DriverOptions options;
  options.search_threads = 4;
  options.fault.journal_path = path;
  const TuningOutcome original = tune(s, options, rating::Method::kCBR);

  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GT(lines.size(), 4u);
  const std::string cut = temp_path("peak_batch_journal_cut.jsonl");
  {
    std::ofstream out(cut);
    for (std::size_t i = 0; i < 1 + (lines.size() - 1) / 2; ++i)
      out << lines[i] << '\n';
    out << R"({"type":"eval","base":"dead)";  // partial trailing line
  }

  for (unsigned resume_threads : {1u, 4u}) {
    SCOPED_TRACE("resume threads " + std::to_string(resume_threads));
    const std::string copy = temp_path(
        "peak_batch_journal_resume_" + std::to_string(resume_threads) +
        ".jsonl");
    {
      std::ofstream out(copy, std::ios::binary);
      out << slurp(cut);
    }
    DriverOptions resume_options;
    resume_options.search_threads = resume_threads;
    resume_options.fault.journal_path = copy;
    resume_options.fault.resume = true;
    EXPECT_EQ(tune(s, resume_options, rating::Method::kCBR), original);
  }
}

TEST_F(ParallelBatchTest, WarmCacheRerunIsBitIdenticalAndOver90PctHits) {
  Setup s = setup("SWIM");
  const std::string path = temp_path("peak_rating_cache.jsonl");

  RatingCache cold_cache(path);
  DriverOptions options;
  options.search_threads = 2;
  options.rating_cache = &cold_cache;
  const std::uint64_t stores_before = counter("search.cache.store");
  const TuningOutcome cold = tune(s, options, rating::Method::kCBR);
  EXPECT_GT(counter("search.cache.store"), stores_before);

  // Without a cache the outcome must be the same (the cache may never
  // perturb what is computed, only where it comes from).
  DriverOptions plain;
  plain.search_threads = 2;
  EXPECT_EQ(tune(s, plain, rating::Method::kCBR), cold);

  // Fresh cache object, same file: everything replays from disk.
  RatingCache warm_cache(path);
  EXPECT_EQ(warm_cache.size(), cold_cache.size());
  options.rating_cache = &warm_cache;
  const std::uint64_t hits_before = counter("search.cache.hit");
  const std::uint64_t misses_before = counter("search.cache.miss");
  EXPECT_EQ(tune(s, options, rating::Method::kCBR), cold);
  const std::uint64_t hits = counter("search.cache.hit") - hits_before;
  const std::uint64_t misses =
      counter("search.cache.miss") - misses_before;
  ASSERT_GT(hits, 0u);
  EXPECT_GT(static_cast<double>(hits) / static_cast<double>(hits + misses),
            0.9);
}

TEST_F(ParallelBatchTest, CacheKeySeparatesSeedsAndMethods) {
  Setup s = setup("SWIM");
  const std::string path = temp_path("peak_rating_cache_keys.jsonl");
  RatingCache cache(path);

  DriverOptions options;
  options.search_threads = 1;
  options.rating_cache = &cache;
  const TuningOutcome first = tune(s, options, rating::Method::kCBR);

  // A different run seed asks different questions: the warm cache must
  // not serve it the old answers.
  DriverOptions other = options;
  other.seed = 2;
  const std::uint64_t hits_before = counter("search.cache.hit");
  const TuningOutcome reseeded = tune(s, other, rating::Method::kCBR);
  EXPECT_EQ(counter("search.cache.hit"), hits_before);

  DriverOptions plain;
  plain.search_threads = 1;
  plain.seed = 2;
  EXPECT_EQ(tune(s, plain, rating::Method::kCBR), reseeded);
  (void)first;
}

TEST_F(ParallelBatchTest, CacheDisabledUnderFaultInjection) {
  Setup s = setup("SWIM");
  const fault::FaultInjector injector = sweep_injector(0xfau);
  const std::string path = temp_path("peak_rating_cache_faulty.jsonl");
  RatingCache cache(path);

  DriverOptions options;
  options.search_threads = 2;
  options.rating_cache = &cache;
  options.fault.injector = &injector;
  const std::uint64_t stores_before = counter("search.cache.store");
  const std::uint64_t lookups_before =
      counter("search.cache.hit") + counter("search.cache.miss");
  (void)tune(s, options, rating::Method::kCBR);
  EXPECT_EQ(counter("search.cache.store"), stores_before);
  EXPECT_EQ(counter("search.cache.hit") + counter("search.cache.miss"),
            lookups_before);
  EXPECT_EQ(cache.size(), 0u);
}

TEST_F(ParallelBatchTest, CacheFileSurvivesDamagedTrailingLine) {
  Setup s = setup("SWIM");
  const std::string path = temp_path("peak_rating_cache_damage.jsonl");
  {
    RatingCache cache(path);
    DriverOptions options;
    options.search_threads = 1;
    options.rating_cache = &cache;
    (void)tune(s, options, rating::Method::kCBR);
    ASSERT_GT(cache.size(), 0u);
  }
  std::size_t intact = 0;
  {
    RatingCache reloaded(path);
    intact = reloaded.size();
  }
  // Simulate a crash mid-append: a partial record must be skipped, the
  // complete ones kept.
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << R"({"type":"rating","key":"dead)";
  }
  RatingCache damaged(path);
  EXPECT_EQ(damaged.size(), intact);
}

}  // namespace
}  // namespace peak::core
