#include <gtest/gtest.h>

#include "rating/cbr.hpp"
#include "rating/rbr.hpp"
#include "support/check.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace peak::rating {
namespace {

TEST(Cbr, BucketsByContext) {
  ContextBasedRater rater;
  support::Rng rng(1);
  // Context {8}: ~80 cycles; context {16}: ~160 cycles.
  for (int i = 0; i < 50; ++i) {
    rater.add({8}, rng.normal(80, 1));
    rater.add({16}, rng.normal(160, 2));
  }
  EXPECT_EQ(rater.num_contexts(), 2u);
  EXPECT_EQ(rater.total_samples(), 100u);
  EXPECT_NEAR(rater.rating_for({8}).eval, 80.0, 1.0);
  EXPECT_NEAR(rater.rating_for({16}).eval, 160.0, 1.0);
  // The dominant context carries the most total time: {16}.
  EXPECT_EQ(rater.dominant_context(), (ContextKey{16}));
  EXPECT_NEAR(rater.rating().eval, 160.0, 1.0);
}

TEST(Cbr, SameContextComparisonIsFairUnderShiftedMix) {
  // The motivating failure of AVG: if version A is measured while small
  // contexts dominate and version B while large ones do, raw averages
  // mislead. CBR compares within a context, immune to the mix.
  support::Rng rng(2);
  ContextBasedRater version_a, version_b;
  // Version A: measured mostly under context {1} (cheap).
  for (int i = 0; i < 90; ++i) version_a.add({1}, rng.normal(10, 0.1));
  for (int i = 0; i < 10; ++i) version_a.add({2}, rng.normal(100, 1));
  // Version B: 10% faster but measured mostly under context {2}.
  for (int i = 0; i < 10; ++i) version_b.add({1}, rng.normal(9, 0.1));
  for (int i = 0; i < 90; ++i) version_b.add({2}, rng.normal(90, 1));

  // Per-context comparison: B wins in both contexts.
  EXPECT_LT(version_b.rating_for({1}).eval,
            version_a.rating_for({1}).eval);
  EXPECT_LT(version_b.rating_for({2}).eval,
            version_a.rating_for({2}).eval);
}

TEST(Cbr, AllRatingsExposesEveryContext) {
  ContextBasedRater rater;
  for (int i = 0; i < 15; ++i) {
    rater.add({1, 1}, 5.0);
    rater.add({1, 2}, 6.0);
    rater.add({2, 1}, 7.0);
  }
  const auto all = rater.all_ratings();
  EXPECT_EQ(all.size(), 3u);
  EXPECT_NEAR(all.at({1, 2}).eval, 6.0, 1e-12);
}

TEST(Cbr, UnknownContextGivesEmptyRating) {
  ContextBasedRater rater;
  rater.add({1}, 5.0);
  const Rating r = rater.rating_for({9});
  EXPECT_EQ(r.samples, 0u);
}

TEST(Cbr, DominantContextThrowsWhenEmpty) {
  ContextBasedRater rater;
  EXPECT_THROW((void)rater.dominant_context(), support::CheckError);
}

TEST(Cbr, ResetClears) {
  ContextBasedRater rater;
  rater.add({1}, 5.0);
  rater.reset();
  EXPECT_EQ(rater.num_contexts(), 0u);
  EXPECT_EQ(rater.total_samples(), 0u);
}

TEST(Rbr, IdenticalVersionsRateNearOne) {
  ReexecutionRater rater;
  support::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const double base = 100.0 * rng.lognormal(0.02);
    const double exp = 100.0 * rng.lognormal(0.02);
    rater.add_pair(base, exp);
  }
  EXPECT_NEAR(rater.rating().eval, 1.0, 0.01);
}

TEST(Rbr, DetectsPlantedImprovement) {
  ReexecutionRater rater;
  support::Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const double base = 100.0 * rng.lognormal(0.02);
    const double exp = 90.0 * rng.lognormal(0.02);  // 11% faster
    rater.add_pair(base, exp);
  }
  EXPECT_NEAR(rater.rating().eval, 100.0 / 90.0, 0.01);
}

TEST(Rbr, RejectsNonPositiveTimes) {
  ReexecutionRater rater;
  EXPECT_THROW(rater.add_pair(0.0, 1.0), support::CheckError);
  EXPECT_THROW(rater.add_pair(1.0, -2.0), support::CheckError);
}

TEST(Rbr, SharedPerInvocationFactorCancels) {
  // The heart of RBR: a data-dependent speed factor common to both timed
  // runs of an invocation divides out of the ratio.
  ReexecutionRater rater;
  support::Rng rng(5);
  for (int i = 0; i < 80; ++i) {
    const double shared = rng.lognormal(0.3);  // wild per-invocation swing
    rater.add_pair(100.0 * shared, 95.0 * shared);
  }
  const Rating r = rater.rating();
  EXPECT_NEAR(r.eval, 100.0 / 95.0, 1e-9);
  EXPECT_NEAR(r.var, 0.0, 1e-12);
}

}  // namespace
}  // namespace peak::rating
