#include <gtest/gtest.h>

#include <limits>

#include "rating/baselines.hpp"
#include "rating/window.hpp"
#include "stats/descriptive.hpp"
#include "support/rng.hpp"

namespace peak::rating {
namespace {

TEST(WindowedRater, EvalVarOverWindow) {
  WindowedRater rater;
  for (double x : {10.0, 11.0, 9.0, 10.0, 10.5, 9.5, 10.2, 9.8, 10.1, 9.9})
    rater.add(x);
  const Rating r = rater.rating();
  EXPECT_EQ(r.samples, 10u);
  EXPECT_NEAR(r.eval, 10.0, 0.1);
  EXPECT_GT(r.var, 0.0);
}

TEST(WindowedRater, ConvergesAsWindowGrows) {
  support::Rng rng(1);
  WindowPolicy policy;
  policy.cv_threshold = 0.01;
  WindowedRater rater(policy);
  int added = 0;
  while (!rater.converged() && added < 10000) {
    rater.add(rng.normal(100.0, 5.0));
    ++added;
  }
  EXPECT_TRUE(rater.converged());
  // sem = 5/sqrt(n) < 1.0 → n ≈ 25; allow generous slack.
  EXPECT_LT(added, 400);
  EXPECT_GE(added, 10);
}

TEST(WindowedRater, OutlierEliminationStabilizesEval) {
  support::Rng rng(2);
  WindowPolicy with, without;
  without.outliers.rule = stats::OutlierRule::kNone;
  WindowedRater filtered(with), raw(without);
  for (int i = 0; i < 200; ++i) {
    double t = rng.normal(100.0, 1.0);
    if (i % 25 == 7) t *= 4.0;  // interrupt
    filtered.add(t);
    raw.add(t);
  }
  EXPECT_NEAR(filtered.rating().eval, 100.0, 0.5);
  EXPECT_GT(raw.rating().eval, 101.0);  // dragged by spikes
  EXPECT_GT(filtered.outliers_dropped(), 0u);
}

TEST(WindowedRater, ExhaustedAtMaxSamples) {
  WindowPolicy policy;
  policy.max_samples = 16;
  policy.cv_threshold = 1e-9;  // unreachable
  WindowedRater rater(policy);
  support::Rng rng(3);
  for (int i = 0; i < 16; ++i) rater.add(rng.normal(10, 1));
  EXPECT_TRUE(rater.exhausted());
  EXPECT_FALSE(rater.converged());
}

TEST(WindowedRater, EmptyRatingIsInert) {
  WindowedRater rater;
  const Rating r = rater.rating();
  EXPECT_EQ(r.samples, 0u);
  EXPECT_FALSE(r.converged);
}

TEST(Rating, ScoreTimeNormalizesRbr) {
  Rating time_like;
  time_like.eval = 50.0;
  EXPECT_DOUBLE_EQ(time_like.score_time(Method::kCBR), 50.0);
  Rating ratio_like;
  ratio_like.eval = 1.25;  // 25% faster than base
  EXPECT_DOUBLE_EQ(ratio_like.score_time(Method::kRBR), 0.8);
}

TEST(MethodNames, RoundTrip) {
  EXPECT_STREQ(to_string(Method::kCBR), "CBR");
  EXPECT_STREQ(to_string(Method::kMBR), "MBR");
  EXPECT_STREQ(to_string(Method::kRBR), "RBR");
  EXPECT_STREQ(to_string(Method::kAVG), "AVG");
  EXPECT_STREQ(to_string(Method::kWHL), "WHL");
}

TEST(WholeProgramRater, AggregatesRuns) {
  WholeProgramRater rater;
  for (int run = 0; run < 3; ++run) {
    for (int i = 0; i < 100; ++i) rater.add_invocation(10.0);
    rater.end_run();
  }
  EXPECT_EQ(rater.runs(), 3u);
  EXPECT_NEAR(rater.rating().eval, 1000.0, 1e-9);
  EXPECT_TRUE(rater.converged());  // identical runs converge immediately
}

TEST(ContextObliviousRater, IsAPlainWindow) {
  ContextObliviousRater rater;
  for (int i = 0; i < 20; ++i) rater.add(5.0);
  EXPECT_NEAR(rater.rating().eval, 5.0, 1e-12);
}

/// The rater's fast MAD path (sorted mirror + cached rating) must agree
/// exactly with the reference computation it replaced: filter_outliers
/// over the raw window, mean/variance over the kept samples.
TEST(WindowedRater, RatingMatchesFilterOutliers) {
  support::Rng rng(9);
  WindowPolicy policy;
  WindowedRater rater(policy);
  for (int i = 0; i < 400; ++i) {
    // Lognormal noise with occasional large spikes so the MAD filter
    // actually drops samples (and eventually hits its drop quota).
    double x = 100.0 * rng.lognormal(0.05);
    if (i % 17 == 0) x *= 10.0;
    rater.add(x);

    const stats::OutlierResult ref =
        stats::filter_outliers(rater.samples(), policy.outliers);
    const Rating r = rater.rating();
    EXPECT_EQ(stats::mean(ref.kept), r.eval) << "i=" << i;
    EXPECT_EQ(stats::variance(ref.kept), r.var) << "i=" << i;
    EXPECT_EQ(rater.outliers_dropped(), ref.dropped) << "i=" << i;
  }
}

/// reset() must clear the sorted mirror and cached rating along with the
/// samples, not just the sample list.
TEST(WindowedRater, ResetClearsDerivedState) {
  WindowedRater rater;
  for (double x : {5.0, 500.0, 5.0, 5.0}) rater.add(x);
  ASSERT_GT(rater.rating().eval, 0.0);
  rater.reset();
  EXPECT_EQ(rater.size(), 0u);
  EXPECT_EQ(rater.rating().samples, 0u);
  EXPECT_EQ(rater.rating().eval, 0.0);
  rater.add(7.0);
  EXPECT_DOUBLE_EQ(rater.rating().eval, 7.0);
}

/// Property: the standard deviation of window means shrinks like 1/sqrt(w)
/// — the mechanism behind Table 1's consistency-vs-window-size columns.
class WindowSizeSweep : public ::testing::TestWithParam<int> {};

TEST_P(WindowSizeSweep, MeanSpreadShrinksWithWindow) {
  const int w = GetParam();
  support::Rng rng(4);
  std::vector<double> window_means;
  for (int rep = 0; rep < 60; ++rep) {
    double sum = 0.0;
    for (int i = 0; i < w; ++i) sum += rng.normal(100.0, 3.0);
    window_means.push_back(sum / w);
  }
  double dev = 0.0;
  for (double m : window_means) dev += (m - 100.0) * (m - 100.0);
  dev = std::sqrt(dev / static_cast<double>(window_means.size()));
  const double predicted = 3.0 / std::sqrt(static_cast<double>(w));
  EXPECT_NEAR(dev, predicted, predicted);  // within 2x of theory
}

INSTANTIATE_TEST_SUITE_P(Table1Windows, WindowSizeSweep,
                         ::testing::Values(10, 20, 40, 80, 160));

TEST(WindowedRater, NonFiniteSamplesAreDroppedNotRated) {
  WindowedRater clean, dirty;
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (double x : {10.0, 11.0, 9.0, 10.5, 9.5, 10.2, 9.8, 10.1}) {
    clean.add(x);
    dirty.add(x);
    dirty.add(nan);  // a glitched timer reading between every good sample
  }
  dirty.add(inf);
  dirty.add(-inf);
  EXPECT_EQ(dirty.nonfinite_dropped(), 10u);
  EXPECT_EQ(dirty.size(), clean.size());
  // The rating is computed from the good samples only, bit for bit.
  EXPECT_EQ(dirty.rating().eval, clean.rating().eval);
  EXPECT_EQ(dirty.rating().var, clean.rating().var);
}

TEST(WindowedRater, AllNonFiniteStreamExhaustsInsteadOfSpinning) {
  WindowPolicy policy;
  policy.max_samples = 16;
  WindowedRater rater(policy);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  // Dropped samples count toward the budget: a measurement loop of the
  // form `while (!converged() && !exhausted())` must terminate even when
  // every reading is garbage.
  for (int i = 0; i < 16; ++i) {
    ASSERT_FALSE(rater.exhausted());
    rater.add(nan);
  }
  EXPECT_TRUE(rater.exhausted());
  EXPECT_FALSE(rater.converged());
  EXPECT_EQ(rater.size(), 0u);
  EXPECT_EQ(rater.rating().samples, 0u);
}

TEST(WindowedRater, ResetClearsNonFiniteTally) {
  WindowedRater rater;
  rater.add(std::numeric_limits<double>::infinity());
  ASSERT_EQ(rater.nonfinite_dropped(), 1u);
  rater.reset();
  EXPECT_EQ(rater.nonfinite_dropped(), 0u);
}

TEST(WholeProgramRater, GarbageRunTotalsExhaustTheRater) {
  WholeProgramRater rater;
  const std::size_t budget =
      WholeProgramRater::whl_policy().max_samples;
  for (std::size_t run = 0; run < budget; ++run) {
    ASSERT_FALSE(rater.exhausted());
    rater.add_invocation(std::numeric_limits<double>::infinity());
    rater.end_run();  // inf run total: dropped, but budgeted
  }
  EXPECT_TRUE(rater.exhausted());
  EXPECT_FALSE(rater.converged());
  EXPECT_EQ(rater.runs(), 0u);
}

}  // namespace
}  // namespace peak::rating
