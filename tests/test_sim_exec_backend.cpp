#include <gtest/gtest.h>

#include "sim/exec_backend.hpp"
#include "stats/descriptive.hpp"
#include "workloads/workload.hpp"

namespace peak::sim {
namespace {

class BackendTest : public ::testing::Test {
protected:
  BackendTest()
      : workload_(workloads::make_workload("SWIM")),
        machine_(sparc2()),
        effects_(search::gcc33_o3_space()),
        trace_(workload_->trace(workloads::DataSet::kTrain, 11)) {}

  std::unique_ptr<SimExecutionBackend> make_backend(std::uint64_t seed = 1) {
    auto backend = std::make_unique<SimExecutionBackend>(
        workload_->function(), workload_->traits(), machine_, effects_,
        seed);
    backend->set_checkpoint_bytes(8192, 2048);
    return backend;
  }

  std::unique_ptr<workloads::Workload> workload_;
  MachineModel machine_;
  FlagEffectModel effects_;
  workloads::Trace trace_;
};

TEST_F(BackendTest, ExpectedTimeIsDeterministicAndPositive) {
  auto backend = make_backend();
  const search::FlagConfig o3 = search::o3_config(effects_.space());
  const double t1 = backend->expected_time(o3, trace_.invocations[0]);
  const double t2 = backend->expected_time(o3, trace_.invocations[1]);
  EXPECT_GT(t1, 0.0);
  EXPECT_DOUBLE_EQ(t1, t2);  // same context, cached base run
}

TEST_F(BackendTest, InvokeTimesFluctuateAroundExpected) {
  auto backend = make_backend();
  const search::FlagConfig o3 = search::o3_config(effects_.space());
  const double expected =
      backend->expected_time(o3, trace_.invocations[0]);
  std::vector<double> times;
  for (int i = 0; i < 300; ++i)
    times.push_back(backend->invoke(o3, trace_.invocations[0]).time);
  const double m = stats::mean(times);
  // Cold-start warmth inflates every fresh-data execution a bit.
  EXPECT_GT(m, expected * 0.95);
  EXPECT_LT(m, expected * 1.45);
  EXPECT_GT(stats::stddev(times), 0.0);
}

TEST_F(BackendTest, FasterConfigGivesSmallerExpectedTime) {
  auto backend = make_backend();
  const auto& space = effects_.space();
  const search::FlagConfig o3 = search::o3_config(space);
  // SWIM story: -fschedule-insns hurts; removing it must speed things up.
  const search::FlagConfig better =
      o3.with(*space.index_of("-fschedule-insns"), false);
  EXPECT_LT(backend->expected_time(better, trace_.invocations[0]),
            backend->expected_time(o3, trace_.invocations[0]));
}

TEST_F(BackendTest, RbrPairSharesContext) {
  auto backend = make_backend();
  const search::FlagConfig o3 = search::o3_config(effects_.space());
  const RbrPairResult pair = backend->invoke_rbr_pair(
      o3, o3, trace_.invocations[0], RbrOptions{true});
  // Same version on both sides: ratio should be very close to 1.
  EXPECT_NEAR(pair.time_best / pair.time_exp, 1.0, 0.15);
  EXPECT_GT(pair.overhead, 0.0);
}

TEST_F(BackendTest, IrregularityCancelsInRbrButNotAcrossInvocations) {
  // Build two invocations with very different data-dependent speeds.
  sim::Invocation slow = trace_.invocations[0];
  slow.irregularity = 1.5;
  slow.context_determines_time = false;
  sim::Invocation fast = trace_.invocations[0];
  fast.irregularity = 0.7;
  fast.context_determines_time = false;

  auto backend = make_backend();
  const search::FlagConfig o3 = search::o3_config(effects_.space());

  // Across invocations (what AVG/CBR see): times differ a lot.
  const double t_slow = backend->invoke(o3, slow).time;
  const double t_fast = backend->invoke(o3, fast).time;
  EXPECT_GT(t_slow / t_fast, 1.5);

  // Within one invocation (what RBR sees): the factor divides out.
  std::vector<double> ratios;
  for (int i = 0; i < 50; ++i) {
    const RbrPairResult pair =
        backend->invoke_rbr_pair(o3, o3, slow, RbrOptions{true});
    ratios.push_back(pair.time_best / pair.time_exp);
  }
  EXPECT_NEAR(stats::mean(ratios), 1.0, 0.05);
}

TEST_F(BackendTest, BasicRbrIsBiasedByCacheWarmth) {
  // Fig. 3 vs Fig. 4: in the basic method version 1 runs cold and version
  // 2 warm, biasing the ratio above 1 even for identical versions. The
  // improved method removes the bias via preconditioning.
  const search::FlagConfig o3 = search::o3_config(effects_.space());

  auto biased = make_backend(21);
  std::vector<double> basic_ratios;
  for (int i = 0; i < 200; ++i) {
    const auto pair = biased->invoke_rbr_pair(
        o3, o3, trace_.invocations[0], RbrOptions{false});
    basic_ratios.push_back(pair.time_best / pair.time_exp);
  }

  auto fair = make_backend(21);
  std::vector<double> improved_ratios;
  for (int i = 0; i < 200; ++i) {
    const auto pair = fair->invoke_rbr_pair(
        o3, o3, trace_.invocations[0], RbrOptions{true});
    improved_ratios.push_back(pair.time_best / pair.time_exp);
  }

  const double basic_bias = stats::mean(basic_ratios) - 1.0;
  const double improved_bias =
      std::fabs(stats::mean(improved_ratios) - 1.0);
  EXPECT_GT(basic_bias, 0.05);  // v2 looks spuriously faster
  EXPECT_LT(improved_bias, basic_bias / 3.0);
}

TEST_F(BackendTest, AccumulatedTimeGrowsWithWork) {
  auto backend = make_backend();
  const search::FlagConfig o3 = search::o3_config(effects_.space());
  EXPECT_DOUBLE_EQ(backend->accumulated_time(), 0.0);
  backend->invoke(o3, trace_.invocations[0]);
  const double after_one = backend->accumulated_time();
  EXPECT_GT(after_one, 0.0);
  backend->invoke_rbr_pair(o3, o3, trace_.invocations[0], RbrOptions{true});
  // The RBR pair costs much more than a plain invocation (precondition +
  // two timed runs + checkpoint traffic).
  EXPECT_GT(backend->accumulated_time() - after_one, 2.0 * after_one);
  backend->reset_accumulated_time();
  EXPECT_DOUBLE_EQ(backend->accumulated_time(), 0.0);
}

TEST_F(BackendTest, ImprovedRbrAlternatesOrder) {
  auto backend = make_backend();
  const search::FlagConfig o3 = search::o3_config(effects_.space());
  const auto a = backend->invoke_rbr_pair(o3, o3, trace_.invocations[0],
                                          RbrOptions{true});
  const auto b = backend->invoke_rbr_pair(o3, o3, trace_.invocations[0],
                                          RbrOptions{true});
  EXPECT_NE(a.swapped, b.swapped);
}

}  // namespace
}  // namespace peak::sim
