#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "sim/exec_backend.hpp"
#include "stats/descriptive.hpp"
#include "workloads/workload.hpp"

namespace peak::sim {
namespace {

class BackendTest : public ::testing::Test {
protected:
  BackendTest()
      : workload_(workloads::make_workload("SWIM")),
        machine_(sparc2()),
        effects_(search::gcc33_o3_space()),
        trace_(workload_->trace(workloads::DataSet::kTrain, 11)) {}

  std::unique_ptr<SimExecutionBackend> make_backend(std::uint64_t seed = 1) {
    auto backend = std::make_unique<SimExecutionBackend>(
        workload_->function(), workload_->traits(), machine_, effects_,
        seed);
    backend->set_checkpoint_bytes(8192, 2048);
    return backend;
  }

  std::unique_ptr<workloads::Workload> workload_;
  MachineModel machine_;
  FlagEffectModel effects_;
  workloads::Trace trace_;
};

TEST_F(BackendTest, ExpectedTimeIsDeterministicAndPositive) {
  auto backend = make_backend();
  const search::FlagConfig o3 = search::o3_config(effects_.space());
  const double t1 = backend->expected_time(o3, trace_.invocations[0]);
  const double t2 = backend->expected_time(o3, trace_.invocations[1]);
  EXPECT_GT(t1, 0.0);
  EXPECT_DOUBLE_EQ(t1, t2);  // same context, cached base run
}

TEST_F(BackendTest, InvokeTimesFluctuateAroundExpected) {
  auto backend = make_backend();
  const search::FlagConfig o3 = search::o3_config(effects_.space());
  const double expected =
      backend->expected_time(o3, trace_.invocations[0]);
  std::vector<double> times;
  for (int i = 0; i < 300; ++i)
    times.push_back(backend->invoke(o3, trace_.invocations[0]).time);
  const double m = stats::mean(times);
  // Cold-start warmth inflates every fresh-data execution a bit.
  EXPECT_GT(m, expected * 0.95);
  EXPECT_LT(m, expected * 1.45);
  EXPECT_GT(stats::stddev(times), 0.0);
}

TEST_F(BackendTest, FasterConfigGivesSmallerExpectedTime) {
  auto backend = make_backend();
  const auto& space = effects_.space();
  const search::FlagConfig o3 = search::o3_config(space);
  // SWIM story: -fschedule-insns hurts; removing it must speed things up.
  const search::FlagConfig better =
      o3.with(*space.index_of("-fschedule-insns"), false);
  EXPECT_LT(backend->expected_time(better, trace_.invocations[0]),
            backend->expected_time(o3, trace_.invocations[0]));
}

TEST_F(BackendTest, RbrPairSharesContext) {
  auto backend = make_backend();
  const search::FlagConfig o3 = search::o3_config(effects_.space());
  const RbrPairResult pair = backend->invoke_rbr_pair(
      o3, o3, trace_.invocations[0], RbrOptions{true});
  // Same version on both sides: ratio should be very close to 1.
  EXPECT_NEAR(pair.time_best / pair.time_exp, 1.0, 0.15);
  EXPECT_GT(pair.overhead, 0.0);
}

TEST_F(BackendTest, IrregularityCancelsInRbrButNotAcrossInvocations) {
  // Build two invocations with very different data-dependent speeds.
  sim::Invocation slow = trace_.invocations[0];
  slow.irregularity = 1.5;
  slow.context_determines_time = false;
  sim::Invocation fast = trace_.invocations[0];
  fast.irregularity = 0.7;
  fast.context_determines_time = false;

  auto backend = make_backend();
  const search::FlagConfig o3 = search::o3_config(effects_.space());

  // Across invocations (what AVG/CBR see): times differ a lot.
  const double t_slow = backend->invoke(o3, slow).time;
  const double t_fast = backend->invoke(o3, fast).time;
  EXPECT_GT(t_slow / t_fast, 1.5);

  // Within one invocation (what RBR sees): the factor divides out.
  std::vector<double> ratios;
  for (int i = 0; i < 50; ++i) {
    const RbrPairResult pair =
        backend->invoke_rbr_pair(o3, o3, slow, RbrOptions{true});
    ratios.push_back(pair.time_best / pair.time_exp);
  }
  EXPECT_NEAR(stats::mean(ratios), 1.0, 0.05);
}

TEST_F(BackendTest, BasicRbrIsBiasedByCacheWarmth) {
  // Fig. 3 vs Fig. 4: in the basic method version 1 runs cold and version
  // 2 warm, biasing the ratio above 1 even for identical versions. The
  // improved method removes the bias via preconditioning.
  const search::FlagConfig o3 = search::o3_config(effects_.space());

  auto biased = make_backend(21);
  std::vector<double> basic_ratios;
  for (int i = 0; i < 200; ++i) {
    const auto pair = biased->invoke_rbr_pair(
        o3, o3, trace_.invocations[0], RbrOptions{false});
    basic_ratios.push_back(pair.time_best / pair.time_exp);
  }

  auto fair = make_backend(21);
  std::vector<double> improved_ratios;
  for (int i = 0; i < 200; ++i) {
    const auto pair = fair->invoke_rbr_pair(
        o3, o3, trace_.invocations[0], RbrOptions{true});
    improved_ratios.push_back(pair.time_best / pair.time_exp);
  }

  const double basic_bias = stats::mean(basic_ratios) - 1.0;
  const double improved_bias =
      std::fabs(stats::mean(improved_ratios) - 1.0);
  EXPECT_GT(basic_bias, 0.05);  // v2 looks spuriously faster
  EXPECT_LT(improved_bias, basic_bias / 3.0);
}

TEST_F(BackendTest, AccumulatedTimeGrowsWithWork) {
  auto backend = make_backend();
  const search::FlagConfig o3 = search::o3_config(effects_.space());
  EXPECT_DOUBLE_EQ(backend->accumulated_time(), 0.0);
  backend->invoke(o3, trace_.invocations[0]);
  const double after_one = backend->accumulated_time();
  EXPECT_GT(after_one, 0.0);
  backend->invoke_rbr_pair(o3, o3, trace_.invocations[0], RbrOptions{true});
  // The RBR pair costs much more than a plain invocation (precondition +
  // two timed runs + checkpoint traffic).
  EXPECT_GT(backend->accumulated_time() - after_one, 2.0 * after_one);
  backend->reset_accumulated_time();
  EXPECT_DOUBLE_EQ(backend->accumulated_time(), 0.0);
}

TEST_F(BackendTest, EnginesProduceBitIdenticalTimes) {
  // Same seed, same call sequence: the bytecode engine (default) and the
  // tree-walker must agree bitwise — base cycles feed multiplicative
  // noise, so even 1-ulp drift would change every sampled time.
  auto vm_backend = make_backend(77);
  auto tree_backend = make_backend(77);
  tree_backend->set_engine(ExecEngine::kTreeWalker);
  ASSERT_EQ(vm_backend->engine(), ExecEngine::kBytecode);

  const auto& space = effects_.space();
  const search::FlagConfig o3 = search::o3_config(space);
  const search::FlagConfig alt =
      o3.with(*space.index_of("-fschedule-insns"), false);

  for (std::size_t i = 0; i < 4 && i < trace_.invocations.size(); ++i) {
    const sim::Invocation& inv = trace_.invocations[i];
    for (const auto& cfg : {o3, alt}) {
      EXPECT_EQ(vm_backend->expected_time(cfg, inv),
                tree_backend->expected_time(cfg, inv));
      const InvocationResult a = vm_backend->invoke(cfg, inv);
      const InvocationResult b = tree_backend->invoke(cfg, inv);
      EXPECT_EQ(a.time, b.time);
      ASSERT_TRUE(a.counters && b.counters);
      EXPECT_EQ(*a.counters, *b.counters);
    }
  }
  EXPECT_EQ(vm_backend->accumulated_time(), tree_backend->accumulated_time());
}

TEST_F(BackendTest, RepeatedInvocationsShareCountersStorage) {
  auto backend = make_backend();
  const search::FlagConfig o3 = search::o3_config(effects_.space());
  const InvocationResult a = backend->invoke(o3, trace_.invocations[0]);
  const InvocationResult b = backend->invoke(o3, trace_.invocations[0]);
  // Both results alias the cached base run's counter vector: no per-invoke
  // copy of the (potentially large) instrumentation array.
  EXPECT_EQ(a.counters.get(), b.counters.get());
}

TEST_F(BackendTest, BaseCacheObsCountersTrackHitsMissesUncacheable) {
  obs::Counter& hit = obs::counter("sim.base_cache.hit");
  obs::Counter& miss = obs::counter("sim.base_cache.miss");
  obs::Counter& uncacheable = obs::counter("sim.base_cache.uncacheable");

  auto backend = make_backend();
  const search::FlagConfig o3 = search::o3_config(effects_.space());

  const auto h0 = hit.value();
  const auto m0 = miss.value();
  backend->invoke(o3, trace_.invocations[0]);
  EXPECT_EQ(miss.value(), m0 + 1);  // first sight of this context
  backend->invoke(o3, trace_.invocations[0]);
  backend->expected_time(o3, trace_.invocations[0]);
  EXPECT_EQ(hit.value(), h0 + 2);
  EXPECT_EQ(miss.value(), m0 + 1);

  // id == 0 with data-dependent timing cannot be cached: every call
  // re-executes and says so.
  sim::Invocation oneshot = trace_.invocations[0];
  oneshot.id = 0;
  oneshot.context_determines_time = false;
  const auto u0 = uncacheable.value();
  backend->invoke(o3, oneshot);
  backend->invoke(o3, oneshot);
  EXPECT_EQ(uncacheable.value(), u0 + 2);
}

TEST(BackendTraces, Table1WorkloadInvocationsAreAlwaysCacheable) {
  // Guards the silent-recompute trap documented on base_run(): a trace
  // producer that leaves id == 0 on a data-dependent invocation makes
  // every rating run re-interpret the section. No shipped workload trace
  // may do that unintentionally.
  for (const auto& workload : workloads::all_workloads()) {
    const workloads::Trace trace =
        workload->trace(workloads::DataSet::kTrain, 3);
    for (const sim::Invocation& inv : trace.invocations) {
      EXPECT_TRUE(inv.context_determines_time || inv.id != 0)
          << workload->full_name() << " has an uncacheable invocation";
    }
  }
}

TEST_F(BackendTest, ImprovedRbrAlternatesOrder) {
  auto backend = make_backend();
  const search::FlagConfig o3 = search::o3_config(effects_.space());
  const auto a = backend->invoke_rbr_pair(o3, o3, trace_.invocations[0],
                                          RbrOptions{true});
  const auto b = backend->invoke_rbr_pair(o3, o3, trace_.invocations[0],
                                          RbrOptions{true});
  EXPECT_NE(a.swapped, b.swapped);
}

}  // namespace
}  // namespace peak::sim
