#include <gtest/gtest.h>

#include "search/combined_elimination.hpp"
#include "search/iterative_elimination.hpp"
#include "search/opt_config.hpp"
#include "support/rng.hpp"

namespace peak::search {
namespace {

class SeparableEvaluator : public ConfigEvaluator {
public:
  explicit SeparableEvaluator(std::vector<double> factors)
      : factors_(std::move(factors)) {}

  double relative_improvement(const FlagConfig& base,
                              const FlagConfig& cfg) override {
    ++calls;
    return time(base) / time(cfg);
  }

  double time(const FlagConfig& cfg) const {
    double t = 1000.0;
    for (std::size_t f = 0; f < factors_.size(); ++f)
      if (cfg.enabled(f)) t *= factors_[f];
    return t;
  }

  std::size_t calls = 0;

private:
  std::vector<double> factors_;
};

OptimizationSpace small_space(std::size_t n) {
  std::vector<FlagInfo> flags;
  for (std::size_t i = 0; i < n; ++i)
    flags.push_back({"-fopt" + std::to_string(i), FlagCategory::kMisc, 2});
  return OptimizationSpace(std::move(flags));
}

TEST(CombinedElimination, RemovesHarmfulKeepsHelpful) {
  const OptimizationSpace space = small_space(8);
  SeparableEvaluator eval({0.95, 1.08, 0.97, 1.03, 0.99, 1.0, 0.96, 1.12});
  CombinedElimination ce(1.01);
  const SearchResult result = ce.run(space, eval, o3_config(space));
  EXPECT_FALSE(result.best.enabled(1));
  EXPECT_FALSE(result.best.enabled(3));
  EXPECT_FALSE(result.best.enabled(7));
  EXPECT_TRUE(result.best.enabled(0));
  EXPECT_TRUE(result.best.enabled(6));
  EXPECT_GT(result.improvement_over_start, 1.2);
}

TEST(CombinedElimination, CheaperThanIterativeSameQuality) {
  const OptimizationSpace space = small_space(16);
  std::vector<double> factors(16, 1.0);
  support::Rng rng(5);
  for (double& f : factors) f = rng.uniform(0.95, 1.08);
  const FlagConfig start = o3_config(space);

  SeparableEvaluator ce_eval(factors);
  const SearchResult ce =
      CombinedElimination(1.01).run(space, ce_eval, start);
  SeparableEvaluator ie_eval(factors);
  IterativeEliminationOptions opts;
  opts.improvement_threshold = 1.01;
  const SearchResult ie =
      IterativeElimination(opts).run(space, ie_eval, start);

  // On a separable space both reach the same configuration, but CE does
  // it in roughly one probing round plus revalidations.
  EXPECT_EQ(ce.best, ie.best);
  EXPECT_LT(ce_eval.calls, ie_eval.calls);
}

TEST(CombinedElimination, CleanSpaceStopsAfterOneRound) {
  const OptimizationSpace space = small_space(10);
  SeparableEvaluator eval(std::vector<double>(10, 0.97));  // all helpful
  const SearchResult result =
      CombinedElimination(1.01).run(space, eval, o3_config(space));
  EXPECT_EQ(result.best, o3_config(space));
  EXPECT_LE(result.configs_evaluated, 11u);  // n probes + final validation
}

TEST(FactorialScreening, FindsMainEffects) {
  const OptimizationSpace space = small_space(10);
  std::vector<double> factors(10, 1.0);
  factors[2] = 1.10;  // harmful
  factors[5] = 1.06;  // harmful
  factors[7] = 0.93;  // helpful
  SeparableEvaluator eval(factors);
  FactorialScreeningOptions options;
  options.runs = 120;
  const SearchResult result =
      FactorialScreening(options).run(space, eval, o3_config(space));
  EXPECT_FALSE(result.best.enabled(2));
  EXPECT_FALSE(result.best.enabled(5));
  EXPECT_TRUE(result.best.enabled(7));
  EXPECT_GT(result.improvement_over_start, 1.1);
  // Cost is the design size plus one validation, independent of n².
  EXPECT_EQ(result.configs_evaluated, 121u);
}

TEST(FactorialScreening, DesignSizeClampedToFlagCount) {
  const OptimizationSpace space = small_space(12);
  SeparableEvaluator eval(std::vector<double>(12, 1.0));
  FactorialScreeningOptions options;
  options.runs = 4;  // too small: clamped to n + 8
  const SearchResult result =
      FactorialScreening(options).run(space, eval, o3_config(space));
  EXPECT_GE(result.configs_evaluated, 12u + 8u);
}

TEST(SearchExtensionNames, Stable) {
  EXPECT_EQ(CombinedElimination().name(), "combined-elimination");
  EXPECT_EQ(FactorialScreening().name(), "factorial-screening");
}

}  // namespace
}  // namespace peak::search
