#include <gtest/gtest.h>

#include "analysis/context_analysis.hpp"
#include "analysis/runtime_constants.hpp"
#include "ir/builder.hpp"

namespace peak::analysis {
namespace {

using ir::FunctionBuilder;

TEST(ContextAnalysis, PlainScalarLoopBounds) {
  // for (i = lo; i < hi; ++i) body — context must be {lo, hi}.
  FunctionBuilder b("loop");
  const auto lo = b.param_scalar("lo");
  const auto hi = b.param_scalar("hi");
  const auto out = b.param_scalar("out");
  const auto i = b.scalar("i");
  b.assign(out, b.c(0.0));
  b.for_loop(i, b.v(lo), b.v(hi), [&] {
    b.assign(out, b.add(b.v(out), b.v(i)));
  });
  const ir::Function fn = b.build();
  const ContextAnalysisResult result = analyze_context_variables(fn);
  ASSERT_TRUE(result.cbr_applicable);
  ASSERT_EQ(result.context_vars.size(), 2u);
  EXPECT_EQ(result.describe(fn), "lo, hi");
  EXPECT_FALSE(result.needs_runtime_constant_check());
}

TEST(ContextAnalysis, TransitiveThroughDefiningStatements) {
  // bound = n * m; loop to bound — context must reach back to {n, m}.
  FunctionBuilder b("derived");
  const auto n = b.param_scalar("n");
  const auto m = b.param_scalar("m");
  const auto i = b.scalar("i");
  const auto bound = b.scalar("bound");
  const auto out = b.param_scalar("out");
  b.assign(bound, b.mul(b.v(n), b.v(m)));
  b.for_loop(i, b.c(0.0), b.v(bound), [&] {
    b.assign(out, b.add(b.v(out), b.c(1.0)));
  });
  const ir::Function fn = b.build();
  const ContextAnalysisResult result = analyze_context_variables(fn);
  ASSERT_TRUE(result.cbr_applicable);
  EXPECT_EQ(result.describe(fn), "n, m");
}

TEST(ContextAnalysis, ConstantSubscriptArrayRefIsScalar) {
  // Loop bound comes from params[3] — a "scalar" per the paper's taxonomy.
  FunctionBuilder b("const_sub");
  const auto params = b.param_array("params", 8);
  const auto out = b.param_scalar("out");
  const auto i = b.scalar("i");
  b.for_loop(i, b.c(0.0), b.at(params, b.c(3.0)), [&] {
    b.assign(out, b.add(b.v(out), b.c(1.0)));
  });
  const ir::Function fn = b.build();
  const ContextAnalysisResult result = analyze_context_variables(fn);
  ASSERT_TRUE(result.cbr_applicable);
  ASSERT_EQ(result.context_vars.size(), 1u);
  EXPECT_EQ(result.context_vars[0].kind, ContextVarKind::kElement);
  EXPECT_EQ(result.context_vars[0].element, 3);
}

TEST(ContextAnalysis, ConstantSubscriptOfModifiedArrayFails) {
  FunctionBuilder b("modified");
  const auto params = b.param_array("params", 8);
  const auto out = b.param_scalar("out");
  const auto i = b.scalar("i");
  b.store(params, b.c(0.0), b.c(9.0));  // array written in TS
  b.for_loop(i, b.c(0.0), b.at(params, b.c(3.0)), [&] {
    b.assign(out, b.add(b.v(out), b.c(1.0)));
  });
  const ir::Function fn = b.build();
  EXPECT_FALSE(analyze_context_variables(fn).cbr_applicable);
}

TEST(ContextAnalysis, VaryingSubscriptReadOnlyArrayNeedsRtcCheck) {
  // Inner loop bound read from rowptr[i]: array content feeds control but
  // the TS never writes it — admissible iff it is a run-time constant.
  FunctionBuilder b("csr");
  const auto n = b.param_scalar("n");
  const auto rowptr = b.param_array("rowptr", 16);
  const auto out = b.param_scalar("out");
  const auto i = b.scalar("i");
  const auto j = b.scalar("j");
  b.for_loop(i, b.c(0.0), b.v(n), [&] {
    b.for_loop(j, b.c(0.0), b.at(rowptr, b.v(i)), [&] {
      b.assign(out, b.add(b.v(out), b.c(1.0)));
    });
  });
  const ir::Function fn = b.build();
  const ContextAnalysisResult result = analyze_context_variables(fn);
  ASSERT_TRUE(result.cbr_applicable);
  EXPECT_TRUE(result.needs_runtime_constant_check());
  bool has_array_content = false;
  for (const ContextVar& cv : result.context_vars)
    has_array_content |= cv.kind == ContextVarKind::kArrayContent &&
                         cv.var == *fn.find_var("rowptr");
  EXPECT_TRUE(has_array_content);
}

TEST(ContextAnalysis, VaryingSubscriptOfWrittenArrayFails) {
  // The array feeding control is also stored to: hard failure.
  FunctionBuilder b("selfmod");
  const auto n = b.param_scalar("n");
  const auto data = b.param_array("data", 16);
  const auto i = b.scalar("i");
  b.for_loop(i, b.c(0.0), b.v(n), [&] {
    b.if_then(b.gt(b.at(data, b.v(i)), b.c(0.0)), [&] {
      b.store(data, b.v(i), b.c(0.0));
    });
  });
  const ir::Function fn = b.build();
  const ContextAnalysisResult result = analyze_context_variables(fn);
  EXPECT_FALSE(result.cbr_applicable);
  EXPECT_FALSE(result.failure_reason.empty());
}

TEST(ContextAnalysis, UnmodifiedPointerDerefIsScalar) {
  FunctionBuilder b("ptr");
  const auto p = b.param_pointer("p");
  const auto out = b.param_scalar("out");
  const auto i = b.scalar("i");
  b.for_loop(i, b.c(0.0), b.deref(p, b.c(0.0)), [&] {
    b.assign(out, b.add(b.v(out), b.c(1.0)));
  });
  const ir::Function fn = b.build();
  const ContextAnalysisResult result = analyze_context_variables(fn);
  ASSERT_TRUE(result.cbr_applicable);
  ASSERT_EQ(result.context_vars.size(), 1u);
  EXPECT_TRUE(result.context_vars[0].via_pointer);
}

TEST(ContextAnalysis, ModifiedPointerDerefFails) {
  FunctionBuilder b("ptrmod");
  const auto a = b.param_array("a", 4);
  const auto p = b.pointer("p");
  const auto out = b.param_scalar("out");
  const auto i = b.scalar("i");
  b.assign(p, b.address_of(a));  // p changes within the TS
  b.for_loop(i, b.c(0.0), b.deref(p, b.c(0.0)), [&] {
    b.assign(out, b.add(b.v(out), b.c(1.0)));
  });
  const ir::Function fn = b.build();
  EXPECT_FALSE(analyze_context_variables(fn).cbr_applicable);
}

TEST(ContextAnalysis, LoopCarriedRecursionTerminates) {
  // i = i + step inside the loop: Figure 1's "done" marking must stop the
  // recursion on the cyclic UD chain.
  FunctionBuilder b("cyclic");
  const auto n = b.param_scalar("n");
  const auto step = b.param_scalar("step");
  const auto i = b.scalar("i");
  const auto out = b.param_scalar("out");
  b.assign(i, b.c(0.0));
  b.while_loop(b.lt(b.v(i), b.v(n)), [&] {
    b.assign(out, b.add(b.v(out), b.v(i)));
    b.assign(i, b.add(b.v(i), b.v(step)));
  });
  const ir::Function fn = b.build();
  const ContextAnalysisResult result = analyze_context_variables(fn);
  ASSERT_TRUE(result.cbr_applicable);
  EXPECT_EQ(result.describe(fn), "n, step");
}

TEST(ContextAnalysis, StraightLineCodeHasEmptyContext) {
  FunctionBuilder b("straight");
  const auto x = b.param_scalar("x");
  const auto y = b.param_scalar("y");
  b.assign(y, b.mul(b.v(x), b.c(2.0)));
  const ir::Function fn = b.build();
  const ContextAnalysisResult result = analyze_context_variables(fn);
  EXPECT_TRUE(result.cbr_applicable);
  EXPECT_TRUE(result.context_vars.empty());
}

TEST(RuntimeConstants, PrunesConstantColumns) {
  const std::vector<ContextVar> vars = {
      {ContextVarKind::kScalar, 0, -1, false},
      {ContextVarKind::kScalar, 1, -1, false},
      {ContextVarKind::kScalar, 2, -1, false},
  };
  const std::vector<ContextValues> obs = {
      {5, 1, 7}, {5, 2, 7}, {5, 3, 7}};
  const RuntimeConstantResult pruned = prune_runtime_constants(vars, obs);
  ASSERT_EQ(pruned.kept.size(), 1u);
  EXPECT_EQ(pruned.kept[0].var, 1u);
  EXPECT_EQ(pruned.constant.size(), 2u);
  EXPECT_EQ(project_context(pruned, {5, 9, 7}), ContextValues{9});
}

TEST(RuntimeConstants, NoObservationsKeepsAll) {
  const std::vector<ContextVar> vars = {
      {ContextVarKind::kScalar, 0, -1, false}};
  const RuntimeConstantResult pruned = prune_runtime_constants(vars, {});
  EXPECT_EQ(pruned.kept.size(), 1u);
}

}  // namespace
}  // namespace peak::analysis
