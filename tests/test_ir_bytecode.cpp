#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include "ir/builder.hpp"
#include "ir/bytecode.hpp"
#include "ir/fuzz.hpp"
#include "ir/interpreter.hpp"
#include "support/check.hpp"

namespace peak::ir {
namespace {

// The bytecode VM's contract is bit-identical observable behavior vs the
// tree-walking interpreter: RunResult (cycles compared as bit patterns,
// not with tolerance), final memory image, write-hook call sequence, call
// handler invocations, and error behavior. These tests enforce that
// contract over >= 500 random programs plus targeted hand-built cases.

std::uint64_t bits(double v) { return std::bit_cast<std::uint64_t>(v); }

/// PEAK_CHECK prefixes the thrown message with the failing expression and
/// source location; the engine contract covers the semantic payload after
/// the em dash separator.
std::string error_payload(const std::string& what) {
  const std::size_t pos = what.rfind("— ");
  return pos == std::string::npos ? what : what.substr(pos);
}

struct WriteEvent {
  VarId array;
  std::size_t index;
  std::uint64_t old_bits;
  bool operator==(const WriteEvent&) const = default;
};

void expect_same_result(const RunResult& a, const RunResult& b,
                        const std::string& tag) {
  EXPECT_EQ(bits(a.cycles), bits(b.cycles)) << tag << ": cycles "
                                            << a.cycles << " vs " << b.cycles;
  EXPECT_EQ(a.block_entries, b.block_entries) << tag;
  EXPECT_EQ(a.counters, b.counters) << tag;
  EXPECT_EQ(a.steps, b.steps) << tag;
}

void expect_same_memory(const Memory& a, const Memory& b,
                        const std::string& tag) {
  ASSERT_EQ(a.scalars.size(), b.scalars.size()) << tag;
  for (std::size_t i = 0; i < a.scalars.size(); ++i)
    EXPECT_EQ(bits(a.scalars[i]), bits(b.scalars[i]))
        << tag << ": scalar " << i;
  ASSERT_EQ(a.arrays.size(), b.arrays.size()) << tag;
  for (std::size_t v = 0; v < a.arrays.size(); ++v) {
    ASSERT_EQ(a.arrays[v].size(), b.arrays[v].size()) << tag << ": arr " << v;
    for (std::size_t i = 0; i < a.arrays[v].size(); ++i)
      EXPECT_EQ(bits(a.arrays[v][i]), bits(b.arrays[v][i]))
          << tag << ": arr " << v << "[" << i << "]";
  }
}

/// Run `fn` under both engines from identical memory images and require
/// bit-identical results, memory effects, and write-hook sequences.
void expect_engines_agree(const Function& fn, std::uint64_t mem_seed,
                          const CostModel& cost, bool record_blocks,
                          const std::string& tag) {
  std::vector<WriteEvent> interp_writes;
  std::vector<WriteEvent> vm_writes;

  InterpreterOptions iopts;
  iopts.record_block_entries = record_blocks;
  iopts.write_hook = [&](VarId a, std::size_t i, double old) {
    interp_writes.push_back({a, i, bits(old)});
  };
  Memory interp_mem = fuzz_memory(fn, mem_seed);
  const RunResult ir = Interpreter(fn, iopts).run(interp_mem, cost);

  InterpreterOptions vopts;
  vopts.record_block_entries = record_blocks;
  vopts.write_hook = [&](VarId a, std::size_t i, double old) {
    vm_writes.push_back({a, i, bits(old)});
  };
  const BytecodeProgram prog = BytecodeProgram::compile(fn, cost);
  Memory vm_mem = fuzz_memory(fn, mem_seed);
  const RunResult vr = BytecodeVm(prog, vopts).run(vm_mem);

  expect_same_result(ir, vr, tag);
  expect_same_memory(interp_mem, vm_mem, tag);
  EXPECT_EQ(interp_writes.size(), vm_writes.size()) << tag;
  EXPECT_TRUE(interp_writes == vm_writes) << tag << ": write sequences differ";

  // Folding disabled must also agree (exercises the checked opcodes on the
  // same programs).
  BytecodeOptions no_fold;
  no_fold.fold_bounds_checks = false;
  const BytecodeProgram prog_nf = BytecodeProgram::compile(fn, cost, no_fold);
  Memory nf_mem = fuzz_memory(fn, mem_seed);
  const RunResult nr = BytecodeVm(prog_nf, {}).run(nf_mem);
  EXPECT_EQ(bits(ir.cycles), bits(nr.cycles)) << tag << " (no fold)";
  EXPECT_EQ(ir.steps, nr.steps) << tag << " (no fold)";
  expect_same_memory(interp_mem, nf_mem, tag + " (no fold)");
}

/// Non-trivial block pricing so cycle accumulation order is actually
/// exercised (the unit model prices many blocks identically).
class SkewedCostModel final : public CostModel {
public:
  [[nodiscard]] double block_entry_cost(const Function& fn,
                                        BlockId block) const override {
    return 1.0 + 0.37 * static_cast<double>(block) +
           0.061 * static_cast<double>(fn.block(block).traits.total_ops());
  }
  [[nodiscard]] double counter_cost() const override { return 2.25; }
};

FuzzOptions variant_options(int variant) {
  FuzzOptions o;
  switch (variant) {
    case 0:
      break;  // defaults
    case 1:   // deeper control flow
      o.max_depth = 4;
      o.max_stmts = 7;
      o.loop_prob = 0.4;
      break;
    case 2:  // pointer/array heavy, small buffers
      o.arrays = 3;
      o.pointers = 2;
      o.array_size = 8;
      break;
    default:  // expression heavy
      o.max_expr_depth = 5;
      o.max_stmts = 6;
      o.if_prob = 0.4;
      break;
  }
  return o;
}

// 125 seeds x 4 fuzz-option variants = 500 distinct random programs.
class BytecodeDifferentialFuzz : public ::testing::TestWithParam<int> {};

TEST_P(BytecodeDifferentialFuzz, MatchesInterpreterBitForBit) {
  const int seed = GetParam();
  for (int variant = 0; variant < 4; ++variant) {
    const std::uint64_t fn_seed =
        static_cast<std::uint64_t>(seed) * 4 + variant + 17;
    const Function fn = fuzz_function(fn_seed, variant_options(variant));
    const std::string tag =
        "seed " + std::to_string(seed) + " variant " + std::to_string(variant);
    expect_engines_agree(fn, fn_seed + 5, UnitCostModel{}, true, tag);
  }
}

TEST_P(BytecodeDifferentialFuzz, MatchesUnderSkewedCostModel) {
  const int seed = GetParam();
  const std::uint64_t fn_seed = static_cast<std::uint64_t>(seed) + 9000;
  const Function fn = fuzz_function(fn_seed, variant_options(seed % 4));
  expect_engines_agree(fn, fn_seed, SkewedCostModel{}, true,
                       "skewed seed " + std::to_string(seed));
}

TEST_P(BytecodeDifferentialFuzz, MatchesWithoutBlockRecording) {
  const int seed = GetParam();
  const std::uint64_t fn_seed = static_cast<std::uint64_t>(seed) + 21000;
  const Function fn = fuzz_function(fn_seed, variant_options(seed % 4));
  expect_engines_agree(fn, fn_seed + 1, UnitCostModel{}, false,
                       "noblocks seed " + std::to_string(seed));
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, BytecodeDifferentialFuzz,
                         ::testing::Range(0, 125));

TEST(Bytecode, CallHandlerParityIncludingMemoryMutation) {
  FunctionBuilder b("with_calls");
  const VarId n = b.param_scalar("n");
  const VarId a = b.array("a", 16, true);
  const VarId i = b.scalar("i");
  b.counter(0);
  b.for_loop(i, b.c(0.0), b.v(n), [&] {
    b.call("sin", {b.v(i), b.at(a, b.mod(b.v(i), b.c(16.0)))});
    b.counter(1);
    b.store(a, b.mod(b.v(i), b.c(16.0)), b.add(b.v(i), b.c(0.5)));
  });
  b.call("mystery", {b.v(n)});
  const Function fn = b.build();

  struct CallEvent {
    std::string callee;
    std::vector<double> args;
    bool operator==(const CallEvent&) const = default;
  };

  auto run_engine = [&](bool use_vm, std::vector<CallEvent>& calls,
                        Memory& mem) {
    InterpreterOptions opts;
    // The handler mutates memory so the VM must observe handler writes and
    // keep working if a buffer is reallocated under it.
    opts.call_handler = [&](const std::string& callee,
                            const std::vector<double>& args,
                            Memory& m) -> double {
      calls.push_back({callee, args});
      m.scalar(i) = m.scalar(i);  // benign touch
      if (callee == "mystery") m.array(a).resize(24, -1.0);
      m.array(a)[static_cast<std::size_t>(calls.size()) % 16] += 0.25;
      return 7.5 + static_cast<double>(args.size());
    };
    mem = Memory::for_function(fn);
    mem.scalar(n) = 6.0;
    if (use_vm) {
      const BytecodeProgram prog = BytecodeProgram::compile(fn);
      return BytecodeVm(prog, opts).run(mem);
    }
    return Interpreter(fn, opts).run(mem);
  };

  std::vector<CallEvent> icalls, vcalls;
  Memory imem, vmem;
  const RunResult ir = run_engine(false, icalls, imem);
  const RunResult vr = run_engine(true, vcalls, vmem);
  expect_same_result(ir, vr, "call handler");
  expect_same_memory(imem, vmem, "call handler");
  EXPECT_TRUE(icalls == vcalls);
  EXPECT_EQ(ir.counters.size(), 2u);
  EXPECT_EQ(ir.counters[1], 6u);
}

TEST(Bytecode, DefaultCallCostParity) {
  FunctionBuilder b("intrinsics");
  const VarId x = b.scalar("x", true);
  b.call("sin", {b.c(1.0)});
  b.call("log", {b.c(2.0)});
  b.call("frobnicate", {b.c(3.0), b.c(4.0)});
  b.assign(x, b.c(1.0));
  const Function fn = b.build();

  Memory m1 = Memory::for_function(fn);
  Memory m2 = Memory::for_function(fn);
  const RunResult ir = Interpreter(fn).run(m1);
  const RunResult vr = BytecodeVm(BytecodeProgram::compile(fn)).run(m2);
  expect_same_result(ir, vr, "default call cost");
  // 20 + 20 + 50 from the shared default handler.
  EXPECT_EQ(ir.cycles, vr.cycles);
}

TEST(Bytecode, StepLimitFiresIdentically) {
  FunctionBuilder b("long_loop");
  const VarId i = b.scalar("i");
  const VarId s = b.scalar("s", true);
  b.for_loop(i, b.c(0.0), b.c(1.0e6), [&] {
    b.assign(s, b.add(b.v(s), b.v(i)));
  });
  const Function fn = b.build();

  InterpreterOptions opts;
  opts.max_steps = 1234;

  Memory imem = Memory::for_function(fn);
  std::string interp_msg;
  try {
    Interpreter(fn, opts).run(imem);
    FAIL() << "interpreter did not hit the step limit";
  } catch (const support::CheckError& e) {
    interp_msg = e.what();
  }

  Memory vmem = Memory::for_function(fn);
  std::string vm_msg;
  try {
    BytecodeVm(BytecodeProgram::compile(fn), opts).run(vmem);
    FAIL() << "VM did not hit the step limit";
  } catch (const support::CheckError& e) {
    vm_msg = e.what();
  }

  EXPECT_EQ(error_payload(interp_msg), error_payload(vm_msg));
  EXPECT_NE(interp_msg.find("interpreter step limit exceeded in long_loop"),
            std::string::npos);
  // Both engines stopped after the same statement prefix.
  expect_same_memory(imem, vmem, "step limit");
}

TEST(Bytecode, OutOfBoundsAndDivByZeroParity) {
  {
    FunctionBuilder b("oob");
    const VarId a = b.array("a", 8, true);
    const VarId k = b.param_scalar("k");
    b.store(a, b.v(k), b.c(1.0));
    const Function fn = b.build();

    auto message_of = [&](auto&& run) -> std::string {
      try {
        run();
      } catch (const support::CheckError& e) {
        return e.what();
      }
      return "(no error)";
    };
    Memory m1 = Memory::for_function(fn);
    m1.scalar(k) = 100.0;
    Memory m2 = Memory::for_function(fn);
    m2.scalar(k) = 100.0;
    const std::string im =
        message_of([&] { Interpreter(fn).run(m1); });
    const std::string vm =
        message_of([&] { BytecodeVm(BytecodeProgram::compile(fn)).run(m2); });
    EXPECT_EQ(error_payload(im), error_payload(vm));
    EXPECT_NE(im.find("array index out of bounds: a[100] size 8 in oob"),
              std::string::npos);
  }
  {
    FunctionBuilder b("divz");
    const VarId x = b.scalar("x", true);
    const VarId d = b.param_scalar("d");
    b.assign(x, b.div(b.c(1.0), b.v(d)));
    const Function fn = b.build();
    Memory m1 = Memory::for_function(fn);
    Memory m2 = Memory::for_function(fn);
    std::string im, vm;
    try {
      Interpreter(fn).run(m1);
    } catch (const support::CheckError& e) {
      im = e.what();
    }
    try {
      BytecodeVm(BytecodeProgram::compile(fn)).run(m2);
    } catch (const support::CheckError& e) {
      vm = e.what();
    }
    EXPECT_EQ(error_payload(im), error_payload(vm));
    EXPECT_NE(im.find("division by zero in divz"), std::string::npos);
  }
}

TEST(Bytecode, ShortCircuitSkipsRhsErrors) {
  // (0 && 1/0) and (1 || 1/0) must not raise in either engine; the
  // non-short-circuit variants must raise in both.
  FunctionBuilder b("shortcircuit");
  const VarId x = b.scalar("x", true);
  const VarId y = b.scalar("y", true);
  b.assign(x, b.land(b.c(0.0), b.div(b.c(1.0), b.c(0.0))));
  b.assign(y, b.lor(b.c(1.0), b.div(b.c(1.0), b.c(0.0))));
  const Function fn = b.build();

  Memory m1 = Memory::for_function(fn);
  Memory m2 = Memory::for_function(fn);
  const RunResult ir = Interpreter(fn).run(m1);
  const RunResult vr = BytecodeVm(BytecodeProgram::compile(fn)).run(m2);
  expect_same_result(ir, vr, "short circuit");
  expect_same_memory(m1, m2, "short circuit");
  EXPECT_EQ(m1.scalar(x), 0.0);
  EXPECT_EQ(m1.scalar(y), 1.0);
}

TEST(Bytecode, FoldsProvablySafeBoundsChecks) {
  FunctionBuilder b("foldable");
  const VarId a = b.array("a", 16, true);
  b.store(a, b.c(3.0), b.c(1.0));                    // constant: foldable
  b.store(a, b.add(b.c(2.0), b.c(5.0)), b.c(2.0));   // const arith: foldable
  const Function fn = b.build();

  const BytecodeProgram folded = BytecodeProgram::compile(fn);
  EXPECT_EQ(folded.stats().array_accesses, 2u);
  EXPECT_EQ(folded.stats().bounds_checks_folded, 2u);

  BytecodeOptions off;
  off.fold_bounds_checks = false;
  const BytecodeProgram unfolded = BytecodeProgram::compile(fn, off);
  EXPECT_EQ(unfolded.stats().bounds_checks_folded, 0u);

  Memory m1 = Memory::for_function(fn);
  Memory m2 = Memory::for_function(fn);
  BytecodeVm(folded).run(m1);
  BytecodeVm(unfolded).run(m2);
  expect_same_memory(m1, m2, "fold vs no fold");
}

TEST(Bytecode, NeverFoldsUnprovableChecks) {
  FunctionBuilder b("unprovable");
  const VarId a = b.array("a", 16, true);
  const VarId k = b.param_scalar("k");  // unbounded at entry
  b.store(a, b.v(k), b.c(1.0));
  const Function fn = b.build();
  const BytecodeProgram prog = BytecodeProgram::compile(fn);
  EXPECT_EQ(prog.stats().array_accesses, 1u);
  EXPECT_EQ(prog.stats().bounds_checks_folded, 0u);
}

TEST(Bytecode, DisassembleListsEveryInstruction) {
  const Function fn = fuzz_function(42);
  const BytecodeProgram prog = BytecodeProgram::compile(fn);
  const std::string listing = prog.disassemble();
  EXPECT_NE(listing.find(fn.name()), std::string::npos);
  EXPECT_GT(prog.stats().instructions, 0u);
  EXPECT_EQ(prog.code().size(), prog.stats().instructions);
}

}  // namespace
}  // namespace peak::ir
