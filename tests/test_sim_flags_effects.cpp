#include <gtest/gtest.h>

#include "search/opt_config.hpp"
#include "sim/flag_effects.hpp"
#include "sim/machine.hpp"
#include "workloads/workload.hpp"

namespace peak::sim {
namespace {

using search::FlagConfig;
using search::gcc33_o3_space;
using search::OptimizationSpace;

TEST(FlagSpace, Gcc33Has38Options) {
  const OptimizationSpace& space = gcc33_o3_space();
  EXPECT_EQ(space.size(), 38u);
  // Spot-check the documented flags and their introduction levels.
  ASSERT_TRUE(space.index_of("-fstrict-aliasing").has_value());
  EXPECT_EQ(space.flag(*space.index_of("-fstrict-aliasing")).opt_level, 2);
  ASSERT_TRUE(space.index_of("-finline-functions").has_value());
  EXPECT_EQ(space.flag(*space.index_of("-finline-functions")).opt_level, 3);
  ASSERT_TRUE(space.index_of("-fdefer-pop").has_value());
  EXPECT_EQ(space.flag(*space.index_of("-fdefer-pop")).opt_level, 1);
  EXPECT_FALSE(space.index_of("-fnot-a-flag").has_value());
  // 9 at -O1, 27 more at -O2, 2 more at -O3.
  int by_level[4] = {};
  for (std::size_t i = 0; i < space.size(); ++i)
    ++by_level[space.flag(i).opt_level];
  EXPECT_EQ(by_level[1], 9);
  EXPECT_EQ(by_level[2], 27);
  EXPECT_EQ(by_level[3], 2);
}

TEST(FlagConfig, BasicOperations) {
  const OptimizationSpace& space = gcc33_o3_space();
  FlagConfig cfg = search::o3_config(space);
  EXPECT_EQ(cfg.count_enabled(), 38u);
  const std::size_t sa = *space.index_of("-fstrict-aliasing");
  const FlagConfig without = cfg.with(sa, false);
  EXPECT_EQ(without.count_enabled(), 37u);
  EXPECT_TRUE(cfg.enabled(sa));
  EXPECT_FALSE(without.enabled(sa));
  EXPECT_NE(cfg.key(), without.key());
  EXPECT_EQ(without.describe(space, /*invert=*/true), "-fstrict-aliasing");
  EXPECT_EQ(search::baseline_config(space).count_enabled(), 0u);
}

class EffectModelTest : public ::testing::Test {
protected:
  const OptimizationSpace& space_ = gcc33_o3_space();
  FlagEffectModel model_{space_};
  MachineModel sparc_ = sparc2();
  MachineModel p4_ = pentium4();

  TsTraits art_traits() {
    return workloads::make_workload("ART")->traits();
  }
};

TEST_F(EffectModelTest, Deterministic) {
  const TsTraits art = art_traits();
  const FlagConfig o3 = search::o3_config(space_);
  EXPECT_DOUBLE_EQ(model_.time_multiplier(art, p4_, o3),
                   model_.time_multiplier(art, p4_, o3));
}

TEST_F(EffectModelTest, StrictAliasingStory) {
  // Section 5.2: strict aliasing devastates ART on the Pentium 4 (register
  // pressure → spills) but helps on the SPARC II.
  const TsTraits art = art_traits();
  const std::size_t sa = *space_.index_of("-fstrict-aliasing");
  EXPECT_GT(model_.flag_effect(art, p4_, sa), 2.0);   // big penalty
  EXPECT_LT(model_.flag_effect(art, sparc_, sa), 1.0);  // benefit
}

TEST_F(EffectModelTest, DisablingStrictAliasingYields178PercentShape) {
  const TsTraits art = art_traits();
  const FlagConfig o3 = search::o3_config(space_);
  const FlagConfig no_sa =
      o3.with(*space_.index_of("-fstrict-aliasing"), false);
  const double ratio = model_.time_multiplier(art, p4_, o3) /
                       model_.time_multiplier(art, p4_, no_sa);
  // Improvement (ratio - 1) should be in the vicinity of the paper's 178%.
  EXPECT_GT(ratio, 2.2);
  EXPECT_LT(ratio, 3.4);
}

TEST_F(EffectModelTest, WorkloadScaleFlipsTrainRefEffects) {
  // MGRID/-fgcse-lm on SPARC II helps the small train grids but hurts ref.
  TsTraits mgrid = workloads::make_workload("MGRID")->traits();
  const std::size_t flag = *space_.index_of("-fgcse-lm");
  mgrid.workload_scale = 0.3;  // train
  EXPECT_LT(model_.flag_effect(mgrid, sparc_, flag), 1.0);
  mgrid.workload_scale = 1.0;  // ref
  EXPECT_GT(model_.flag_effect(mgrid, sparc_, flag), 1.0);
}

TEST_F(EffectModelTest, MultiplierComposesPerFlagEffects) {
  const TsTraits art = art_traits();
  FlagConfig one(space_);
  const std::size_t f = *space_.index_of("-fgcse");
  one.set(f, true);
  // With interactions only active for pairs, a single flag's multiplier is
  // its per-flag effect.
  EXPECT_NEAR(model_.time_multiplier(art, sparc_, one),
              model_.flag_effect(art, sparc_, f), 1e-12);
}

TEST_F(EffectModelTest, BaselineMultiplierIsOne) {
  const TsTraits art = art_traits();
  EXPECT_DOUBLE_EQ(
      model_.time_multiplier(art, sparc_, search::baseline_config(space_)),
      1.0);
}

TEST_F(EffectModelTest, SomeFlagsHarmfulPerSection) {
  // The paper's premise: O3 is rarely optimal — each section sees a few
  // mildly harmful options.
  const TsTraits traits = workloads::make_workload("SWIM")->traits();
  int harmful = 0;
  for (std::size_t f = 0; f < space_.size(); ++f)
    if (model_.flag_effect(traits, p4_, f) > 1.0) ++harmful;
  EXPECT_GE(harmful, 3);
  EXPECT_LE(harmful, 25);
}

TEST_F(EffectModelTest, O3UsuallyFasterThanUnoptimized) {
  for (const char* bench : {"SWIM", "MGRID", "EQUAKE", "BZIP2"}) {
    const TsTraits t = workloads::make_workload(bench)->traits();
    EXPECT_LT(model_.time_multiplier(t, sparc_, search::o3_config(space_)),
              1.0)
        << bench;
  }
}

TEST_F(EffectModelTest, DifferentSeedsGiveDifferentJitter) {
  FlagEffectModel other(space_, 0x1234);
  const TsTraits t = workloads::make_workload("SWIM")->traits();
  const std::size_t f = *space_.index_of("-fpeephole2");
  EXPECT_NE(model_.flag_effect(t, sparc_, f),
            other.flag_effect(t, sparc_, f));
}

TEST(DerivedTraits, ReflectOpMix) {
  auto w = workloads::make_workload("SWIM");
  const TsTraits t = derive_traits(w->function(), "SWIM");
  EXPECT_GT(t.fp_intensity, 0.1);  // FP-heavy stencil
  EXPECT_LT(t.branchiness, 0.25);
  EXPECT_EQ(t.key, "SWIM.calc3");
}

}  // namespace
}  // namespace peak::sim
