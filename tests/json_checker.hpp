#pragma once

/// \file json_checker.hpp
/// Minimal recursive-descent JSON validity checker — enough for tests to
/// prove the exporters emit well-formed documents without pulling in a
/// JSON dependency. Header-only; shared by the obs test files.

#include <cctype>
#include <cstddef>
#include <string_view>

namespace peak::testutil {

class JsonChecker {
public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace peak::testutil
