#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "sim/cache_model.hpp"
#include "sim/machine.hpp"
#include "sim/perturbation.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace peak::sim {
namespace {

TEST(Machine, PresetsReflectArchitectures) {
  const MachineModel s = sparc2();
  const MachineModel p = pentium4();
  EXPECT_GT(s.int_registers, p.int_registers);  // the ART story hinges on this
  EXPECT_GT(p.mispredict_penalty, s.mispredict_penalty);  // deep pipeline
  EXPECT_NE(s.name, p.name);
}

TEST(MachineCostModel, PricesOpMix) {
  ir::FunctionBuilder b("cost");
  const auto a = b.param_array("a", 8, true);
  const auto x = b.scalar("x", true);
  b.assign(x, b.add(b.at(a, b.c(0.0)), b.at(a, b.c(1.0))));  // 2 loads + fp
  b.store(a, b.c(2.0), b.v(x));                              // 1 store
  const ir::Function fn = b.build();

  const MachineModel m = sparc2();
  const MachineCostModel cost(m);
  const double entry = cost.block_entry_cost(fn, fn.entry());
  // 1 (entry) + 2 loads + 1 store + fp ops for add and the two moves.
  EXPECT_GT(entry, 1.0 + 2 * m.load_cost + m.store_cost);
  EXPECT_LT(entry, 40.0);
  EXPECT_DOUBLE_EQ(cost.counter_cost(), m.counter_cost);
}

TEST(SetAssocCache, ColdMissesThenHits) {
  SetAssocCache cache(1024, 64, 2);  // 8 sets
  for (std::uint64_t a = 0; a < 1024; a += 64) EXPECT_FALSE(cache.access(a));
  for (std::uint64_t a = 0; a < 1024; a += 64) EXPECT_TRUE(cache.access(a));
  EXPECT_EQ(cache.hits(), 16u);
  EXPECT_EQ(cache.misses(), 16u);
}

TEST(SetAssocCache, LruEviction) {
  SetAssocCache cache(2 * 64, 64, 2);  // a single set, 2 ways
  EXPECT_FALSE(cache.access(0));       // line A
  EXPECT_FALSE(cache.access(64));      // line B
  EXPECT_TRUE(cache.access(0));        // A again: A is MRU
  EXPECT_FALSE(cache.access(128));     // line C evicts B (LRU)
  EXPECT_TRUE(cache.access(0));        // A survives
  EXPECT_FALSE(cache.access(64));      // B was evicted
}

TEST(SetAssocCache, FlushClearsState) {
  SetAssocCache cache(1024, 64, 2);
  cache.access(0);
  cache.access(0);
  cache.flush();
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_FALSE(cache.access(0));
}

TEST(SetAssocCache, RejectsBadGeometry) {
  EXPECT_THROW(SetAssocCache(1000, 64, 2), support::CheckError);
  EXPECT_THROW(SetAssocCache(0, 64, 2), support::CheckError);
}

TEST(WarmthModel, ColdThenWarm) {
  WarmthModel warmth(0.25, 0.9);
  warmth.on_new_data();
  const double first = warmth.execute();
  const double second = warmth.execute();
  EXPECT_GT(first, second);        // cold start is slower
  EXPECT_NEAR(first, 1.25, 1e-12); // fully cold
  EXPECT_LT(second, 1.05);
}

TEST(WarmthModel, RestorePartiallyWarms) {
  WarmthModel warmth(0.25, 0.9);
  warmth.on_new_data();
  warmth.on_restore();  // restore streams data through the cache
  const double t = warmth.execute();
  EXPECT_LT(t, 1.25);
  EXPECT_GT(t, 1.0);
}

TEST(Perturbation, MultiplicativeNoiseCentersOnOne) {
  NoiseProfile profile;
  profile.sigma = 0.01;
  profile.outlier_prob = 0.0;
  Perturbation noise(profile, support::Rng(3));
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += noise.sample();
  EXPECT_NEAR(sum / n, 1.0, 0.005);
}

TEST(Perturbation, OutliersAtConfiguredRate) {
  NoiseProfile profile;
  profile.sigma = 0.001;
  profile.outlier_prob = 0.01;
  profile.outlier_scale_lo = 2.0;
  profile.outlier_scale_hi = 3.0;
  Perturbation noise(profile, support::Rng(4));
  int spikes = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    if (noise.sample() > 1.5) ++spikes;
  EXPECT_NEAR(static_cast<double>(spikes) / n, 0.01, 0.002);
}

TEST(Perturbation, AdditiveNoiseNonNegative) {
  NoiseProfile profile;
  Perturbation noise(profile, support::Rng(5));
  for (int i = 0; i < 1000; ++i) EXPECT_GE(noise.sample_additive(), 0.0);
}

TEST(Perturbation, ScaleSigmaAffectsSpread) {
  NoiseProfile profile;
  profile.sigma = 0.01;
  profile.outlier_prob = 0.0;
  Perturbation base(profile, support::Rng(6));
  Perturbation scaled(profile, support::Rng(6));
  scaled.scale_sigma(5.0);
  double dev_base = 0.0, dev_scaled = 0.0;
  for (int i = 0; i < 5000; ++i) {
    dev_base += std::fabs(base.sample() - 1.0);
    dev_scaled += std::fabs(scaled.sample() - 1.0);
  }
  EXPECT_GT(dev_scaled, 3.0 * dev_base);
}

}  // namespace
}  // namespace peak::sim
