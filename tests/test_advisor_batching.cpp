#include <gtest/gtest.h>

#include "core/peak.hpp"
#include "core/profile.hpp"
#include "core/tuning_driver.hpp"
#include "search/advisor.hpp"
#include "search/combined_elimination.hpp"
#include "sim/exec_backend.hpp"
#include "workloads/workload.hpp"

namespace peak {
namespace {

TEST(Advisor, FindsTheArtStrictAliasingHazard) {
  const auto& space = search::gcc33_o3_space();
  const auto art = workloads::make_workload("ART");
  const search::AdvisorVerdict verdict =
      search::advise(space, art->traits(), sim::pentium4());
  EXPECT_FALSE(
      verdict.recommended.enabled(*space.index_of("-fstrict-aliasing")));
  EXPECT_FALSE(verdict.reasoning.empty());
}

TEST(Advisor, LeavesStrictAliasingOnRegisterRichMachines) {
  const auto& space = search::gcc33_o3_space();
  const auto art = workloads::make_workload("ART");
  const search::AdvisorVerdict verdict =
      search::advise(space, art->traits(), sim::sparc2());
  EXPECT_TRUE(
      verdict.recommended.enabled(*space.index_of("-fstrict-aliasing")));
}

TEST(Advisor, QuietOnWellBehavedSections) {
  const auto& space = search::gcc33_o3_space();
  const auto swim = workloads::make_workload("SWIM");
  const search::AdvisorVerdict verdict =
      search::advise(space, swim->traits(), sim::sparc2());
  // SPARC II has registers to spare: nothing to warn about.
  EXPECT_EQ(verdict.recommended, search::o3_config(space));
}

TEST(RbrBatching, AmortizesOverheadPerPair) {
  const auto workload = workloads::make_workload("ART");
  const workloads::Trace trace =
      workload->trace(workloads::DataSet::kTrain, 3);
  const auto& space = search::gcc33_o3_space();
  const sim::FlagEffectModel effects(space);
  const search::FlagConfig o3 = search::o3_config(space);

  auto overhead_per_pair = [&](std::size_t batch) {
    sim::SimExecutionBackend backend(workload->function(),
                                     workload->traits(), sim::sparc2(),
                                     effects, 9);
    backend.set_checkpoint_bytes(65536, 8192);
    sim::RbrOptions opts;
    opts.batch_pairs = batch;
    double overhead = 0.0;
    std::size_t pairs = 0;
    for (std::size_t i = 0; i < 40; ++i) {
      for (const auto& pair : backend.invoke_rbr_batch(
               o3, o3, trace.invocations[i % trace.invocations.size()],
               opts)) {
        overhead += pair.overhead;
        ++pairs;
      }
    }
    return overhead / static_cast<double>(pairs);
  };

  const double unbatched = overhead_per_pair(1);
  const double batched = overhead_per_pair(4);
  // Batching drops the save + precondition cost from 3 of every 4 pairs.
  EXPECT_LT(batched, 0.9 * unbatched);
}

TEST(RbrBatching, RatiosStayUnbiased) {
  const auto workload = workloads::make_workload("MCF");
  const workloads::Trace trace =
      workload->trace(workloads::DataSet::kTrain, 3);
  const auto& space = search::gcc33_o3_space();
  const sim::FlagEffectModel effects(space);
  const search::FlagConfig o3 = search::o3_config(space);

  sim::SimExecutionBackend backend(workload->function(),
                                   workload->traits(), sim::sparc2(),
                                   effects, 10);
  sim::RbrOptions opts;
  opts.batch_pairs = 4;
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    for (const auto& pair : backend.invoke_rbr_batch(
             o3, o3, trace.invocations[i % trace.invocations.size()],
             opts)) {
      sum += pair.time_best / pair.time_exp;
      ++n;
    }
  }
  EXPECT_NEAR(sum / static_cast<double>(n), 1.0, 0.02);
}

TEST(PluggableSearch, DriverAcceptsCombinedElimination) {
  const auto workload = workloads::make_workload("SWIM");
  const workloads::Trace train =
      workload->trace(workloads::DataSet::kTrain, 42);
  const sim::MachineModel machine = sim::sparc2();
  const core::ProfileData profile =
      core::profile_workload(*workload, train, machine);
  const sim::FlagEffectModel effects(search::gcc33_o3_space());

  core::DriverOptions options;
  options.search_algorithm =
      std::make_shared<search::CombinedElimination>(1.01);
  core::TuningDriver driver(*workload, profile, train, machine, effects,
                            options);
  const core::TuningOutcome outcome = driver.tune(rating::Method::kCBR);
  // CE must find the planted SWIM stories just like IE does.
  const auto& space = search::gcc33_o3_space();
  EXPECT_FALSE(
      outcome.best_config.enabled(*space.index_of("-fschedule-insns")));
  EXPECT_GT(outcome.search_improvement, 1.03);
}

TEST(PluggableSearch, BatchedRbrTuningReachesSameWinner) {
  const auto workload = workloads::make_workload("ART");
  const workloads::Trace train =
      workload->trace(workloads::DataSet::kTrain, 42);
  const sim::MachineModel machine = sim::pentium4();
  const core::ProfileData profile =
      core::profile_workload(*workload, train, machine);
  const sim::FlagEffectModel effects(search::gcc33_o3_space());

  core::DriverOptions options;
  options.rbr_batch_pairs = 4;
  core::TuningDriver driver(*workload, profile, train, machine, effects,
                            options);
  const core::TuningOutcome outcome = driver.tune(rating::Method::kRBR);
  const auto& space = search::gcc33_o3_space();
  EXPECT_FALSE(
      outcome.best_config.enabled(*space.index_of("-fstrict-aliasing")));
}

}  // namespace
}  // namespace peak
