#include <gtest/gtest.h>

#include "core/profile.hpp"
#include "ir/interpreter.hpp"
#include "sim/machine.hpp"
#include "workloads/workload.hpp"

namespace peak::workloads {
namespace {

std::vector<std::string> workload_names() {
  std::vector<std::string> names;
  for (const auto& w : all_workloads()) names.push_back(w->benchmark());
  return names;
}

class WorkloadSweep : public ::testing::TestWithParam<std::string> {
protected:
  std::unique_ptr<Workload> workload_ = make_workload(GetParam());
};

TEST_P(WorkloadSweep, FunctionIsWellFormed) {
  ASSERT_NE(workload_, nullptr);
  const ir::Function& fn = workload_->function();
  EXPECT_TRUE(fn.finalized());
  EXPECT_GT(fn.num_blocks(), 1u);
  EXPECT_FALSE(fn.params().empty());
  EXPECT_FALSE(workload_->ts_name().empty());
  EXPECT_GT(workload_->paper_invocations(), 0u);
  EXPECT_GT(workload_->ts_time_fraction(), 0.0);
  EXPECT_LE(workload_->ts_time_fraction(), 1.0);
}

TEST_P(WorkloadSweep, TraceBindsAndRuns) {
  const Trace train = workload_->trace(DataSet::kTrain, 99);
  ASSERT_GT(train.invocations.size(), 100u);
  const ir::Function& fn = workload_->function();
  const ir::Interpreter interp(fn);
  // Run the first few invocations through the interpreter for real.
  for (std::size_t i = 0; i < 3; ++i) {
    ir::Memory mem = ir::Memory::for_function(fn);
    train.invocations[i].bind(mem);
    const ir::RunResult run = interp.run(mem);
    EXPECT_GT(run.cycles, 0.0) << GetParam();
    EXPECT_GT(run.steps, 0u);
    EXPECT_GT(train.invocations[i].irregularity, 0.0);
  }
}

TEST_P(WorkloadSweep, RefTraceIsLargerScale) {
  const Trace train = workload_->trace(DataSet::kTrain, 99);
  const Trace ref = workload_->trace(DataSet::kRef, 99);
  EXPECT_GT(ref.workload_scale, train.workload_scale);
  EXPECT_GE(ref.invocations.size(), train.invocations.size());
}

TEST_P(WorkloadSweep, TracesAreSeedDeterministic) {
  const Trace a = workload_->trace(DataSet::kTrain, 7);
  const Trace b = workload_->trace(DataSet::kTrain, 7);
  ASSERT_EQ(a.invocations.size(), b.invocations.size());
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(a.invocations[i].context, b.invocations[i].context);
    EXPECT_DOUBLE_EQ(a.invocations[i].irregularity,
                     b.invocations[i].irregularity);
  }
}

TEST_P(WorkloadSweep, DerivedMethodMatchesTable1) {
  // The headline analysis test: the Figure 1 context analysis, the
  // run-time-constant check, the component analysis with its residual
  // gate, and the consultant must land on the same rating approach the
  // paper's Table 1 reports — for every tuning section, with nothing
  // hard-coded.
  const Trace train = workload_->trace(DataSet::kTrain, 42);
  const sim::MachineModel machine = sim::sparc2();
  const core::ProfileData profile =
      core::profile_workload(*workload_, train, machine);
  EXPECT_EQ(profile.decision.initial(), workload_->paper_method())
      << GetParam() << ": " << profile.decision.rationale;
}

TEST_P(WorkloadSweep, TraitsAreSane) {
  const sim::TsTraits t = workload_->traits();
  EXPECT_EQ(t.benchmark, GetParam());
  EXPECT_GE(t.branchiness, 0.0);
  EXPECT_LE(t.branchiness, 1.0);
  EXPECT_GT(t.noise_scale, 0.0);
  EXPECT_GT(t.reg_pressure, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllTable1Sections, WorkloadSweep,
    ::testing::ValuesIn(workload_names()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

TEST(WorkloadRegistry, FourteenSectionsInTableOrder) {
  const auto all = all_workloads();
  ASSERT_EQ(all.size(), 14u);
  EXPECT_EQ(all.front()->benchmark(), "BZIP2");   // first integer row
  EXPECT_EQ(all[6]->benchmark(), "APPLU");        // first FP row
  EXPECT_EQ(all.back()->benchmark(), "WUPWISE");  // last row
}

TEST(WorkloadRegistry, UnknownNameGivesNull) {
  EXPECT_EQ(make_workload("NOPE"), nullptr);
}

TEST(WorkloadRegistry, Figure7Benchmarks) {
  const auto f7 = figure7_benchmarks();
  ASSERT_EQ(f7.size(), 4u);
  for (const std::string& name : f7)
    EXPECT_NE(make_workload(name), nullptr) << name;
}

TEST(WorkloadContexts, MatchTable1ContextCounts) {
  // APSI.radb4 has three contexts, WUPWISE.zgemm two (Table 1's multi-row
  // entries); SWIM/EQUAKE/APPLU have one.
  auto count = [](const char* name) {
    auto w = make_workload(name);
    const Trace t = w->trace(DataSet::kTrain, 1);
    std::set<std::vector<double>> distinct;
    for (const auto& inv : t.invocations) distinct.insert(inv.context);
    return distinct.size();
  };
  EXPECT_EQ(count("APSI"), 3u);
  EXPECT_EQ(count("WUPWISE"), 2u);
  EXPECT_EQ(count("SWIM"), 1u);
  EXPECT_EQ(count("EQUAKE"), 1u);
  EXPECT_EQ(count("APPLU"), 1u);
}

TEST(WorkloadBehaviour, Bzip2ComparisonLengthIsDataDependent) {
  auto w = make_workload("BZIP2");
  const Trace t = w->trace(DataSet::kTrain, 5);
  const ir::Function& fn = w->function();
  const ir::Interpreter interp(fn);
  std::set<std::uint64_t> step_counts;
  for (std::size_t i = 0; i < 20; ++i) {
    ir::Memory mem = ir::Memory::for_function(fn);
    t.invocations[i].bind(mem);
    step_counts.insert(interp.run(mem).steps);
  }
  EXPECT_GT(step_counts.size(), 5u);  // genuinely irregular
}

TEST(WorkloadBehaviour, EquakeMeshIsRunTimeConstant) {
  auto w = make_workload("EQUAKE");
  const Trace t = w->trace(DataSet::kTrain, 5);
  const ir::Function& fn = w->function();
  const ir::VarId aindex = *fn.find_var("Aindex");
  ir::Memory m1 = ir::Memory::for_function(fn);
  ir::Memory m2 = ir::Memory::for_function(fn);
  t.invocations[0].bind(m1);
  t.invocations[17].bind(m2);
  EXPECT_EQ(m1.array(aindex), m2.array(aindex));  // same mesh every time
  // But the vector data differs per invocation.
  EXPECT_NE(m1.array(*fn.find_var("v")), m2.array(*fn.find_var("v")));
}

TEST(WorkloadBehaviour, ArtWinnerTakeAllWritesWinner) {
  auto w = make_workload("ART");
  const Trace t = w->trace(DataSet::kTrain, 5);
  const ir::Function& fn = w->function();
  ir::Memory mem = ir::Memory::for_function(fn);
  t.invocations[0].bind(mem);
  ir::Interpreter(fn).run(mem);
  // After match, exactly one F2 activation (the winner) was reset to 0.
  const auto& y = mem.array(*fn.find_var("y"));
  const double f2s = mem.scalar(*fn.find_var("numf2s"));
  int zeros = 0;
  for (std::size_t j = 0; j < static_cast<std::size_t>(f2s); ++j)
    zeros += y[j] == 0.0;
  EXPECT_EQ(zeros, 1);
}

}  // namespace
}  // namespace peak::workloads
