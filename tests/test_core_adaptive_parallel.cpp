#include <gtest/gtest.h>

#include "core/adaptive.hpp"
#include "core/parallel.hpp"
#include "workloads/workload.hpp"

namespace peak::core {
namespace {

class AdaptiveTest : public ::testing::Test {
protected:
  AdaptiveTest()
      : workload_(workloads::make_workload("MGRID")),
        machine_(sim::sparc2()),
        effects_(search::gcc33_o3_space()) {}

  std::unique_ptr<workloads::Workload> workload_;
  sim::MachineModel machine_;
  sim::FlagEffectModel effects_;
};

TEST_F(AdaptiveTest, ExperimentsSettleIntoMonitoring) {
  AdaptiveTuner tuner(*workload_, machine_, effects_, {}, 3);
  const workloads::Trace trace =
      workload_->trace(workloads::DataSet::kTrain, 3);
  std::size_t cursor = 0;
  for (int i = 0; i < 30000 &&
                  tuner.phase() == AdaptiveTuner::Phase::kExperiment;
       ++i)
    tuner.step(trace.invocations[cursor++ % trace.invocations.size()]);
  EXPECT_EQ(tuner.phase(), AdaptiveTuner::Phase::kMonitor);
  EXPECT_GT(tuner.experiments_run(), 0u);
  // The MGRID stories (-fcaller-saves etc.) should have been found.
  EXPECT_GE(tuner.promotions(), 1u);
  EXPECT_LT(tuner.versions().best().config.count_enabled(), 38u);
}

TEST_F(AdaptiveTest, MonitoringAddsNoExperimentOverhead) {
  AdaptiveTuner tuner(*workload_, machine_, effects_, {}, 3);
  const workloads::Trace trace =
      workload_->trace(workloads::DataSet::kTrain, 3);
  std::size_t cursor = 0;
  while (tuner.phase() == AdaptiveTuner::Phase::kExperiment)
    tuner.step(trace.invocations[cursor++ % trace.invocations.size()]);
  const std::size_t experiments = tuner.experiments_run();
  for (int i = 0; i < 500; ++i)
    tuner.step(trace.invocations[cursor++ % trace.invocations.size()]);
  EXPECT_EQ(tuner.experiments_run(), experiments);  // plain production
}

TEST_F(AdaptiveTest, PhaseChangeTriggersRetuneAndFlipsStoryFlag) {
  // Phase 1: train-scale grids — -fgcse-lm helps and must survive.
  // Phase 2: ref-scale grids — the same flag hurts and must be evicted
  // after the drift detector notices production slowing down.
  AdaptiveOptions options;
  options.drift_threshold = 0.02;  // the multiplier shift is a few percent
  options.drift_patience = 6;
  AdaptiveTuner tuner(*workload_, machine_, effects_, options, 3);
  const std::size_t gcse_lm =
      *search::gcc33_o3_space().index_of("-fgcse-lm");

  const workloads::Trace phase1 =
      workload_->trace(workloads::DataSet::kTrain, 3);
  tuner.set_workload_scale(phase1.workload_scale);
  std::size_t cursor = 0;
  while (tuner.phase() == AdaptiveTuner::Phase::kExperiment)
    tuner.step(phase1.invocations[cursor++ % phase1.invocations.size()]);
  // Let the monitor build its baselines.
  for (int i = 0; i < 3000; ++i)
    tuner.step(phase1.invocations[cursor++ % phase1.invocations.size()]);
  ASSERT_EQ(tuner.phase(), AdaptiveTuner::Phase::kMonitor);
  EXPECT_TRUE(tuner.versions().best().config.enabled(gcse_lm));

  // Phase change: same contexts would now run slower under the old best.
  tuner.set_workload_scale(1.0);
  std::size_t steps = 0;
  while (tuner.retunes_triggered() == 0 && steps < 5000) {
    tuner.step(phase1.invocations[cursor++ % phase1.invocations.size()]);
    ++steps;
  }
  EXPECT_GE(tuner.retunes_triggered(), 1u);

  // Re-tuning under the new phase evicts the now-harmful flag.
  while (tuner.phase() == AdaptiveTuner::Phase::kExperiment &&
         steps < 100000) {
    tuner.step(phase1.invocations[cursor++ % phase1.invocations.size()]);
    ++steps;
  }
  EXPECT_FALSE(tuner.versions().best().config.enabled(gcse_lm));
}

TEST(ParallelTuning, MatchesSequentialAndAggregates) {
  const sim::MachineModel machine = sim::sparc2();
  const auto swim = workloads::make_workload("SWIM");
  const auto mgrid = workloads::make_workload("MGRID");
  const std::vector<const workloads::Workload*> sections = {swim.get(),
                                                            mgrid.get()};

  const ApplicationOutcome parallel =
      tune_application(sections, machine, {}, /*threads=*/2);
  ASSERT_EQ(parallel.sections.size(), 2u);

  // Deterministic: a sequential run of the same pipeline agrees exactly.
  const auto swim2 = workloads::make_workload("SWIM");
  PeakOptions options;
  options.seed = support::hash_combine(PeakOptions{}.seed,
                                       support::stable_hash("SWIM"));
  Peak peak(machine, options);
  const MethodRun sequential = peak.tune_with_consultant(*swim2);
  EXPECT_DOUBLE_EQ(parallel.sections[0].run.ref_improvement_pct,
                   sequential.ref_improvement_pct);
  EXPECT_EQ(parallel.sections[0].run.best_config, sequential.best_config);

  // Whole-program aggregate: positive, and smaller than the best section's
  // improvement (Amdahl).
  const double app = parallel.whole_program_improvement_pct();
  EXPECT_GT(app, 0.0);
  double best_section = 0.0;
  for (const SectionOutcome& s : parallel.sections)
    best_section = std::max(best_section, s.run.ref_improvement_pct);
  EXPECT_LT(app, best_section);
}

TEST(ParallelTuning, EmptyApplication) {
  const ApplicationOutcome outcome =
      tune_application({}, sim::sparc2(), {}, 2);
  EXPECT_TRUE(outcome.sections.empty());
  EXPECT_DOUBLE_EQ(outcome.whole_program_improvement_pct(), 0.0);
}

}  // namespace
}  // namespace peak::core
