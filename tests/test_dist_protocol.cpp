#include <gtest/gtest.h>

#include <unistd.h>

#include <string>
#include <thread>
#include <vector>

#include "core/jsonl.hpp"
#include "core/remote_eval.hpp"
#include "dist/coordinator.hpp"
#include "dist/protocol.hpp"
#include "proc/protocol.hpp"
#include "support/tcp.hpp"

namespace peak::dist {
namespace {

/// The dist wire protocol under adversarial socket conditions: TCP hands
/// the reader arbitrary byte slices, so every frame boundary, partial
/// delivery, and corruption mode the transport can produce must be
/// classified correctly — and a coordinator must refuse a worker
/// speaking the wrong protocol version during the handshake, not
/// mid-round.
class DistProtocolTest : public ::testing::Test {
protected:
  static core::SessionSpec spec() {
    core::SessionSpec s;
    s.benchmark = "SWIM";
    s.machine = "sparc2";
    return s;
  }

  /// A representative task with bit-awkward memo doubles.
  static core::RemoteMemberTask task(std::size_t bits) {
    core::RemoteMemberTask t;
    t.method = rating::Method::kRBR;
    t.base_key = std::string(bits, '1');
    t.cfg_key = std::string(bits, '1');
    t.cfg_key[3] = '0';
    t.seed = 0x9e3779b97f4a7c15ULL;
    t.memo.emplace_back(t.base_key, 0.1);  // not exactly representable
    t.memo.emplace_back(t.cfg_key, 3.0e-17);
    return t;
  }
};

TEST_F(DistProtocolTest, FramesSurviveOneByteDelivery) {
  // Worst-case TCP segmentation: every byte arrives alone. All frames
  // must still come out intact and in order.
  const std::vector<std::string> payloads = {
      hello_frame("w1"), ready_frame(), heartbeat_frame(7),
      result_frame(3, "{\"r\":\"3ff0000000000000\"}"), bye_frame()};
  std::string stream;
  for (const std::string& p : payloads) stream += proc::encode_frame(p);

  proc::FrameReader reader;
  std::vector<std::string> out;
  for (char byte : stream) {
    reader.feed(&byte, 1);
    while (auto frame = reader.next()) out.push_back(*frame);
  }
  EXPECT_FALSE(reader.corrupted());
  EXPECT_EQ(reader.pending_bytes(), 0u);
  ASSERT_EQ(out.size(), payloads.size());
  for (std::size_t i = 0; i < payloads.size(); ++i)
    EXPECT_EQ(out[i], payloads[i]);
}

TEST_F(DistProtocolTest, FrameSplitAcrossReadsAtEveryOffset) {
  // One frame split into two read()s at every possible boundary,
  // including inside the hex length prefix.
  const std::string frame = proc::encode_frame(task_frame(42, 1, task(8)));
  for (std::size_t cut = 0; cut <= frame.size(); ++cut) {
    proc::FrameReader reader;
    reader.feed(frame.data(), cut);
    const bool early = reader.next().has_value();
    EXPECT_EQ(early, cut == frame.size()) << "cut " << cut;
    reader.feed(frame.data() + cut, frame.size() - cut);
    if (!early) {
      const auto payload = reader.next();
      ASSERT_TRUE(payload.has_value()) << "cut " << cut;
      EXPECT_EQ(*payload, task_frame(42, 1, task(8)));
    }
    EXPECT_FALSE(reader.corrupted());
    EXPECT_EQ(reader.pending_bytes(), 0u);
  }
}

TEST_F(DistProtocolTest, MidFrameDisconnectLeavesPendingBytes) {
  // A worker killed mid-write leaves a torn frame. The reader must say
  // "incomplete" (pending bytes, no frame, no corruption) — that is how
  // the coordinator tells a death from a protocol violation.
  const std::string frame = proc::encode_frame(result_frame(0, "{}"));
  proc::FrameReader reader;
  reader.feed(frame.data(), frame.size() / 2);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.corrupted());
  EXPECT_GT(reader.pending_bytes(), 0u);
}

TEST_F(DistProtocolTest, OversizedLengthPrefixIsCorruption) {
  // "ffffffff" decodes to 4 GiB — far past kMaxFramePayload. That is
  // garbage (e.g. a peer writing raw text), not a frame to wait for.
  proc::FrameReader reader;
  const std::string junk = "ffffffff";
  reader.feed(junk.data(), junk.size());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.corrupted());

  proc::FrameReader nonhex;
  const std::string text = "hello, not a frame";
  nonhex.feed(text.data(), text.size());
  EXPECT_FALSE(nonhex.next().has_value());
  EXPECT_TRUE(nonhex.corrupted());
}

TEST_F(DistProtocolTest, SessionSpecRoundTripsBitExact) {
  core::SessionSpec s = spec();
  s.dataset = "ref";
  s.trace_seed = 17;
  s.seed = 5;
  s.window.min_samples = 12;
  s.window.max_samples = 512;
  s.window.cv_threshold = 0.0071;
  s.window.outliers.rule = stats::OutlierRule::kSigma;
  s.window.outliers.k = 3.25;
  s.window.outliers.max_drop_fraction = 0.125;
  s.window.outliers.max_iterations = 4;
  s.mbr.min_samples_per_component = 3;
  s.mbr.max_samples = 96;
  s.mbr.var_threshold = 1e-9;
  s.mbr.cv_threshold = 0.011;
  s.mbr.dominant_share = 0.83;
  s.improved_rbr = false;
  s.rbr_batch_pairs = 4;

  const std::string json = serialize_session_spec(s);
  const core::SessionSpec back =
      parse_session_spec(core::jsonl::JsonParser(json).parse());
  EXPECT_EQ(back, s);
}

TEST_F(DistProtocolTest, TaskFrameRoundTripsBitExact) {
  const core::RemoteMemberTask t = task(38);
  const core::jsonl::JsonValue record =
      parse_frame(task_frame(9, 2, t));
  EXPECT_EQ(frame_op(record), "task");
  const TaskFrame back = parse_task_frame(record);
  EXPECT_EQ(back.id, 9u);
  EXPECT_EQ(back.attempt, 2u);
  EXPECT_EQ(back.task, t);
}

TEST_F(DistProtocolTest, VersionMismatchHandshakeIsRefused) {
  // A worker announcing a future protocol version must be refused with a
  // reason during the handshake; it never joins the fleet.
  DistPolicy short_wait;
  short_wait.connect_timeout = std::chrono::milliseconds(750);
  short_wait.update_worker_table = false;
  Coordinator coordinator(spec(), short_wait);
  std::string error;
  ASSERT_TRUE(coordinator.listen(0, /*loopback_only=*/true, &error))
      << error;

  std::string refusal;
  std::thread worker([&] {
    const int fd =
        support::tcp_connect("127.0.0.1", coordinator.port(), 2000, &error);
    ASSERT_GE(fd, 0) << error;
    ASSERT_TRUE(proc::write_frame(
        fd, "{\"op\":\"hello\",\"version\":99,\"name\":\"future\"}"));
    proc::FrameReader reader;
    char buf[4096];
    for (;;) {
      const ssize_t got = ::read(fd, buf, sizeof buf);
      if (got <= 0) break;  // coordinator hangs up after the refusal
      reader.feed(buf, static_cast<std::size_t>(got));
      if (auto frame = reader.next()) {
        refusal = *frame;
        break;
      }
    }
    ::close(fd);
  });

  // The fleet can never form from a refused worker; the wait must time
  // out rather than accept it.
  EXPECT_FALSE(coordinator.wait_for_fleet(&error));
  worker.join();

  const core::jsonl::JsonValue v =
      core::jsonl::JsonParser(refusal).parse();
  EXPECT_EQ(frame_op(v), "refuse");
  EXPECT_NE(v.at("reason").as_string().find("version"), std::string::npos);
  EXPECT_EQ(coordinator.fleet_size(), 0u);
  EXPECT_EQ(coordinator.stats().workers_connected, 0u);
}

}  // namespace
}  // namespace peak::dist
