#include <gtest/gtest.h>

#include <signal.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/profile.hpp"
#include "core/tuning_driver.hpp"
#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "proc/worker_table.hpp"
#include "workloads/workload.hpp"

namespace peak::core {
namespace {

/// Acceptance tests of the out-of-process rating sandbox: for every
/// --isolate-workers N >= 1 the TuningOutcome and journal bytes must be
/// bit-identical to the in-process batch path — including when workers
/// are killed by real signals or abort()ing injected faults mid-round.
class ProcDriverTest : public ::testing::Test {
protected:
  ProcDriverTest()
      : machine_(sim::sparc2()), effects_(search::gcc33_o3_space()) {}

  struct Setup {
    std::unique_ptr<workloads::Workload> workload;
    workloads::Trace train;
    ProfileData profile;
  };

  Setup setup(const std::string& name) {
    Setup s;
    s.workload = workloads::make_workload(name);
    s.train = s.workload->trace(workloads::DataSet::kTrain, 42);
    s.profile = profile_workload(*s.workload, s.train, machine_);
    return s;
  }

  TuningOutcome tune(const Setup& s, const DriverOptions& options,
                     rating::Method method) {
    TuningDriver driver(*s.workload, s.profile, s.train, machine_,
                        effects_, options);
    return driver.tune(method);
  }

  fault::FaultInjector sweep_injector(std::uint64_t seed) const {
    fault::FaultModel model;
    model.fault_prob = 0.05;
    model.seed = seed;
    fault::FaultInjector injector(model);
    injector.exempt(search::o3_config(effects_.space()));
    return injector;
  }

  /// Non-sticky hard crashes scripted against the first config Iterative
  /// Elimination probes, spread over the trace so RBR's pair sampling is
  /// guaranteed to hit at least one site (same recipe as the crash-sweep
  /// bench): the worker rating it abort()s once, the retry clears.
  fault::FaultInjector transient_crash_injector(const Setup& s) const {
    fault::FaultInjector injector;
    search::FlagConfig probed = search::o3_config(effects_.space());
    probed.set(0, false);
    const std::size_t n = s.train.invocations.size();
    for (std::size_t k = 0; k < 16; ++k) {
      fault::ScriptedFault sf;
      sf.config_key = probed.key();
      sf.invocation_id = s.train.invocations[k * n / 16].id;
      sf.kind = fault::FaultKind::kHardCrash;
      sf.sticky = false;
      injector.script(sf);
    }
    return injector;
  }

  static std::string temp_path(const std::string& name) {
    const std::string path = ::testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
  }

  static std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
  }

  static std::uint64_t counter(const std::string& name) {
    return obs::counter(name).value();
  }

  sim::MachineModel machine_;
  sim::FlagEffectModel effects_;
};

TEST_F(ProcDriverTest, IsolatedOutcomeBitIdenticalToSerialAcrossSeeds) {
  Setup s = setup("SWIM");
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE("seed " + std::to_string(seed));
    DriverOptions serial;
    serial.seed = seed;
    serial.search_threads = 1;
    const TuningOutcome one = tune(s, serial, rating::Method::kCBR);

    DriverOptions isolated;
    isolated.seed = seed;
    isolated.isolate_workers = 4;
    EXPECT_EQ(tune(s, isolated, rating::Method::kCBR), one);
  }
}

TEST_F(ProcDriverTest, IsolatedOutcomeIdenticalForRbrAndOddWorkerCounts) {
  Setup s = setup("ART");
  DriverOptions serial;
  serial.search_threads = 1;
  const TuningOutcome one = tune(s, serial, rating::Method::kRBR);
  for (unsigned workers : {1u, 3u}) {
    SCOPED_TRACE("workers " + std::to_string(workers));
    DriverOptions isolated;
    isolated.isolate_workers = workers;
    EXPECT_EQ(tune(s, isolated, rating::Method::kRBR), one);
  }
}

TEST_F(ProcDriverTest, IsolatedMatchesThreadedNotJustSerial) {
  Setup s = setup("SWIM");
  DriverOptions threaded;
  threaded.search_threads = 4;
  const TuningOutcome four = tune(s, threaded, rating::Method::kRBR);

  DriverOptions isolated;
  isolated.isolate_workers = 4;
  EXPECT_EQ(tune(s, isolated, rating::Method::kRBR), four);
}

TEST_F(ProcDriverTest, IsolatedJournalBytesIdenticalToThreaded) {
  Setup s = setup("SWIM");
  DriverOptions threaded;
  threaded.search_threads = 4;
  threaded.fault.journal_path = temp_path("peak_proc_journal_t4.jsonl");
  const TuningOutcome four = tune(s, threaded, rating::Method::kCBR);

  DriverOptions isolated;
  isolated.isolate_workers = 4;
  isolated.fault.journal_path = temp_path("peak_proc_journal_w4.jsonl");
  EXPECT_EQ(tune(s, isolated, rating::Method::kCBR), four);

  const std::string a = slurp(threaded.fault.journal_path);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, slurp(isolated.fault.journal_path));
}

TEST_F(ProcDriverTest, IsolatedOutcomeIdenticalUnderStochasticFaults) {
  Setup s = setup("SWIM");
  const fault::FaultInjector injector = sweep_injector(0xfaU);
  DriverOptions serial;
  serial.search_threads = 1;
  serial.fault.injector = &injector;
  TuningDriver one_driver(*s.workload, s.profile, s.train, machine_,
                          effects_, serial);
  const TuningOutcome one = one_driver.tune(rating::Method::kCBR);

  DriverOptions isolated = serial;
  isolated.search_threads = 0;
  isolated.isolate_workers = 4;
  TuningDriver iso_driver(*s.workload, s.profile, s.train, machine_,
                          effects_, isolated);
  EXPECT_EQ(iso_driver.tune(rating::Method::kCBR), one);

  // Quarantine verdicts (which configs, what kind, how many failures)
  // must also be process-isolation-invariant.
  const auto& a = one_driver.quarantine().entries();
  const auto& b = iso_driver.quarantine().entries();
  ASSERT_EQ(b.size(), a.size());
  for (const auto& [key, entry] : a) {
    const auto it = b.find(key);
    ASSERT_NE(it, b.end()) << key;
    EXPECT_EQ(it->second.kind, entry.kind) << key;
    EXPECT_EQ(it->second.failures, entry.failures) << key;
    EXPECT_EQ(it->second.quarantined, entry.quarantined) << key;
  }
}

TEST_F(ProcDriverTest, SurvivedTransientHardCrashLeavesNoTrace) {
  Setup s = setup("SWIM");
  // Crash-free comparator with the same guarded-rating wiring: an
  // injector that never fires. (A null injector would skip the guarded
  // executor entirely and change cost accounting.)
  const fault::FaultInjector inert;
  DriverOptions plain;
  plain.search_threads = 4;
  plain.fault.injector = &inert;
  const TuningOutcome baseline = tune(s, plain, rating::Method::kRBR);

  const fault::FaultInjector crasher = transient_crash_injector(s);
  DriverOptions isolated;
  isolated.isolate_workers = 4;
  isolated.fault.injector = &crasher;
  TuningDriver driver(*s.workload, s.profile, s.train, machine_,
                      effects_, isolated);
  const std::uint64_t before = counter("proc.workers.respawned");
  const TuningOutcome outcome = driver.tune(rating::Method::kRBR);

  // Real abort()s happened (a worker died and was re-forked)...
  EXPECT_GE(counter("proc.workers.respawned"), before + 1);
  // ...and yet nothing distinguishes the outcome from a crash-free run:
  // not the winner, not the cost, not the event stream, and nothing was
  // quarantined or journaled about the crash.
  EXPECT_EQ(outcome, baseline);
  EXPECT_TRUE(driver.quarantine().entries().empty());
}

TEST_F(ProcDriverTest, DeterministicHardCrashersAreQuarantined) {
  Setup s = setup("SWIM");
  fault::FaultModel model;
  model.fault_prob = 0.08;
  model.crash_weight = 0.0;
  model.hang_weight = 0.0;
  model.miscompile_weight = 0.0;
  model.glitch_weight = 0.0;
  model.checkpoint_weight = 0.0;
  model.hard_crash_weight = 1.0;
  model.deterministic_fraction = 1.0;
  model.seed = 7;
  fault::FaultInjector injector(model);
  injector.exempt(search::o3_config(effects_.space()));

  DriverOptions isolated;
  isolated.isolate_workers = 2;
  isolated.fault.injector = &injector;
  TuningDriver driver(*s.workload, s.profile, s.train, machine_,
                      effects_, isolated);
  // Every faulty config abort()s on every attempt: the run must still
  // complete, with the crashers identified and quarantined.
  const TuningOutcome outcome = driver.tune(rating::Method::kRBR);
  EXPECT_FALSE(outcome.best_config.key().empty());
  EXPECT_GE(driver.quarantine().entries().size(), 1u);
}

TEST_F(ProcDriverTest, SigkilledWorkersMidRoundStillBitIdentical) {
  Setup s = setup("SWIM");
  DriverOptions threaded;
  threaded.search_threads = 4;
  const TuningOutcome baseline = tune(s, threaded, rating::Method::kRBR);

  // While the isolated run is underway, snipe up to two live workers
  // with real SIGKILLs. Two stays under the per-task attempt budget, so
  // every lost task is requeued as transient and the outcome must be
  // bit-identical to the unharmed run.
  std::atomic<bool> done{false};
  std::atomic<int> kills{0};
  std::thread sniper([&] {
    while (!done.load() && kills.load() < 2) {
      const std::vector<pid_t> pids = proc::WorkerTable::global().live_pids();
      if (!pids.empty() && ::kill(pids.front(), SIGKILL) == 0) ++kills;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  DriverOptions isolated;
  isolated.isolate_workers = 4;
  const std::uint64_t before = counter("proc.workers.respawned");
  const TuningOutcome outcome = tune(s, isolated, rating::Method::kRBR);
  done = true;
  sniper.join();

  EXPECT_EQ(outcome, baseline);
  if (kills.load() > 0)
    EXPECT_GE(counter("proc.workers.respawned"),
              before + static_cast<std::uint64_t>(kills.load()));
}

TEST_F(ProcDriverTest, WorkerTablePublishesFleetState) {
  Setup s = setup("SWIM");
  DriverOptions isolated;
  isolated.isolate_workers = 3;
  (void)tune(s, isolated, rating::Method::kCBR);

  // After the run the table still shows the last round's fleet (all
  // retired; a round never spawns more slots than it has tasks), and its
  // JSON document carries one row per slot.
  const auto rows = proc::WorkerTable::global().snapshot();
  ASSERT_GE(rows.size(), 1u);
  ASSERT_LE(rows.size(), 3u);
  for (const auto& row : rows) EXPECT_EQ(row.state, "done");
  const std::string json = proc::WorkerTable::global().json();
  EXPECT_NE(json.find("\"workers\":["), std::string::npos);
  EXPECT_NE(json.find("\"tasks_done\":"), std::string::npos);
}

}  // namespace
}  // namespace peak::core
