#include <gtest/gtest.h>

#include "analysis/component_analysis.hpp"
#include "analysis/instrumentation.hpp"
#include "ir/builder.hpp"
#include "ir/interpreter.hpp"

namespace peak::analysis {
namespace {

ir::Function two_loop_fn() {
  ir::FunctionBuilder b("two_loops");
  const auto n = b.param_scalar("n");
  const auto m = b.param_scalar("m");
  const auto out = b.param_scalar("out");
  const auto i = b.scalar("i");
  b.assign(out, b.c(0.0));
  b.for_loop(i, b.c(0.0), b.v(n), [&] {
    b.assign(out, b.add(b.v(out), b.c(1.0)));
  });
  b.for_loop(i, b.c(0.0), b.v(m), [&] {
    b.assign(out, b.add(b.v(out), b.c(2.0)));
  });
  return b.build();
}

/// Run the instrumented function over (n, m) pairs; rows are per-block
/// entry counts.
std::vector<std::vector<std::uint64_t>> profile(
    const ir::Function& fn,
    const std::vector<std::pair<double, double>>& shapes) {
  const ir::Function inst = instrument_all_blocks(fn);
  const ir::Interpreter interp(inst);
  std::vector<std::vector<std::uint64_t>> rows;
  for (const auto& [n, m] : shapes) {
    ir::Memory mem = ir::Memory::for_function(inst);
    mem.scalar(*fn.find_var("n")) = n;
    mem.scalar(*fn.find_var("m")) = m;
    rows.push_back(interp.run(mem).counters);
  }
  return rows;
}

TEST(ComponentAnalysis, IndependentLoopsBecomeSeparateComponents) {
  const ir::Function fn = two_loop_fn();
  const auto rows = profile(fn, {{3, 9}, {5, 2}, {7, 7}, {2, 11}});
  const ComponentModel model = analyze_components(fn, rows);
  ASSERT_TRUE(model.mbr_applicable);
  // Two independent count dimensions (n-loop, m-loop) plus the constant.
  EXPECT_EQ(model.varying.size(), 2u);
  EXPECT_EQ(model.num_components(), 3u);
}

TEST(ComponentAnalysis, AffineDependentBlocksFold) {
  // n and m locked together (m = 2n + 1): one varying component.
  const ir::Function fn = two_loop_fn();
  const auto rows = profile(fn, {{3, 7}, {5, 11}, {7, 15}, {2, 5}});
  const ComponentModel model = analyze_components(fn, rows);
  ASSERT_TRUE(model.mbr_applicable);
  EXPECT_EQ(model.varying.size(), 1u);
  // The folded blocks are attached to the surviving component.
  std::size_t folded = 0;
  for (const auto& comp : model.varying) folded += comp.blocks.size();
  EXPECT_GT(folded, 1u);
}

TEST(ComponentAnalysis, ConstantCountsFoldIntoConstantComponent) {
  const ir::Function fn = two_loop_fn();
  // Same shape every invocation: everything is constant.
  const auto rows = profile(fn, {{4, 6}, {4, 6}, {4, 6}});
  const ComponentModel model = analyze_components(fn, rows);
  ASSERT_TRUE(model.mbr_applicable);
  EXPECT_TRUE(model.varying.empty());
  EXPECT_EQ(model.num_components(), 1u);
  EXPECT_EQ(model.constant_blocks.size(), fn.num_blocks());
}

TEST(ComponentAnalysis, CountRowBuildsRegressionInput) {
  const ir::Function fn = two_loop_fn();
  const auto rows = profile(fn, {{3, 9}, {5, 2}, {7, 7}});
  const ComponentModel model = analyze_components(fn, rows);
  ASSERT_TRUE(model.mbr_applicable);
  const std::vector<double> row = model.count_row(rows[0]);
  ASSERT_EQ(row.size(), model.num_components());
  EXPECT_DOUBLE_EQ(row.back(), 1.0);  // constant column
  for (std::size_t c = 0; c < model.varying.size(); ++c)
    EXPECT_DOUBLE_EQ(
        row[c],
        static_cast<double>(rows[0][model.varying[c].representative]));
}

TEST(ComponentAnalysis, MaxComponentsGate) {
  const ir::Function fn = two_loop_fn();
  const auto rows = profile(fn, {{3, 9}, {5, 2}, {7, 7}, {2, 11}});
  ComponentModelOptions options;
  options.max_components = 2;  // needs 3
  const ComponentModel model = analyze_components(fn, rows, options);
  EXPECT_FALSE(model.mbr_applicable);
  EXPECT_FALSE(model.failure_reason.empty());
}

TEST(ComponentAnalysis, TooFewInvocations) {
  const ir::Function fn = two_loop_fn();
  const auto rows = profile(fn, {{3, 9}});
  EXPECT_FALSE(analyze_components(fn, rows).mbr_applicable);
}

TEST(ComponentAnalysis, SmallBlockFoldingReducesModel) {
  const ir::Function fn = two_loop_fn();
  // m-loop is tiny relative to the n-loop.
  const auto rows =
      profile(fn, {{300, 2}, {500, 3}, {700, 1}, {200, 2}});
  ComponentModelOptions options;
  options.small_block_fraction = 0.05;
  const ComponentModel model = analyze_components(fn, rows, options);
  ASSERT_TRUE(model.mbr_applicable);
  EXPECT_EQ(model.varying.size(), 1u);  // the m-loop folded away
}

TEST(Instrumentation, AllBlocksThenStrip) {
  const ir::Function fn = two_loop_fn();
  const ir::Function inst = instrument_all_blocks(fn);
  EXPECT_EQ(count_counter_stmts(inst), fn.num_blocks());
  EXPECT_EQ(inst.num_counters(), fn.num_blocks());
  const ir::Function clean = strip_counters(inst);
  EXPECT_EQ(count_counter_stmts(clean), 0u);
  EXPECT_EQ(clean.num_counters(), 0u);
}

TEST(Instrumentation, ComponentCountersMatchModelOrder) {
  const ir::Function fn = two_loop_fn();
  const auto rows = profile(fn, {{3, 9}, {5, 2}, {7, 7}});
  const ComponentModel model = analyze_components(fn, rows);
  ASSERT_TRUE(model.mbr_applicable);
  const ir::Function inst = instrument_components(fn, model);
  EXPECT_EQ(count_counter_stmts(inst), model.varying.size());

  // Running the instrumented function yields counter values equal to the
  // representative block counts.
  ir::Memory mem = ir::Memory::for_function(inst);
  mem.scalar(*fn.find_var("n")) = 6;
  mem.scalar(*fn.find_var("m")) = 4;
  const ir::RunResult run = ir::Interpreter(inst).run(mem);
  ASSERT_EQ(run.counters.size(), model.varying.size());
  // Counter i must equal the entry count of component i's representative
  // block under the same shape (verified against a full-block profile).
  const ir::Function all = instrument_all_blocks(fn);
  ir::Memory mem2 = ir::Memory::for_function(all);
  mem2.scalar(*fn.find_var("n")) = 6;
  mem2.scalar(*fn.find_var("m")) = 4;
  const ir::RunResult full = ir::Interpreter(all).run(mem2);
  for (std::size_t c = 0; c < model.varying.size(); ++c)
    EXPECT_EQ(run.counters[c], full.counters[model.varying[c].representative]);
}

TEST(Instrumentation, CountersDoNotPerturbResults) {
  const ir::Function fn = two_loop_fn();
  const ir::Function inst = instrument_all_blocks(fn);
  ir::Memory plain = ir::Memory::for_function(fn);
  ir::Memory with = ir::Memory::for_function(inst);
  for (auto* mem : {&plain, &with}) {
    mem->scalar(*fn.find_var("n")) = 5;
    mem->scalar(*fn.find_var("m")) = 3;
  }
  ir::Interpreter(fn).run(plain);
  ir::Interpreter(inst).run(with);
  EXPECT_DOUBLE_EQ(plain.scalar(*fn.find_var("out")),
                   with.scalar(*fn.find_var("out")));
}

}  // namespace
}  // namespace peak::analysis
