#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "ir/builder.hpp"
#include "support/check.hpp"
#include "ir/interpreter.hpp"
#include "runtime/inspector.hpp"
#include "runtime/snapshot.hpp"
#include "runtime/timer.hpp"
#include "runtime/version_table.hpp"
#include "support/rng.hpp"

namespace peak::runtime {
namespace {

ir::Function scatter_fn() {
  // Irregular writes: out[idx[i]] += w — the case where static analysis
  // cannot bound Modified_Input and the inspector takes over.
  ir::FunctionBuilder b("scatter");
  const auto n = b.param_scalar("n");
  const auto idx = b.param_array("idx", 32);
  const auto out = b.param_array("out", 64, true);
  const auto i = b.scalar("i");
  b.for_loop(i, b.c(0.0), b.v(n), [&] {
    b.store(out, b.at(idx, b.v(i)),
            b.add(b.at(out, b.at(idx, b.v(i))), b.c(1.0)));
  });
  return b.build();
}

TEST(Snapshot, SaveRestoreRoundTrip) {
  const ir::Function fn = scatter_fn();
  ir::Memory mem = ir::Memory::for_function(fn);
  const ir::VarId out = *fn.find_var("out");
  const ir::VarId n = *fn.find_var("n");
  mem.scalar(n) = 3;
  for (std::size_t i = 0; i < 3; ++i) mem.array(*fn.find_var("idx"))[i] = 5;
  mem.array(out)[5] = 100.0;

  MemorySnapshot snap(fn, mem, std::vector<ir::VarId>{out, n});
  ir::Interpreter(fn).run(mem);
  EXPECT_DOUBLE_EQ(mem.array(out)[5], 103.0);  // mutated

  snap.restore(mem);
  EXPECT_DOUBLE_EQ(mem.array(out)[5], 100.0);  // back to the checkpoint
  EXPECT_DOUBLE_EQ(mem.scalar(n), 3.0);
}

TEST(Snapshot, BytesReflectRegions) {
  const ir::Function fn = scatter_fn();
  ir::Memory mem = ir::Memory::for_function(fn);
  const MemorySnapshot small(fn, mem,
                             std::vector<ir::VarId>{*fn.find_var("n")});
  const MemorySnapshot big(fn, mem,
                           std::vector<ir::VarId>{*fn.find_var("out")});
  EXPECT_EQ(small.bytes(), sizeof(double));
  EXPECT_EQ(big.bytes(), 64 * sizeof(double));
}

TEST(Snapshot, RecaptureFollowsNewState) {
  const ir::Function fn = scatter_fn();
  ir::Memory mem = ir::Memory::for_function(fn);
  const ir::VarId out = *fn.find_var("out");
  MemorySnapshot snap(fn, mem, std::vector<ir::VarId>{out});
  mem.array(out)[7] = 42.0;
  snap.recapture(mem);
  mem.array(out)[7] = 0.0;
  snap.restore(mem);
  EXPECT_DOUBLE_EQ(mem.array(out)[7], 42.0);
}

TEST(Inspector, UndoRestoresIrregularWrites) {
  const ir::Function fn = scatter_fn();
  ir::Memory mem = ir::Memory::for_function(fn);
  const ir::VarId out = *fn.find_var("out");
  support::Rng rng(77);
  mem.scalar(*fn.find_var("n")) = 20;
  for (std::size_t i = 0; i < 20; ++i)
    mem.array(*fn.find_var("idx"))[i] =
        static_cast<double>(rng.uniform_int(0, 63));
  for (std::size_t i = 0; i < 64; ++i)
    mem.array(out)[i] = rng.uniform(0.0, 10.0);
  const std::vector<double> original = mem.array(out);

  WriteInspector inspector;
  ir::InterpreterOptions opts;
  opts.write_hook = inspector.hook();
  ir::Interpreter(fn, opts).run(mem);
  EXPECT_NE(mem.array(out), original);
  EXPECT_GT(inspector.entries(), 0u);
  // Duplicate writes to the same slot are logged once (first write wins).
  EXPECT_LE(inspector.entries(), 20u);

  inspector.undo(mem);
  EXPECT_EQ(mem.array(out), original);
}

TEST(Inspector, ClearResets) {
  WriteInspector inspector;
  auto hook = inspector.hook();
  ir::Memory mem;
  mem.arrays.resize(1);
  mem.arrays[0] = {1.0, 2.0};
  hook(0, 0, 1.0);
  EXPECT_EQ(inspector.entries(), 1u);
  inspector.clear();
  EXPECT_EQ(inspector.entries(), 0u);
}

TEST(VersionTable, PromoteAndRetireLifecycle) {
  const auto& space = search::gcc33_o3_space();
  VersionTable table(search::o3_config(space));
  EXPECT_EQ(table.best().id, 0u);

  const auto id1 =
      table.install_experimental(search::baseline_config(space));
  EXPECT_EQ(id1, 1u);
  table.rate_experimental(0.9, 0.001);
  table.promote_experimental();
  EXPECT_EQ(table.best().id, 1u);
  EXPECT_EQ(table.retired().size(), 1u);

  table.install_experimental(search::o3_config(space));
  table.rate_experimental(1.5, 0.002);
  table.retire_experimental();
  EXPECT_EQ(table.best().id, 1u);
  EXPECT_EQ(table.retired().size(), 2u);
  EXPECT_GE(table.swap_count(), 4u);
}

TEST(VersionTable, GuardsProtocolViolations) {
  const auto& space = search::gcc33_o3_space();
  VersionTable table(search::o3_config(space));
  EXPECT_THROW(table.promote_experimental(), support::CheckError);
  table.install_experimental(search::baseline_config(space));
  EXPECT_THROW(table.install_experimental(search::baseline_config(space)),
               support::CheckError);
  // Unrated experimental versions cannot be promoted.
  EXPECT_THROW(table.promote_experimental(), support::CheckError);
}

TEST(VersionTable, ConcurrentReadsDuringSwaps) {
  const auto& space = search::gcc33_o3_space();
  VersionTable table(search::o3_config(space));
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load()) {
      const VersionRecord best = table.best();
      (void)best;
    }
  });
  for (int i = 0; i < 200; ++i) {
    table.install_experimental(search::baseline_config(space));
    table.rate_experimental(1.0, 0.0);
    if (i % 2 == 0)
      table.promote_experimental();
    else
      table.retire_experimental();
  }
  stop.store(true);
  reader.join();
  EXPECT_EQ(table.retired().size(), 200u);
}

TEST(Timers, WallAndVirtual) {
  WallTimer unstarted;
  EXPECT_EQ(unstarted.elapsed(), 0.0);  // guarded read before start()

  WallTimer wall;
  wall.start();
  EXPECT_GE(wall.elapsed(), 0.0);

  VirtualClock clock;
  clock.advance(10.5);
  clock.advance(4.5);
  EXPECT_DOUBLE_EQ(clock.now(), 15.0);
  clock.reset();
  EXPECT_DOUBLE_EQ(clock.now(), 0.0);
}

}  // namespace
}  // namespace peak::runtime
