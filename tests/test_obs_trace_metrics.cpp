#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <future>
#include <latch>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/peak.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/thread_pool.hpp"
#include "workloads/workload.hpp"

namespace peak::obs {
namespace {

/// Minimal recursive-descent JSON validity checker — enough to prove the
/// exporters emit well-formed documents without a JSON dependency.
class JsonChecker {
public:
  explicit JsonChecker(std::string_view text) : text_(text) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == text_.size();
  }

private:
  bool value() {
    if (pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= text_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// RAII guard: uninstall the global sink even if an assertion fails.
struct SinkGuard {
  explicit SinkGuard(std::shared_ptr<Sink> sink) {
    Tracer::global().set_sink(std::move(sink));
  }
  ~SinkGuard() { Tracer::global().set_sink(nullptr); }
};

TEST(Metrics, HistogramBucketMath) {
  Histogram h({1.0, 2.0, 4.0});
  for (double v : {0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0}) h.observe(v);
  // Bucket i counts v <= bounds[i]; exact bound values land in their
  // own bucket, not the next one up.
  EXPECT_EQ(h.counts(), (std::vector<std::uint64_t>{2, 2, 2, 1}));
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 3.0 + 4.0 + 5.0);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.counts(), (std::vector<std::uint64_t>{0, 0, 0, 0}));
}

TEST(Metrics, CounterIsAtomicAcrossThreads) {
  Counter& c = counter("test.parallel_increments");
  c.reset();
  support::ThreadPool pool(4);
  pool.parallel_for(0, 10000, [&](std::size_t) { c.inc(); });
  EXPECT_EQ(c.value(), 10000u);
}

TEST(Metrics, RegistryResetKeepsReferencesValid) {
  Counter& c = counter("test.reset_survivor");
  c.inc(5);
  Gauge& g = gauge("test.reset_gauge");
  g.set(2.5);
  MetricsRegistry::global().reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  c.inc();  // the cached reference still points at a live instrument
  EXPECT_EQ(counter("test.reset_survivor").value(), 1u);
  EXPECT_EQ(&counter("test.reset_survivor"), &c);
}

TEST(Trace, SpansNestAcrossThreads) {
  auto sink = std::make_shared<VectorSink>();
  {
    SinkGuard guard(sink);
    support::ThreadPool pool(4);
    std::latch ready(4);
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 4; ++i) {
      futs.push_back(pool.submit([&ready] {
        // The latch holds all four workers inside their task at once, so
        // the four outer spans are guaranteed to come from four threads.
        ready.arrive_and_wait();
        ScopedSpan outer("outer", "test");
        ScopedSpan inner("inner", "test", {attr("i", 1)});
      }));
    }
    for (auto& f : futs) f.get();
  }

  const std::vector<TraceEvent>& events = sink->events();
  ASSERT_EQ(events.size(), 8u);

  std::set<std::uint32_t> tids;
  std::size_t inners = 0;
  for (const TraceEvent& e : events) {
    EXPECT_EQ(e.phase, EventPhase::kComplete);
    tids.insert(e.tid);
    if (e.name != "inner") continue;
    ++inners;
    EXPECT_EQ(e.depth, 1u);
    ASSERT_EQ(e.args.size(), 1u);
    EXPECT_EQ(e.args[0].key, "i");
    // The matching outer span (same thread) must contain the inner one
    // in time — the containment Chrome's viewer uses for nesting.
    bool contained = false;
    for (const TraceEvent& o : events) {
      if (o.name != "outer" || o.tid != e.tid) continue;
      EXPECT_EQ(o.depth, 0u);
      if (o.ts_us <= e.ts_us && e.ts_us + e.dur_us <= o.ts_us + o.dur_us)
        contained = true;
    }
    EXPECT_TRUE(contained) << "inner span escapes its outer span";
  }
  EXPECT_EQ(inners, 4u);
  EXPECT_EQ(tids.size(), 4u);  // one tid per pool worker
}

TEST(Trace, DisabledTracingRecordsNothing) {
  ASSERT_FALSE(Tracer::global().enabled());
  ScopedSpan span("ignored", "test");
  EXPECT_FALSE(span.active());
  span.add(attr("k", "v"));  // must be a safe no-op
  Tracer::global().instant("ignored", "test");
}

TEST(Export, JsonlRoundTrip) {
  const std::string path = temp_path("obs_events.jsonl");
  {
    SinkGuard guard(std::make_shared<JsonlSink>(path));
    ScopedSpan outer("step", "search", {attr("flag", "-fgcse")});
    Tracer::global().instant("note", "driver", {attr("R", 0.95)});
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  bool saw_span = false, saw_instant = false;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_TRUE(JsonChecker(line).valid()) << line;
    if (line.find("\"ph\":\"X\"") != std::string::npos) saw_span = true;
    if (line.find("\"ph\":\"i\"") != std::string::npos) saw_instant = true;
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
}

TEST(Export, ChromeTraceRoundTrip) {
  const std::string path = temp_path("obs_trace.json");
  {
    SinkGuard guard(std::make_shared<ChromeTraceSink>(path));
    ScopedSpan outer("tune", "driver", {attr("method", "RBR")});
    { ScopedSpan inner("probe", "search"); }
  }

  const std::string doc = slurp(path);
  ASSERT_FALSE(doc.empty());
  EXPECT_TRUE(JsonChecker(doc).valid());
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"tune\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"probe\""), std::string::npos);
  EXPECT_NE(doc.find("\"method\":\"RBR\""), std::string::npos);
}

TEST(Export, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  const std::string with_control = json_escape(std::string("a\x01z"));
  EXPECT_TRUE(JsonChecker("\"" + with_control + "\"").valid());
}

TEST(Export, MetricsJsonSnapshot) {
  MetricsRegistry::global().reset();
  counter("test.export_counter").inc(3);
  gauge("test.export_gauge").set(1.5);
  histogram("test.export_hist", {10.0, 20.0}).observe(15.0);

  std::ostringstream os;
  write_metrics_json(MetricsRegistry::global().snapshot(), os);
  const std::string doc = os.str();
  EXPECT_TRUE(JsonChecker(doc).valid());
  EXPECT_NE(doc.find("\"test.export_counter\": 3"), std::string::npos);
  EXPECT_NE(doc.find("\"test.export_hist\""), std::string::npos);
  EXPECT_NE(doc.find("\"counts\": [0,1,0]"), std::string::npos);
}

TEST(Integration, DriverMetricsMatchReportedCost) {
  // The acceptance invariant: after a tuning run, the registry's
  // search.configs_evaluated equals the TuningCost the driver reports —
  // on every path, including abandoned rating attempts.
  MetricsRegistry::global().reset();
  core::Peak peak(sim::sparc2());
  auto w = workloads::make_workload("SWIM");
  const core::MethodRun run = peak.tune_with_consultant(*w);

  EXPECT_GT(run.cost.configs_evaluated, 0u);
  EXPECT_EQ(counter("search.configs_evaluated").value(),
            run.cost.configs_evaluated);
  EXPECT_GT(counter("rating.started").value(), 0u);
  EXPECT_GT(counter("rating.invocations").value(), 0u);
}

TEST(Integration, DriverEmitsSpansWhenTracing) {
  auto sink = std::make_shared<VectorSink>();
  {
    SinkGuard guard(sink);
    core::Peak peak(sim::sparc2());
    auto w = workloads::make_workload("SWIM");
    (void)peak.tune_with_consultant(*w);
  }
  std::set<std::string> names;
  for (const TraceEvent& e : sink->events()) names.insert(e.name);
  EXPECT_TRUE(names.count("profile"));
  EXPECT_TRUE(names.count("tune"));
  EXPECT_TRUE(names.count("rate"));
  EXPECT_TRUE(names.count("probe"));
}

}  // namespace
}  // namespace peak::obs
