#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdio>
#include <fstream>
#include <future>
#include <latch>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/peak.hpp"
#include "json_checker.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "support/thread_pool.hpp"
#include "workloads/workload.hpp"

namespace peak::obs {
namespace {

using testutil::JsonChecker;

std::string temp_path(const std::string& name) {
  return testing::TempDir() + name;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// RAII guard: uninstall the global sink even if an assertion fails.
struct SinkGuard {
  explicit SinkGuard(std::shared_ptr<Sink> sink) {
    Tracer::global().set_sink(std::move(sink));
  }
  ~SinkGuard() { Tracer::global().set_sink(nullptr); }
};

TEST(Metrics, HistogramBucketMath) {
  Histogram h({1.0, 2.0, 4.0});
  for (double v : {0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0}) h.observe(v);
  // Bucket i counts v <= bounds[i]; exact bound values land in their
  // own bucket, not the next one up.
  EXPECT_EQ(h.counts(), (std::vector<std::uint64_t>{2, 2, 2, 1}));
  EXPECT_EQ(h.count(), 7u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 2.0 + 3.0 + 4.0 + 5.0);

  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.counts(), (std::vector<std::uint64_t>{0, 0, 0, 0}));
}

TEST(Metrics, HistogramSnapshotNeverTearsUnderConcurrentObserves) {
  // Regression test: snapshot() used to read buckets, count, and sum with
  // independent relaxed loads, so a snapshot taken mid-observe() could
  // see sum(counts) != count. The shared_mutex fix makes every snapshot
  // internally consistent no matter how hard writers hammer.
  Histogram h({1.0, 2.0, 4.0});
  std::atomic<bool> done{false};
  support::ThreadPool pool(4);
  std::vector<std::future<void>> writers;
  for (int t = 0; t < 3; ++t) {
    writers.push_back(pool.submit([&h, &done, t] {
      std::uint64_t i = 0;
      while (!done.load(std::memory_order_relaxed))
        h.observe(static_cast<double>((i++ + t) % 6));
    }));
  }

  for (int i = 0; i < 2000; ++i) {
    const HistogramSnapshot snap = h.snapshot();
    std::uint64_t total = 0;
    for (std::uint64_t c : snap.counts) total += c;
    ASSERT_EQ(total, snap.count)
        << "snapshot tore: bucket counts disagree with count";
  }
  done.store(true);
  for (auto& w : writers) w.get();

  // And the final quiescent snapshot agrees with the plain accessors.
  const HistogramSnapshot final_snap = h.snapshot();
  EXPECT_EQ(final_snap.count, h.count());
  EXPECT_EQ(final_snap.counts, h.counts());
}

TEST(Metrics, PercentilesInterpolateWithinBuckets) {
  // 100 observations spread uniformly over (0, 10]: bounds every 1.0,
  // 10 per bucket. The interpolated percentiles land on p/10.
  Histogram h({1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0});
  for (int i = 1; i <= 100; ++i) h.observe(i / 10.0);
  const HistogramSnapshot snap = h.snapshot();
  EXPECT_NEAR(snap.percentile(50.0), 5.0, 1e-9);
  EXPECT_NEAR(snap.percentile(90.0), 9.0, 1e-9);
  EXPECT_NEAR(snap.percentile(99.0), 9.9, 1e-9);
  EXPECT_NEAR(snap.percentile(10.0), 1.0, 1e-9);
  // p=100 is the top of the highest non-empty bucket; p=0 its bottom edge.
  EXPECT_NEAR(snap.percentile(100.0), 10.0, 1e-9);
  EXPECT_NEAR(snap.percentile(0.0), 0.0, 1e-9);
}

TEST(Metrics, PercentileEdgeCases) {
  Histogram empty({1.0, 2.0});
  EXPECT_EQ(empty.snapshot().percentile(50.0), 0.0);

  // Observations beyond the last bound land in the overflow bucket; the
  // estimate clamps to the highest bound rather than extrapolating.
  Histogram overflow({1.0, 2.0});
  for (int i = 0; i < 10; ++i) overflow.observe(100.0);
  EXPECT_EQ(overflow.snapshot().percentile(50.0), 2.0);
  EXPECT_EQ(overflow.snapshot().percentile(99.0), 2.0);

  // A single observation in the first bucket interpolates from 0.
  Histogram single({4.0, 8.0});
  single.observe(3.0);
  EXPECT_NEAR(single.snapshot().percentile(50.0), 2.0, 1e-9);
  EXPECT_NEAR(single.snapshot().percentile(100.0), 4.0, 1e-9);
}

TEST(Metrics, PercentilesAreMonotone) {
  Histogram h({1.0, 2.0, 4.0, 8.0});
  for (int i = 0; i < 57; ++i) h.observe((i * 37 % 100) / 10.0);
  const HistogramSnapshot snap = h.snapshot();
  double prev = snap.percentile(0.0);
  for (double p = 5.0; p <= 100.0; p += 5.0) {
    const double q = snap.percentile(p);
    EXPECT_GE(q, prev) << "percentile(" << p << ") went backwards";
    prev = q;
  }
}

TEST(Metrics, CounterIsAtomicAcrossThreads) {
  Counter& c = counter("test.parallel_increments");
  c.reset();
  support::ThreadPool pool(4);
  pool.parallel_for(0, 10000, [&](std::size_t) { c.inc(); });
  EXPECT_EQ(c.value(), 10000u);
}

TEST(Metrics, RegistryResetKeepsReferencesValid) {
  Counter& c = counter("test.reset_survivor");
  c.inc(5);
  Gauge& g = gauge("test.reset_gauge");
  g.set(2.5);
  MetricsRegistry::global().reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  c.inc();  // the cached reference still points at a live instrument
  EXPECT_EQ(counter("test.reset_survivor").value(), 1u);
  EXPECT_EQ(&counter("test.reset_survivor"), &c);
}

TEST(Trace, SpansNestAcrossThreads) {
  auto sink = std::make_shared<VectorSink>();
  {
    SinkGuard guard(sink);
    support::ThreadPool pool(4);
    std::latch ready(4);
    std::vector<std::future<void>> futs;
    for (int i = 0; i < 4; ++i) {
      futs.push_back(pool.submit([&ready] {
        // The latch holds all four workers inside their task at once, so
        // the four outer spans are guaranteed to come from four threads.
        ready.arrive_and_wait();
        ScopedSpan outer("outer", "test");
        ScopedSpan inner("inner", "test", {attr("i", 1)});
      }));
    }
    for (auto& f : futs) f.get();
  }

  const std::vector<TraceEvent>& events = sink->events();
  ASSERT_EQ(events.size(), 8u);

  std::set<std::uint32_t> tids;
  std::size_t inners = 0;
  for (const TraceEvent& e : events) {
    EXPECT_EQ(e.phase, EventPhase::kComplete);
    tids.insert(e.tid);
    if (e.name != "inner") continue;
    ++inners;
    EXPECT_EQ(e.depth, 1u);
    ASSERT_EQ(e.args.size(), 1u);
    EXPECT_EQ(e.args[0].key, "i");
    // The matching outer span (same thread) must contain the inner one
    // in time — the containment Chrome's viewer uses for nesting.
    bool contained = false;
    for (const TraceEvent& o : events) {
      if (o.name != "outer" || o.tid != e.tid) continue;
      EXPECT_EQ(o.depth, 0u);
      if (o.ts_us <= e.ts_us && e.ts_us + e.dur_us <= o.ts_us + o.dur_us)
        contained = true;
    }
    EXPECT_TRUE(contained) << "inner span escapes its outer span";
  }
  EXPECT_EQ(inners, 4u);
  EXPECT_EQ(tids.size(), 4u);  // one tid per pool worker
}

TEST(Trace, DisabledTracingRecordsNothing) {
  ASSERT_FALSE(Tracer::global().enabled());
  ScopedSpan span("ignored", "test");
  EXPECT_FALSE(span.active());
  span.add(attr("k", "v"));  // must be a safe no-op
  Tracer::global().instant("ignored", "test");
}

TEST(Export, JsonlRoundTrip) {
  const std::string path = temp_path("obs_events.jsonl");
  {
    SinkGuard guard(std::make_shared<JsonlSink>(path));
    ScopedSpan outer("step", "search", {attr("flag", "-fgcse")});
    Tracer::global().instant("note", "driver", {attr("R", 0.95)});
  }

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::size_t lines = 0;
  bool saw_span = false, saw_instant = false;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_TRUE(JsonChecker(line).valid()) << line;
    if (line.find("\"ph\":\"X\"") != std::string::npos) saw_span = true;
    if (line.find("\"ph\":\"i\"") != std::string::npos) saw_instant = true;
  }
  EXPECT_EQ(lines, 2u);
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_instant);
}

TEST(Export, ChromeTraceRoundTrip) {
  const std::string path = temp_path("obs_trace.json");
  {
    SinkGuard guard(std::make_shared<ChromeTraceSink>(path));
    ScopedSpan outer("tune", "driver", {attr("method", "RBR")});
    { ScopedSpan inner("probe", "search"); }
  }

  const std::string doc = slurp(path);
  ASSERT_FALSE(doc.empty());
  EXPECT_TRUE(JsonChecker(doc).valid());
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"tune\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"probe\""), std::string::npos);
  EXPECT_NE(doc.find("\"method\":\"RBR\""), std::string::npos);
}

TEST(Export, ChromeTraceStaysValidUnderConcurrentEmission) {
  // Hammer the tracer from a thread pool and check the Chrome trace still
  // holds up: well-formed JSON, every span a matched "X" complete event,
  // per-thread spans properly nested (never partially overlapping), and
  // close-order timestamps monotone per thread.
  const std::string path = temp_path("obs_trace_concurrent.json");
  constexpr std::size_t kItems = 64;
  {
    SinkGuard guard(std::make_shared<ChromeTraceSink>(path));
    support::ThreadPool pool(4);
    pool.parallel_for(0, kItems, [](std::size_t i) {
      ScopedSpan outer("outer", "test", {attr("i", i)});
      ScopedSpan inner("inner", "test");
    });
  }

  const std::string doc = slurp(path);
  ASSERT_FALSE(doc.empty());
  EXPECT_TRUE(JsonChecker(doc).valid());

  struct Span {
    std::uint64_t tid = 0;
    double ts = 0.0, dur = 0.0;
  };
  std::vector<Span> spans;
  std::istringstream lines(doc);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"ph\":\"X\"") == std::string::npos) continue;
    Span s;
    ASSERT_EQ(std::sscanf(line.c_str() + line.find("\"tid\":"),
                          "\"tid\":%lu,\"ts\":%lf,\"dur\":%lf",
                          &s.tid, &s.ts, &s.dur), 3)
        << line;
    spans.push_back(s);
  }
  ASSERT_EQ(spans.size(), 2 * kItems);  // every span closed and exported

  std::map<std::uint64_t, std::vector<Span>> by_tid;
  for (const Span& s : spans) by_tid[s.tid].push_back(s);
  for (const auto& [tid, list] : by_tid) {
    // Complete events are appended when a span *closes*, so end times
    // must be non-decreasing in file order within one thread.
    for (std::size_t i = 1; i < list.size(); ++i)
      EXPECT_LE(list[i - 1].ts + list[i - 1].dur,
                list[i].ts + list[i].dur)
          << "tid " << tid << ": close order not monotone";
    // Any two spans on one thread either nest or are disjoint.
    for (std::size_t i = 0; i < list.size(); ++i) {
      for (std::size_t j = i + 1; j < list.size(); ++j) {
        const Span& a = list[i];
        const Span& b = list[j];
        const double a_end = a.ts + a.dur, b_end = b.ts + b.dur;
        const bool disjoint = a_end <= b.ts || b_end <= a.ts;
        const bool a_in_b = b.ts <= a.ts && a_end <= b_end;
        const bool b_in_a = a.ts <= b.ts && b_end <= a_end;
        EXPECT_TRUE(disjoint || a_in_b || b_in_a)
            << "tid " << tid << ": spans partially overlap";
      }
    }
  }
}

TEST(Export, MetricsJsonIncludesPercentiles) {
  MetricsRegistry::global().reset();
  Histogram& h = histogram("test.export_percentiles",
                           {1.0, 2.0, 3.0, 4.0});
  for (int i = 1; i <= 40; ++i) h.observe(i / 10.0);

  std::ostringstream os;
  write_metrics_json(MetricsRegistry::global().snapshot(), os);
  const std::string doc = os.str();
  EXPECT_TRUE(JsonChecker(doc).valid());
  EXPECT_NE(doc.find("\"p50\": 2"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"p90\":"), std::string::npos);
  EXPECT_NE(doc.find("\"p99\":"), std::string::npos);
}

TEST(Export, EscapesControlCharactersAndQuotes) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb"), "a\\nb");
  const std::string with_control = json_escape(std::string("a\x01z"));
  EXPECT_TRUE(JsonChecker("\"" + with_control + "\"").valid());
}

TEST(Export, MetricsJsonSnapshot) {
  MetricsRegistry::global().reset();
  counter("test.export_counter").inc(3);
  gauge("test.export_gauge").set(1.5);
  histogram("test.export_hist", {10.0, 20.0}).observe(15.0);

  std::ostringstream os;
  write_metrics_json(MetricsRegistry::global().snapshot(), os);
  const std::string doc = os.str();
  EXPECT_TRUE(JsonChecker(doc).valid());
  EXPECT_NE(doc.find("\"test.export_counter\": 3"), std::string::npos);
  EXPECT_NE(doc.find("\"test.export_hist\""), std::string::npos);
  EXPECT_NE(doc.find("\"counts\": [0,1,0]"), std::string::npos);
}

TEST(Integration, DriverMetricsMatchReportedCost) {
  // The acceptance invariant: after a tuning run, the registry's
  // search.configs_evaluated equals the TuningCost the driver reports —
  // on every path, including abandoned rating attempts.
  MetricsRegistry::global().reset();
  core::Peak peak(sim::sparc2());
  auto w = workloads::make_workload("SWIM");
  const core::MethodRun run = peak.tune_with_consultant(*w);

  EXPECT_GT(run.cost.configs_evaluated, 0u);
  EXPECT_EQ(counter("search.configs_evaluated").value(),
            run.cost.configs_evaluated);
  EXPECT_GT(counter("rating.started").value(), 0u);
  EXPECT_GT(counter("rating.invocations").value(), 0u);
}

TEST(Integration, DriverEmitsSpansWhenTracing) {
  auto sink = std::make_shared<VectorSink>();
  {
    SinkGuard guard(sink);
    core::Peak peak(sim::sparc2());
    auto w = workloads::make_workload("SWIM");
    (void)peak.tune_with_consultant(*w);
  }
  std::set<std::string> names;
  for (const TraceEvent& e : sink->events()) names.insert(e.name);
  EXPECT_TRUE(names.count("profile"));
  EXPECT_TRUE(names.count("tune"));
  EXPECT_TRUE(names.count("rate"));
  EXPECT_TRUE(names.count("probe"));
}

}  // namespace
}  // namespace peak::obs
