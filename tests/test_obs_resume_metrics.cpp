#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "core/profile.hpp"
#include "core/tuning_driver.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "workloads/workload.hpp"

namespace peak::core {
namespace {

/// Observability counters must survive kill-and-resume: a resumed run
/// replays the journal into the metrics registry (and the cost ledger),
/// so dashboards see the same totals an uninterrupted run would have
/// produced — not just the post-crash tail.
class ObsResumeTest : public ::testing::Test {
protected:
  ObsResumeTest() : machine_(sim::sparc2()), effects_(search::gcc33_o3_space()) {}

  void SetUp() override {
    workload_ = workloads::make_workload("SWIM");
    train_ = workload_->trace(workloads::DataSet::kTrain, 42);
    profile_ = profile_workload(*workload_, train_, machine_);
  }

  static std::string temp_path(const std::string& name) {
    const std::string path = ::testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
  }

  /// The counters the resume path must keep continuous, plus the window
  /// occupancy histogram flattened into the same map.
  static std::map<std::string, std::uint64_t> rating_metrics() {
    const obs::MetricsRegistry::Snapshot snap =
        obs::MetricsRegistry::global().snapshot();
    std::map<std::string, std::uint64_t> out;
    for (const char* name :
         {"rating.started", "rating.converged", "rating.exhausted",
          "rating.invocations", "search.configs_evaluated"}) {
      const auto it = snap.counters.find(name);
      out[name] = it == snap.counters.end() ? 0 : it->second;
    }
    const auto hist = snap.histograms.find("rating.window_samples");
    if (hist != snap.histograms.end()) {
      out["hist.count"] = hist->second.count;
      for (std::size_t i = 0; i < hist->second.counts.size(); ++i)
        out["hist.bucket" + std::to_string(i)] = hist->second.counts[i];
    }
    return out;
  }

  TuningOutcome run(const DriverOptions& options, rating::Method method) {
    obs::MetricsRegistry::global().reset();
    obs::Ledger::global().reset();
    TuningDriver driver(*workload_, profile_, train_, machine_, effects_,
                        options);
    return driver.tune(method);
  }

  sim::MachineModel machine_;
  sim::FlagEffectModel effects_;
  std::unique_ptr<workloads::Workload> workload_;
  workloads::Trace train_;
  ProfileData profile_;
};

TEST_F(ObsResumeTest, FullReplayRestoresCountersAndHistogram) {
  const std::string path = temp_path("obs_journal_full.jsonl");
  DriverOptions options;
  options.fault.journal_path = path;
  const TuningOutcome original = run(options, rating::Method::kCBR);
  const auto uninterrupted = rating_metrics();
  ASSERT_GT(uninterrupted.at("rating.started"), 0u);
  ASSERT_GT(uninterrupted.at("hist.count"), 0u);

  options.fault.resume = true;
  const TuningOutcome resumed = run(options, rating::Method::kCBR);
  EXPECT_EQ(resumed, original);
  EXPECT_EQ(rating_metrics(), uninterrupted)
      << "replaying a complete journal must restore every rating counter";
}

TEST_F(ObsResumeTest, KillAndResumeKeepsMetricsContinuous) {
  const std::string path = temp_path("obs_journal_kill.jsonl");
  DriverOptions options;
  options.fault.journal_path = path;
  const TuningOutcome original = run(options, rating::Method::kCBR);
  const auto uninterrupted = rating_metrics();

  // Kill the run partway: keep the segment-start line plus half the eval
  // records, and the partial line the dying process was writing.
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_GT(lines.size(), 4u);
  const std::string cut = temp_path("obs_journal_kill_cut.jsonl");
  {
    std::ofstream out(cut);
    for (std::size_t i = 0; i < 1 + (lines.size() - 1) / 2; ++i)
      out << lines[i] << '\n';
    out << R"({"type":"eval","base":"dead)";  // no trailing newline
  }

  DriverOptions resume_options;
  resume_options.fault.journal_path = cut;
  resume_options.fault.resume = true;
  const TuningOutcome resumed = run(resume_options, rating::Method::kCBR);
  EXPECT_EQ(resumed, original);
  EXPECT_EQ(rating_metrics(), uninterrupted)
      << "counters after kill+resume must equal the uninterrupted run's";

  // The ledger reconciles too: replayed evals restore the backend's cycle
  // breakdown, so the resumed run's attribution matches end-to-end.
  const obs::Ledger::Node root = obs::Ledger::global().snapshot();
  EXPECT_LE(obs::conservation_error(root), 1e-3);
  const obs::MetricsRegistry::Snapshot snap =
      obs::MetricsRegistry::global().snapshot();
  const auto timed = snap.gauges.find("sim.cycles_timed");
  ASSERT_NE(timed, snap.gauges.end());
  EXPECT_NEAR(obs::phase_total_cycles(root, "timed"), timed->second,
              1e-3 * std::max(timed->second, 1.0));
}

}  // namespace
}  // namespace peak::core
