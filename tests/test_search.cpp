#include <gtest/gtest.h>

#include <cmath>

#include "search/iterative_elimination.hpp"
#include "search/opt_config.hpp"
#include "search/simple_searches.hpp"
#include "support/check.hpp"

namespace peak::search {
namespace {

/// Noise-free separable evaluator: each flag multiplies time by a fixed
/// factor (< 1 helps, > 1 hurts). relative_improvement = time ratio.
class SeparableEvaluator : public ConfigEvaluator {
public:
  explicit SeparableEvaluator(std::vector<double> factors)
      : factors_(std::move(factors)) {}

  double relative_improvement(const FlagConfig& base,
                              const FlagConfig& cfg) override {
    return time(base) / time(cfg);
  }

  double time(const FlagConfig& cfg) const {
    double t = 1000.0;
    for (std::size_t f = 0; f < factors_.size(); ++f)
      if (cfg.enabled(f)) t *= factors_[f];
    return t;
  }

private:
  std::vector<double> factors_;
};

/// Evaluator with an interaction between *removals*: starting from both
/// flags on, removing either 0 or 1 alone helps, but removing both is
/// worse than removing just one. Batch Elimination probes removals
/// one-at-a-time against the original base and then removes all "harmful"
/// options together — blind to this interaction; Iterative Elimination
/// re-probes after every removal and stops in time.
class InteractingEvaluator : public ConfigEvaluator {
public:
  double relative_improvement(const FlagConfig& base,
                              const FlagConfig& cfg) override {
    return time(base) / time(cfg);
  }

  static double time(const FlagConfig& cfg) {
    double t = 1000.0;
    const bool a = cfg.enabled(0), b = cfg.enabled(1);
    if (a && b)
      t *= 1.10;  // both on: slow
    else if (a || b)
      t *= 1.02;  // exactly one on: best
    else
      t *= 1.08;  // both off: slow again
    if (cfg.enabled(2)) t *= 1.10;  // plainly harmful, independent
    return t;
  }
};

OptimizationSpace small_space(std::size_t n) {
  std::vector<FlagInfo> flags;
  for (std::size_t i = 0; i < n; ++i)
    flags.push_back({"-fopt" + std::to_string(i), FlagCategory::kMisc, 2});
  return OptimizationSpace(std::move(flags));
}

TEST(IterativeElimination, RemovesExactlyTheHarmfulFlags) {
  const OptimizationSpace space = small_space(8);
  SeparableEvaluator eval({0.95, 1.08, 0.97, 1.03, 0.99, 1.0, 0.96, 1.12});
  IterativeElimination ie;
  const SearchResult result = ie.run(space, eval, o3_config(space));
  EXPECT_FALSE(result.best.enabled(1));
  EXPECT_FALSE(result.best.enabled(3));
  EXPECT_FALSE(result.best.enabled(7));
  EXPECT_TRUE(result.best.enabled(0));
  EXPECT_TRUE(result.best.enabled(2));
  EXPECT_TRUE(result.best.enabled(6));
  EXPECT_GT(result.improvement_over_start, 1.2);
  EXPECT_FALSE(result.events.empty());
  EXPECT_FALSE(result.render_log().empty());
}

TEST(IterativeElimination, QuadraticEvaluationBudget) {
  const OptimizationSpace space = small_space(10);
  std::vector<double> factors(10, 1.05);  // everything harmful
  SeparableEvaluator eval(factors);
  IterativeElimination ie;
  const SearchResult result = ie.run(space, eval, o3_config(space));
  EXPECT_EQ(result.best.count_enabled(), 0u);
  // Removing all n flags costs n + (n-1) + ... + 1 = n(n+1)/2 evaluations
  // plus one final all-clean round.
  EXPECT_LE(result.configs_evaluated, 10u * 11u / 2u);
}

TEST(IterativeElimination, RespectsInteractions) {
  const OptimizationSpace space = small_space(3);
  InteractingEvaluator eval;
  IterativeElimination ie;
  const SearchResult result = ie.run(space, eval, o3_config(space));
  // IE removes one of {0, 1}, then sees that removing the other would
  // hurt, and stops — landing on the optimum (exactly one enabled).
  EXPECT_NE(result.best.enabled(0), result.best.enabled(1));
  EXPECT_FALSE(result.best.enabled(2));
}

TEST(BatchElimination, BlindToInteractions) {
  const OptimizationSpace space = small_space(3);
  InteractingEvaluator eval;
  BatchElimination be;
  const SearchResult result = be.run(space, eval, o3_config(space));
  // Both removals look good in isolation, so BE takes both — and loses.
  EXPECT_FALSE(result.best.enabled(0));
  EXPECT_FALSE(result.best.enabled(1));
  EXPECT_GT(InteractingEvaluator::time(result.best),
            InteractingEvaluator::time(
                IterativeElimination().run(space, eval, o3_config(space))
                    .best));
}

TEST(BatchElimination, SingleRoundBudget) {
  const OptimizationSpace space = small_space(12);
  SeparableEvaluator eval(std::vector<double>(12, 1.02));
  BatchElimination be;
  const SearchResult result = be.run(space, eval, o3_config(space));
  EXPECT_LE(result.configs_evaluated, 13u);  // n probes + 1 validation
  EXPECT_EQ(result.best.count_enabled(), 0u);
}

TEST(Exhaustive, FindsGlobalOptimumOnSmallSpace) {
  const OptimizationSpace space = small_space(6);
  SeparableEvaluator eval({0.9, 1.1, 0.95, 1.05, 0.99, 1.01});
  ExhaustiveSearch ex;
  const SearchResult result = ex.run(space, eval, o3_config(space));
  // Optimum: enable exactly the beneficial flags {0, 2, 4}.
  EXPECT_TRUE(result.best.enabled(0));
  EXPECT_TRUE(result.best.enabled(2));
  EXPECT_TRUE(result.best.enabled(4));
  EXPECT_FALSE(result.best.enabled(1));
  EXPECT_FALSE(result.best.enabled(3));
  EXPECT_FALSE(result.best.enabled(5));
  EXPECT_EQ(result.configs_evaluated, (1u << 6) - 1);
}

TEST(Exhaustive, MatchesIterativeEliminationOnSeparableSpace) {
  // On a separable (interaction-free) space IE is provably optimal; check
  // it against the exhaustive ground truth.
  const OptimizationSpace space = small_space(8);
  SeparableEvaluator eval({0.95, 1.08, 0.97, 1.03, 0.99, 1.0, 0.96, 1.12});
  const SearchResult exhaustive =
      ExhaustiveSearch().run(space, eval, o3_config(space));
  const SearchResult ie =
      IterativeElimination().run(space, eval, o3_config(space));
  EXPECT_NEAR(eval.time(exhaustive.best), eval.time(ie.best),
              0.011 * eval.time(exhaustive.best));
}

TEST(Exhaustive, RefusesLargeSpaces) {
  const OptimizationSpace space = small_space(24);
  SeparableEvaluator eval(std::vector<double>(24, 1.0));
  ExhaustiveSearch ex(16);
  EXPECT_THROW(ex.run(space, eval, o3_config(space)),
               support::CheckError);
}

TEST(RandomSearch, FindsSomethingBetterThanO3) {
  const OptimizationSpace space = small_space(8);
  SeparableEvaluator eval({0.95, 1.08, 0.97, 1.03, 0.99, 1.0, 0.96, 1.12});
  RandomSearch rs(200, 42);
  const SearchResult result = rs.run(space, eval, o3_config(space));
  EXPECT_GT(result.improvement_over_start, 1.0);
  EXPECT_EQ(result.configs_evaluated, 200u);
}

TEST(GreedyConstruction, BuildsBeneficialSetFromScratch) {
  const OptimizationSpace space = small_space(6);
  SeparableEvaluator eval({0.9, 1.1, 0.95, 1.05, 0.99, 1.01});
  GreedyConstruction greedy;
  const SearchResult result = greedy.run(space, eval, o3_config(space));
  EXPECT_TRUE(result.best.enabled(0));
  EXPECT_TRUE(result.best.enabled(2));
  EXPECT_FALSE(result.best.enabled(1));
  EXPECT_FALSE(result.best.enabled(3));
}

TEST(SearchNames, Stable) {
  EXPECT_EQ(IterativeElimination().name(), "iterative-elimination");
  EXPECT_EQ(BatchElimination().name(), "batch-elimination");
  EXPECT_EQ(ExhaustiveSearch().name(), "exhaustive");
  EXPECT_EQ(RandomSearch(1, 1).name(), "random");
  EXPECT_EQ(GreedyConstruction().name(), "greedy-construction");
}

}  // namespace
}  // namespace peak::search
