#include <gtest/gtest.h>

#include <vector>

#include "stats/outlier.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace peak::stats {
namespace {

std::vector<double> noisy_window(double spike_every, std::size_t n,
                                 std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<double> xs;
  xs.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    double x = rng.normal(100.0, 1.0);
    if (spike_every > 0 && i % static_cast<std::size_t>(spike_every) == 7)
      x *= 3.0;  // interrupt-like perturbation
    xs.push_back(x);
  }
  return xs;
}

TEST(Outlier, SigmaRuleDropsSpikes) {
  const auto xs = noisy_window(20, 100, 1);
  OutlierPolicy policy;  // default k=3 sigma
  const OutlierResult result = filter_outliers(xs, policy);
  EXPECT_EQ(result.dropped, 5u);  // i = 7, 27, 47, 67, 87
  for (double x : result.kept) EXPECT_LT(x, 150.0);
}

TEST(Outlier, CleanWindowUntouched) {
  const auto xs = noisy_window(0, 100, 2);
  const OutlierResult result = filter_outliers(xs, OutlierPolicy{});
  EXPECT_EQ(result.dropped, 0u);
  EXPECT_EQ(result.kept.size(), xs.size());
}

TEST(Outlier, NoneRuleKeepsEverything) {
  const auto xs = noisy_window(10, 50, 3);
  OutlierPolicy policy;
  policy.rule = OutlierRule::kNone;
  EXPECT_EQ(filter_outliers(xs, policy).dropped, 0u);
}

TEST(Outlier, MaxDropFractionGuards) {
  // Bimodal data: a naive filter would eat one mode entirely.
  std::vector<double> xs;
  for (int i = 0; i < 60; ++i) xs.push_back(10.0);
  for (int i = 0; i < 40; ++i) xs.push_back(1000.0);
  OutlierPolicy policy;
  policy.k = 0.5;
  policy.max_drop_fraction = 0.25;
  const OutlierResult result = filter_outliers(xs, policy);
  EXPECT_LE(result.dropped, 25u);
}

TEST(Outlier, MadRuleSurvivesHeavyContamination) {
  // 20% outliers drag mean/sigma; MAD still identifies them.
  std::vector<double> xs(80, 100.0);
  support::Rng rng(4);
  for (double& x : xs) x += rng.normal(0.0, 0.5);
  for (int i = 0; i < 20; ++i) xs.push_back(400.0);
  OutlierPolicy policy;
  policy.rule = OutlierRule::kMad;
  policy.k = 5.0;
  policy.max_drop_fraction = 0.3;
  const OutlierResult result = filter_outliers(xs, policy);
  EXPECT_EQ(result.dropped, 20u);
}

TEST(Outlier, MaskMatchesFilter) {
  const auto xs = noisy_window(15, 60, 5);
  const OutlierPolicy policy;
  const auto mask = outlier_mask(xs, policy);
  const auto filtered = filter_outliers(xs, policy);
  std::size_t kept = 0;
  for (std::size_t i = 0; i < xs.size(); ++i)
    if (mask[i]) ++kept;
  EXPECT_EQ(kept, filtered.kept.size());
}

TEST(Outlier, ZeroSpreadWindow) {
  const std::vector<double> xs(30, 42.0);
  const OutlierResult result = filter_outliers(xs, OutlierPolicy{});
  EXPECT_EQ(result.dropped, 0u);
}

TEST(Outlier, RejectsNonPositiveK) {
  OutlierPolicy policy;
  policy.k = 0.0;
  const std::vector<double> xs = {1.0, 2.0};
  EXPECT_THROW(filter_outliers(xs, policy), support::CheckError);
}

}  // namespace
}  // namespace peak::stats
