#include <gtest/gtest.h>

#include "ir/builder.hpp"
#include "ir/loops.hpp"
#include "workloads/workload.hpp"

namespace peak::ir {
namespace {

Function triple_nest() {
  FunctionBuilder b("nest");
  const auto n = b.param_scalar("n");
  const auto out = b.param_scalar("out");
  const auto i = b.scalar("i");
  const auto j = b.scalar("j");
  const auto k = b.scalar("k");
  b.for_loop(i, b.c(0.0), b.v(n), [&] {
    b.for_loop(j, b.c(0.0), b.v(n), [&] {
      b.for_loop(k, b.c(0.0), b.v(n), [&] {
        b.assign(out, b.add(b.v(out), b.c(1.0)));
      });
    });
  });
  return b.build();
}

TEST(Dominators, EntryDominatesEverything) {
  const Function fn = triple_nest();
  const DominatorTree dom(fn);
  for (BlockId b = 0; b < fn.num_blocks(); ++b) {
    ASSERT_TRUE(dom.reachable(b));
    EXPECT_TRUE(dom.dominates(fn.entry(), b));
  }
  EXPECT_EQ(dom.idom(fn.entry()), fn.entry());
}

TEST(Dominators, HeaderDominatesBody) {
  const Function fn = triple_nest();
  const DominatorTree dom(fn);
  const LoopInfo loops = find_natural_loops(fn, dom);
  for (const NaturalLoop& loop : loops.loops)
    for (BlockId b : loop.blocks)
      EXPECT_TRUE(dom.dominates(loop.header, b));
}

TEST(Dominators, JoinPointNotDominatedByBranches) {
  FunctionBuilder b("diamond");
  const auto c = b.param_scalar("c");
  const auto x = b.scalar("x");
  b.if_else(b.gt(b.v(c), b.c(0.0)),
            [&] { b.assign(x, b.c(1.0)); },
            [&] { b.assign(x, b.c(2.0)); });
  b.assign(x, b.add(b.v(x), b.c(1.0)));
  const Function fn = b.build();
  const DominatorTree dom(fn);
  // The then/else arms do not dominate the join; entry does.
  BlockId then_b = kNoBlock, join = kNoBlock;
  for (BlockId blk = 0; blk < fn.num_blocks(); ++blk) {
    if (fn.block(blk).label.starts_with("then")) then_b = blk;
    if (fn.block(blk).label.starts_with("join")) join = blk;
  }
  ASSERT_NE(then_b, kNoBlock);
  ASSERT_NE(join, kNoBlock);
  EXPECT_FALSE(dom.dominates(then_b, join));
  EXPECT_TRUE(dom.dominates(fn.entry(), join));
}

TEST(NaturalLoops, TripleNestDepths) {
  const Function fn = triple_nest();
  const LoopInfo loops = find_natural_loops(fn);
  ASSERT_EQ(loops.loops.size(), 3u);
  EXPECT_EQ(loops.max_depth(), 3u);
  // Exactly one loop at each depth.
  std::vector<std::size_t> depths;
  for (const NaturalLoop& loop : loops.loops) depths.push_back(loop.depth);
  std::sort(depths.begin(), depths.end());
  EXPECT_EQ(depths, (std::vector<std::size_t>{1, 2, 3}));
  // Outer loop strictly contains the inner ones.
  const auto outer = std::find_if(
      loops.loops.begin(), loops.loops.end(),
      [](const NaturalLoop& l) { return l.depth == 1; });
  const auto inner = std::find_if(
      loops.loops.begin(), loops.loops.end(),
      [](const NaturalLoop& l) { return l.depth == 3; });
  EXPECT_GT(outer->blocks.size(), inner->blocks.size());
  EXPECT_TRUE(outer->contains(inner->header));
}

TEST(NaturalLoops, StraightLineHasNone) {
  FunctionBuilder b("straight");
  const auto x = b.param_scalar("x");
  b.assign(x, b.mul(b.v(x), b.c(2.0)));
  const Function fn = b.build();
  EXPECT_TRUE(find_natural_loops(fn).loops.empty());
}

TEST(NaturalLoops, WhileWithBreakStillOneLoop) {
  FunctionBuilder b("breaky");
  const auto n = b.param_scalar("n");
  const auto i = b.scalar("i");
  b.assign(i, b.c(0.0));
  b.while_loop(b.lt(b.v(i), b.v(n)), [&] {
    b.break_if(b.gt(b.v(i), b.c(100.0)));
    b.assign(i, b.add(b.v(i), b.c(1.0)));
  });
  const Function fn = b.build();
  const LoopInfo loops = find_natural_loops(fn);
  ASSERT_EQ(loops.loops.size(), 1u);
  EXPECT_EQ(loops.loops[0].depth, 1u);
}

TEST(NaturalLoops, DepthOfQueries) {
  const Function fn = triple_nest();
  const LoopInfo loops = find_natural_loops(fn);
  EXPECT_EQ(loops.depth_of(fn.entry()), 0u);
  const auto inner = std::find_if(
      loops.loops.begin(), loops.loops.end(),
      [](const NaturalLoop& l) { return l.depth == 3; });
  for (BlockId b : inner->blocks)
    EXPECT_EQ(loops.depth_of(b), 3u);
  EXPECT_EQ(loops.innermost(fn.entry()), nullptr);
}

TEST(NaturalLoops, WorkloadKernelsHaveExpectedStructure) {
  // The 3-deep stencils report depth 3; the branchy integer kernels have
  // data branches that depress loop_regularity in the derived traits.
  const auto mgrid = workloads::make_workload("MGRID");
  EXPECT_EQ(find_natural_loops(mgrid->function()).max_depth(), 3u);
  const auto swim = workloads::make_workload("SWIM");
  EXPECT_EQ(find_natural_loops(swim->function()).max_depth(), 2u);
  const auto crafty = workloads::make_workload("CRAFTY");
  EXPECT_GE(find_natural_loops(crafty->function()).max_depth(), 2u);
}

}  // namespace
}  // namespace peak::ir
