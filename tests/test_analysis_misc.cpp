#include <gtest/gtest.h>

#include "analysis/input_sets.hpp"
#include "analysis/ts_partitioner.hpp"
#include "ir/builder.hpp"

namespace peak::analysis {
namespace {

TEST(InputSets, ModifiedInputSmallerThanInput) {
  // The improved RBR checkpoint (Modified_Input) must be strictly smaller
  // than the basic one (full Input) when read-only inputs exist.
  ir::FunctionBuilder b("kernel");
  const auto n = b.param_scalar("n");
  const auto src = b.param_array("src", 1024, true);   // read-only
  const auto dst = b.param_array("dst", 1024, true);   // read+write
  const auto i = b.scalar("i");
  b.for_loop(i, b.c(0.0), b.v(n), [&] {
    b.store(dst, b.v(i), b.add(b.at(dst, b.v(i)), b.at(src, b.v(i))));
  });
  const ir::Function fn = b.build();
  const InputSetInfo info = analyze_input_sets(fn);

  EXPECT_LT(info.modified_input_bytes(fn), info.input_bytes(fn));
  EXPECT_EQ(info.modified_input.size(), 1u);
  EXPECT_EQ(info.modified_input[0], *fn.find_var("dst"));
  const std::string desc = info.describe(fn);
  EXPECT_NE(desc.find("ModifiedInput={dst}"), std::string::npos);
}

TEST(InputSets, PureOutputNotInModifiedInput) {
  ir::FunctionBuilder b("writer");
  const auto out = b.param_array("out", 64, true);
  const auto i = b.scalar("i");
  b.for_loop(i, b.c(0.0), b.c(64.0), [&] {
    b.store(out, b.v(i), b.v(i));
  });
  const ir::Function fn = b.build();
  const InputSetInfo info = analyze_input_sets(fn);
  // `out` is written but... its old elements are never read before being
  // overwritten element-wise; still, weak defs keep arrays live-in
  // conservatively, so the analysis may include it. What must hold: the
  // def set contains it.
  bool in_defs = false;
  for (ir::VarId v : info.defs) in_defs |= v == *fn.find_var("out");
  EXPECT_TRUE(in_defs);
}

TEST(Partitioner, SideEffectTable) {
  EXPECT_TRUE(callee_has_side_effects("malloc"));
  EXPECT_TRUE(callee_has_side_effects("rand"));
  EXPECT_TRUE(callee_has_side_effects("printf"));
  EXPECT_FALSE(callee_has_side_effects("sin"));
  EXPECT_FALSE(callee_has_side_effects("my_pure_helper"));
}

TEST(Partitioner, ScreensRbrEligibility) {
  ir::FunctionBuilder b("with_malloc");
  b.call("sin", {b.c(1.0)});
  b.call("malloc", {b.c(64.0)});
  const ir::Function fn = b.build();
  const RbrScreenResult screen = screen_for_rbr(fn);
  EXPECT_FALSE(screen.eligible);
  ASSERT_EQ(screen.blocking_calls.size(), 1u);
  EXPECT_EQ(screen.blocking_calls[0], "malloc");
}

TEST(Partitioner, PureCallsPass) {
  ir::FunctionBuilder b("pure");
  b.call("cos", {b.c(0.5)});
  const ir::Function fn = b.build();
  EXPECT_TRUE(screen_for_rbr(fn).eligible);
}

TEST(Partitioner, SelectsByTimeFraction) {
  std::vector<TsCandidate> candidates = {
      {"tiny", 0.01, 100},
      {"huge", 0.60, 5000},
      {"mid", 0.25, 2000},
      {"small", 0.08, 300},
  };
  const auto selected = select_tuning_sections(candidates, 0.05, 0.95);
  ASSERT_EQ(selected.size(), 3u);
  EXPECT_EQ(selected[0].name, "huge");
  EXPECT_EQ(selected[1].name, "mid");
  EXPECT_EQ(selected[2].name, "small");
}

TEST(Partitioner, CumulativeTargetStopsEarly) {
  std::vector<TsCandidate> candidates = {
      {"a", 0.50, 1}, {"b", 0.30, 1}, {"c", 0.15, 1}, {"d", 0.10, 1}};
  const auto selected = select_tuning_sections(candidates, 0.05, 0.75);
  // a + b cover 0.80 >= 0.75; c admitted only while coverage < target.
  ASSERT_EQ(selected.size(), 2u);
}

}  // namespace
}  // namespace peak::analysis
