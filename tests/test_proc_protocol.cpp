#include <gtest/gtest.h>

#include <fcntl.h>
#include <unistd.h>

#include <csignal>
#include <string>
#include <thread>

#include "proc/protocol.hpp"

namespace peak::proc {
namespace {

TEST(FrameEncoding, PrefixIsEightLowercaseHexDigits) {
  const std::string frame = encode_frame("hello");
  ASSERT_EQ(frame.size(), kFramePrefixLen + 5);
  EXPECT_EQ(frame.substr(0, kFramePrefixLen), "00000005");
  EXPECT_EQ(frame.substr(kFramePrefixLen), "hello");
  EXPECT_EQ(encode_frame("").substr(0, kFramePrefixLen), "00000000");
}

TEST(FrameReader, SingleFrameRoundTrips) {
  FrameReader reader;
  const std::string frame = encode_frame("{\"a\":1}");
  reader.feed(frame.data(), frame.size());
  const auto payload = reader.next();
  ASSERT_TRUE(payload.has_value());
  EXPECT_EQ(*payload, "{\"a\":1}");
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.corrupted());
  EXPECT_EQ(reader.pending_bytes(), 0u);
}

TEST(FrameReader, DrainsMultipleFramesFromOneFeed) {
  FrameReader reader;
  const std::string bytes =
      encode_frame("one") + encode_frame("") + encode_frame("three");
  reader.feed(bytes.data(), bytes.size());
  EXPECT_EQ(reader.next().value(), "one");
  EXPECT_EQ(reader.next().value(), "");
  EXPECT_EQ(reader.next().value(), "three");
  EXPECT_FALSE(reader.next().has_value());
}

TEST(FrameReader, ReassemblesAcrossByteAtATimeFeeds) {
  // Pipes deliver arbitrary splits; the reader must be byte-incremental.
  FrameReader reader;
  const std::string frame = encode_frame("payload with spaces");
  std::size_t delivered = 0;
  for (char byte : frame) {
    EXPECT_FALSE(reader.next().has_value())
        << "frame completed early at byte " << delivered;
    reader.feed(&byte, 1);
    ++delivered;
  }
  EXPECT_EQ(reader.next().value(), "payload with spaces");
}

TEST(FrameReader, PartialFrameReportsPendingBytesNotCorruption) {
  // A worker killed mid-write leaves a prefix + partial payload: that is
  // "peer died", not "stream garbage".
  FrameReader reader;
  const std::string frame = encode_frame("abcdefgh");
  reader.feed(frame.data(), frame.size() - 3);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_FALSE(reader.corrupted());
  EXPECT_GT(reader.pending_bytes(), 0u);
}

TEST(FrameReader, NonHexPrefixFlagsCorruption) {
  FrameReader reader;
  const std::string garbage = "this is not a frame\n";
  reader.feed(garbage.data(), garbage.size());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.corrupted());
}

TEST(FrameReader, AbsurdLengthFlagsCorruption) {
  // "ffffffff" decodes to ~4 GiB, far past kMaxFramePayload: the stream
  // is garbage, not a huge frame — flag it instead of buffering forever.
  FrameReader reader;
  const std::string bytes = "ffffffffrest";
  reader.feed(bytes.data(), bytes.size());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.corrupted());
}

TEST(FrameReader, CorruptionIsSticky) {
  FrameReader reader;
  reader.feed("zzzzzzzz", 8);
  EXPECT_FALSE(reader.next().has_value());
  ASSERT_TRUE(reader.corrupted());
  const std::string good = encode_frame("late");
  reader.feed(good.data(), good.size());
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_TRUE(reader.corrupted());
}

TEST(FrameIo, WriteFrameRoundTripsThroughARealPipe) {
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const std::string payload(100'000, 'x');  // forces short writes
  ASSERT_TRUE(write_frame(fds[1], "first"));

  FrameReader reader;
  char buffer[4096];
  // Drain the small frame before pushing the large one so the writer
  // cannot deadlock against a full pipe.
  for (;;) {
    const ssize_t n = ::read(fds[0], buffer, sizeof buffer);
    ASSERT_GT(n, 0);
    reader.feed(buffer, static_cast<std::size_t>(n));
    if (auto first = reader.next()) {
      EXPECT_EQ(*first, "first");
      break;
    }
  }

  bool wrote_large = false;
  std::string large_payload;
  // Writer on a helper thread; the test thread drains.
  std::thread writer([&] { wrote_large = write_frame(fds[1], payload); });
  for (;;) {
    const ssize_t n = ::read(fds[0], buffer, sizeof buffer);
    ASSERT_GT(n, 0);
    reader.feed(buffer, static_cast<std::size_t>(n));
    if (auto frame = reader.next()) {
      large_payload = std::move(*frame);
      break;
    }
  }
  writer.join();
  EXPECT_TRUE(wrote_large);
  EXPECT_EQ(large_payload, payload);
  EXPECT_FALSE(reader.corrupted());
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(FrameIo, WriteToClosedPipeReturnsFalseNotSigpipe) {
  // The supervisor installs SIG_IGN process-wide before it ever writes;
  // this standalone test needs the same arrangement.
  std::signal(SIGPIPE, SIG_IGN);
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  ::close(fds[0]);
  EXPECT_FALSE(write_frame(fds[1], "nobody listening"));
  ::close(fds[1]);
}

}  // namespace
}  // namespace peak::proc
