#include <gtest/gtest.h>

#include <vector>

#include "ir/builder.hpp"
#include "ir/interpreter.hpp"
#include "ir/print.hpp"
#include "support/check.hpp"

namespace peak::ir {
namespace {

/// sum = Σ a[i] for i < n, with a branch skipping negatives.
Function sum_positive() {
  FunctionBuilder b("sum_positive");
  const auto n = b.param_scalar("n");
  const auto a = b.param_array("a", 64, true);
  const auto sum = b.param_scalar("sum", true);
  const auto i = b.scalar("i");
  b.assign(sum, b.c(0.0));
  b.for_loop(i, b.c(0.0), b.v(n), [&] {
    b.if_then(b.gt(b.at(a, b.v(i)), b.c(0.0)), [&] {
      b.assign(sum, b.add(b.v(sum), b.at(a, b.v(i))));
    });
  });
  return b.build();
}

TEST(Builder, ProducesFinalizedCfg) {
  const Function fn = sum_positive();
  EXPECT_TRUE(fn.finalized());
  EXPECT_GT(fn.num_blocks(), 4u);  // entry, header, body, then, join, ...
  EXPECT_EQ(fn.params().size(), 3u);
  EXPECT_TRUE(fn.find_var("sum").has_value());
  EXPECT_FALSE(fn.find_var("nope").has_value());
}

TEST(Builder, PredecessorsAreConsistent) {
  const Function fn = sum_positive();
  const auto& preds = fn.predecessors();
  for (BlockId b = 0; b < fn.num_blocks(); ++b)
    for (BlockId s : fn.successors(b)) {
      const auto& p = preds[s];
      EXPECT_NE(std::find(p.begin(), p.end(), b), p.end());
    }
}

TEST(Interpreter, ComputesCorrectResult) {
  const Function fn = sum_positive();
  Memory mem = Memory::for_function(fn);
  mem.scalar(*fn.find_var("n")) = 5;
  auto& a = mem.array(*fn.find_var("a"));
  a[0] = 1.0; a[1] = -2.0; a[2] = 3.0; a[3] = -4.0; a[4] = 5.0;
  const Interpreter interp(fn);
  const RunResult run = interp.run(mem);
  EXPECT_DOUBLE_EQ(mem.scalar(*fn.find_var("sum")), 9.0);
  EXPECT_GT(run.cycles, 0.0);
  EXPECT_GT(run.steps, 0u);
}

TEST(Interpreter, BlockEntriesMatchControlFlow) {
  const Function fn = sum_positive();
  Memory mem = Memory::for_function(fn);
  mem.scalar(*fn.find_var("n")) = 8;
  auto& a = mem.array(*fn.find_var("a"));
  for (int i = 0; i < 8; ++i) a[static_cast<std::size_t>(i)] = i % 2 ? 1.0 : -1.0;
  const Interpreter interp(fn);
  const RunResult run = interp.run(mem);
  // Entry executes once; some block (the then-branch) executes 4 times;
  // the loop body executes 8 times.
  std::uint64_t max_entries = 0;
  bool saw_four = false, saw_eight = false;
  for (std::uint64_t e : run.block_entries) {
    max_entries = std::max(max_entries, e);
    saw_four |= e == 4;
    saw_eight |= e == 8;
  }
  EXPECT_EQ(run.block_entries[fn.entry()], 1u);
  EXPECT_TRUE(saw_four);
  EXPECT_TRUE(saw_eight);
  EXPECT_LE(max_entries, 9u);  // header: 9 entries
}

TEST(Interpreter, WhileLoopAndBreak) {
  FunctionBuilder b("find_first");
  const auto n = b.param_scalar("n");
  const auto a = b.param_array("a", 32);
  const auto target = b.param_scalar("target");
  const auto pos = b.param_scalar("pos");
  const auto i = b.scalar("i");
  b.assign(pos, b.neg(b.c(1.0)));
  b.for_loop(i, b.c(0.0), b.v(n), [&] {
    b.if_then(b.eq(b.at(a, b.v(i)), b.v(target)),
              [&] { b.assign(pos, b.v(i)); });
    b.break_if(b.ge(b.v(pos), b.c(0.0)));
  });
  const Function fn = b.build();

  Memory mem = Memory::for_function(fn);
  mem.scalar(*fn.find_var("n")) = 10;
  mem.scalar(*fn.find_var("target")) = 7;
  auto& arr = mem.array(*fn.find_var("a"));
  for (int i = 0; i < 10; ++i) arr[static_cast<std::size_t>(i)] = i;
  Interpreter(fn).run(mem);
  EXPECT_DOUBLE_EQ(mem.scalar(*fn.find_var("pos")), 7.0);
}

TEST(Interpreter, ContinueSkipsRestOfBody) {
  FunctionBuilder b("count_odd");
  const auto n = b.param_scalar("n");
  const auto count = b.param_scalar("count");
  const auto i = b.scalar("i");
  b.assign(count, b.c(0.0));
  b.for_loop(i, b.c(0.0), b.v(n), [&] {
    b.continue_if(b.eq(b.mod(b.v(i), b.c(2.0)), b.c(0.0)));
    b.assign(count, b.add(b.v(count), b.c(1.0)));
  });
  const Function fn = b.build();
  Memory mem = Memory::for_function(fn);
  mem.scalar(*fn.find_var("n")) = 9;
  Interpreter(fn).run(mem);
  EXPECT_DOUBLE_EQ(mem.scalar(*fn.find_var("count")), 4.0);  // 1,3,5,7
}

TEST(Interpreter, PointerDerefAndStoreThrough) {
  FunctionBuilder b("through_pointer");
  const auto a = b.param_array("a", 8, true);
  const auto bb = b.param_array("b", 8, true);
  const auto p = b.pointer("p");
  const auto which = b.param_scalar("which");
  b.if_else(b.gt(b.v(which), b.c(0.0)),
            [&] { b.assign(p, b.address_of(a)); },
            [&] { b.assign(p, b.address_of(bb)); });
  b.store_through(p, b.c(2.0), b.add(b.deref(p, b.c(2.0)), b.c(10.0)));
  const Function fn = b.build();

  Memory mem = Memory::for_function(fn);
  mem.scalar(*fn.find_var("which")) = 1;
  mem.array(*fn.find_var("a"))[2] = 5.0;
  Interpreter(fn).run(mem);
  EXPECT_DOUBLE_EQ(mem.array(*fn.find_var("a"))[2], 15.0);
  EXPECT_DOUBLE_EQ(mem.array(*fn.find_var("b"))[2], 0.0);
}

TEST(Interpreter, StepLimitGuardsInfiniteLoops) {
  FunctionBuilder b("forever");
  const auto x = b.scalar("x");
  b.assign(x, b.c(0.0));
  b.while_loop(b.c(1.0), [&] { b.assign(x, b.add(b.v(x), b.c(1.0))); });
  const Function fn = b.build();
  Memory mem = Memory::for_function(fn);
  InterpreterOptions opts;
  opts.max_steps = 1000;
  EXPECT_THROW(Interpreter(fn, opts).run(mem), support::CheckError);
}

TEST(Interpreter, ArrayBoundsChecked) {
  FunctionBuilder b("oob");
  const auto a = b.param_array("a", 4);
  const auto i = b.param_scalar("i");
  const auto out = b.param_scalar("out");
  b.assign(out, b.at(a, b.v(i)));
  const Function fn = b.build();
  Memory mem = Memory::for_function(fn);
  mem.scalar(*fn.find_var("i")) = 4;  // one past the end
  EXPECT_THROW(Interpreter(fn).run(mem), support::CheckError);
}

TEST(Interpreter, WriteHookObservesOldValues) {
  FunctionBuilder b("wh");
  const auto a = b.param_array("a", 4);
  b.store(a, b.c(1.0), b.c(99.0));
  b.store(a, b.c(1.0), b.c(100.0));
  const Function fn = b.build();
  Memory mem = Memory::for_function(fn);
  mem.array(*fn.find_var("a"))[1] = 7.0;

  std::vector<double> old_values;
  InterpreterOptions opts;
  opts.write_hook = [&](VarId, std::size_t index, double old_value) {
    EXPECT_EQ(index, 1u);
    old_values.push_back(old_value);
  };
  Interpreter(fn, opts).run(mem);
  ASSERT_EQ(old_values.size(), 2u);
  EXPECT_DOUBLE_EQ(old_values[0], 7.0);
  EXPECT_DOUBLE_EQ(old_values[1], 99.0);
}

TEST(Interpreter, CountersAreRecorded) {
  FunctionBuilder b("ctr");
  const auto n = b.param_scalar("n");
  const auto i = b.scalar("i");
  b.for_loop(i, b.c(0.0), b.v(n), [&] { b.counter(3); });
  const Function fn = b.build();
  Memory mem = Memory::for_function(fn);
  mem.scalar(*fn.find_var("n")) = 12;
  const RunResult run = Interpreter(fn).run(mem);
  ASSERT_EQ(run.counters.size(), 4u);
  EXPECT_EQ(run.counters[3], 12u);
}

TEST(Print, RendersReadableListing) {
  const Function fn = sum_positive();
  const std::string text = to_string(fn);
  EXPECT_NE(text.find("function sum_positive"), std::string::npos);
  EXPECT_NE(text.find("for.header"), std::string::npos);
  EXPECT_NE(text.find("sum ="), std::string::npos);
}

}  // namespace
}  // namespace peak::ir
