#include <gtest/gtest.h>

#include "core/peak.hpp"
#include "core/profile.hpp"
#include "core/tuning_driver.hpp"
#include "workloads/workload.hpp"

namespace peak::core {
namespace {

class PipelineTest : public ::testing::Test {
protected:
  PipelineTest() : machine_(sim::sparc2()), peak_(machine_) {}

  sim::MachineModel machine_;
  Peak peak_;
};

TEST_F(PipelineTest, ProfileCapturesSwimFacts) {
  auto w = workloads::make_workload("SWIM");
  const workloads::Trace train = w->trace(workloads::DataSet::kTrain, 42);
  const ProfileData profile = profile_workload(*w, train, machine_);

  EXPECT_TRUE(profile.context_analysis.cbr_applicable);
  EXPECT_TRUE(profile.array_contents_constant);
  EXPECT_EQ(profile.num_contexts, 1u);
  EXPECT_EQ(profile.invocations_per_run, train.invocations.size());
  EXPECT_GT(profile.avg_invocation_cycles, 0.0);
  EXPECT_TRUE(profile.rbr_screen.eligible);
  EXPECT_EQ(profile.decision.initial(), rating::Method::kCBR);
  // Input sets: the smoothing kernel reads and writes every field, so the
  // modified input is non-trivial but bounded by the full input.
  EXPECT_GT(profile.input_sets.modified_input_bytes(w->function()), 0u);
  EXPECT_LE(profile.input_sets.modified_input_bytes(w->function()),
            profile.input_sets.input_bytes(w->function()));
}

TEST_F(PipelineTest, RuntimeConstantCheckSeparatesEquakeFromBzip2) {
  for (const auto& [name, constant] :
       std::vector<std::pair<std::string, bool>>{{"EQUAKE", true},
                                                 {"BZIP2", false}}) {
    auto w = workloads::make_workload(name);
    const workloads::Trace train =
        w->trace(workloads::DataSet::kTrain, 42);
    const ProfileData profile = profile_workload(*w, train, machine_);
    EXPECT_TRUE(profile.context_analysis.needs_runtime_constant_check())
        << name;
    EXPECT_EQ(profile.array_contents_constant, constant) << name;
  }
}

TEST_F(PipelineTest, TuningImprovesOverO3OnTrainAndRef) {
  auto w = workloads::make_workload("SWIM");
  const MethodRun run = peak_.tune_with_consultant(*w);
  EXPECT_EQ(run.method, rating::Method::kCBR);
  EXPECT_GT(run.ref_improvement_pct, 1.0);   // found real wins
  EXPECT_LT(run.ref_improvement_pct, 50.0);  // plausible magnitude
  EXPECT_GT(run.cost.invocations, 0u);
  // The tuned config must have disabled something (O3 is not optimal).
  EXPECT_LT(run.best_config.count_enabled(), 38u);
}

TEST_F(PipelineTest, TunedConfigDropsTheStoryFlag) {
  // On SWIM the curated story plants -fschedule-insns as harmful: the
  // search must find and remove it.
  auto w = workloads::make_workload("SWIM");
  const MethodRun run = peak_.tune_with_consultant(*w);
  const auto& space = peak_.effects().space();
  EXPECT_FALSE(run.best_config.enabled(*space.index_of("-fschedule-insns")));
}

TEST_F(PipelineTest, CheaperMethodsBeatWhlOnTuningTime) {
  auto w = workloads::make_workload("SWIM");
  BenchmarkResult result = peak_.run_benchmark(*w);
  const double cbr_norm = result.normalized_tuning_time(
      rating::Method::kCBR, workloads::DataSet::kTrain);
  ASSERT_GT(cbr_norm, 0.0);
  // The paper reports tuning-time reductions of ~10x and more.
  EXPECT_LT(cbr_norm, 0.2);
  // All methods reach similar quality (within a few points of WHL).
  const MethodRun* cbr =
      result.find(rating::Method::kCBR, workloads::DataSet::kTrain);
  const MethodRun* whl =
      result.find(rating::Method::kWHL, workloads::DataSet::kTrain);
  ASSERT_NE(cbr, nullptr);
  ASSERT_NE(whl, nullptr);
  EXPECT_NEAR(cbr->ref_improvement_pct, whl->ref_improvement_pct, 4.0);
}

TEST_F(PipelineTest, ExtraMethodsCanBeForced) {
  auto w = workloads::make_workload("MGRID");
  BenchmarkResult result =
      peak_.run_benchmark(*w, true, {rating::Method::kCBR});
  // MGRID's chain has no CBR (too many contexts) but the forced run exists.
  EXPECT_FALSE(result.decision.applicable(rating::Method::kCBR));
  EXPECT_NE(result.find(rating::Method::kCBR, workloads::DataSet::kTrain),
            nullptr);
}

TEST_F(PipelineTest, AutoFallbackSwitchesMethodWhenNotConverging) {
  // Force CBR to be hopeless by shrinking its sample budget to nothing:
  // the driver must fall through the chain instead of returning garbage.
  auto w = workloads::make_workload("WUPWISE");
  const workloads::Trace train = w->trace(workloads::DataSet::kTrain, 42);
  const ProfileData profile = profile_workload(*w, train, machine_);
  ASSERT_EQ(profile.decision.initial(), rating::Method::kCBR);

  DriverOptions options;
  options.window.max_samples = 4;       // cannot even reach min_samples
  options.window.min_samples = 8;
  options.mbr.max_samples = 4;
  options.mbr.min_samples_per_component = 8;
  sim::FlagEffectModel effects(search::gcc33_o3_space());
  TuningDriver driver(*w, profile, train, machine_, effects, options);
  const TuningOutcome outcome = driver.tune_auto();
  // CBR and MBR both exhaust; RBR (pair windows also tiny but usable
  // ratios) is the terminal method.
  EXPECT_EQ(outcome.method, rating::Method::kRBR);
  EXPECT_FALSE(outcome.events.empty());
  EXPECT_FALSE(outcome.render_search_log().empty());
}

TEST_F(PipelineTest, ArtOnPentium4FindsTheStrictAliasingWin) {
  const sim::MachineModel p4 = sim::pentium4();
  Peak peak(p4);
  auto w = workloads::make_workload("ART");
  const MethodRun run = peak.tune_with_consultant(*w);
  EXPECT_EQ(run.method, rating::Method::kRBR);
  // The paper's headline: ~178% improvement from disabling strict aliasing.
  EXPECT_GT(run.ref_improvement_pct, 120.0);
  const auto& space = peak.effects().space();
  EXPECT_FALSE(
      run.best_config.enabled(*space.index_of("-fstrict-aliasing")));
}

TEST_F(PipelineTest, ArtOnSparcKeepsStrictAliasing) {
  auto w = workloads::make_workload("ART");
  const MethodRun run = peak_.tune_with_consultant(*w);
  const auto& space = peak_.effects().space();
  // On the register-rich SPARC II, strict aliasing helps and must survive.
  EXPECT_TRUE(
      run.best_config.enabled(*space.index_of("-fstrict-aliasing")));
}

TEST_F(PipelineTest, TuningCostAccountingIsConsistent) {
  auto w = workloads::make_workload("SWIM");
  const workloads::Trace train = w->trace(workloads::DataSet::kTrain, 42);
  const ProfileData profile = profile_workload(*w, train, machine_);
  sim::FlagEffectModel effects(search::gcc33_o3_space());
  TuningDriver driver(*w, profile, train, machine_, effects, {});
  const TuningOutcome outcome = driver.tune(rating::Method::kCBR);
  EXPECT_GT(outcome.cost.simulated_time, 0.0);
  EXPECT_NEAR(outcome.cost.program_runs,
              static_cast<double>(outcome.cost.invocations) /
                  static_cast<double>(train.invocations.size()),
              1e-9);
}

}  // namespace
}  // namespace peak::core
