#include <gtest/gtest.h>

#include "core/per_context.hpp"
#include "workloads/workload.hpp"

namespace peak::core {
namespace {

TEST(ContextSensitiveEffects, ApsiRerunLoopOptFlipsWithShape) {
  const auto& space = search::gcc33_o3_space();
  const sim::FlagEffectModel effects(space);
  const auto apsi = workloads::make_workload("APSI");
  const sim::TsTraits traits = apsi->traits();
  const sim::MachineModel machine = sim::sparc2();
  EXPECT_TRUE(effects.context_sensitive(traits));

  const search::FlagConfig with = search::o3_config(space);
  const search::FlagConfig without =
      with.with(*space.index_of("-frerun-loop-opt"), false);

  // Narrow butterflies (ido < 8): the optimization hurts.
  const std::vector<double> small = {4, 32};
  EXPECT_GT(effects.time_multiplier(traits, machine, with, small),
            effects.time_multiplier(traits, machine, without, small));
  // Wide butterflies (ido = 16): it helps.
  const std::vector<double> large = {16, 32};
  EXPECT_LT(effects.time_multiplier(traits, machine, with, large),
            effects.time_multiplier(traits, machine, without, large));

  // Sections without stories are unchanged by the context overload.
  const auto swim = workloads::make_workload("SWIM");
  EXPECT_FALSE(effects.context_sensitive(swim->traits()));
  EXPECT_DOUBLE_EQ(
      effects.time_multiplier(swim->traits(), machine, with, {32, 32}),
      effects.time_multiplier(swim->traits(), machine, with));
}

TEST(PerContextTuning, ContextWinnersDifferAndDispatchWins) {
  const auto apsi = workloads::make_workload("APSI");
  const sim::MachineModel machine = sim::sparc2();
  const sim::FlagEffectModel effects(search::gcc33_o3_space());

  const PerContextOutcome outcome =
      tune_per_context(*apsi, machine, effects);
  ASSERT_EQ(outcome.winners.size(), 3u);  // radb4's three contexts

  // The narrow contexts disable -frerun-loop-opt; the wide one keeps it.
  const auto& space = search::gcc33_o3_space();
  const std::size_t flag = *space.index_of("-frerun-loop-opt");
  EXPECT_FALSE(outcome.winners.at({1, 6}).enabled(flag));
  EXPECT_FALSE(outcome.winners.at({4, 32}).enabled(flag));
  EXPECT_TRUE(outcome.winners.at({16, 32}).enabled(flag));

  // Per-context dispatch beats the single tuned version (paper §2.2: the
  // adaptive scenario "would make use of all versions"). The single
  // version may even lose slightly overall — its winner is tuned for the
  // dominant context at the expense of the others, the exact failure mode
  // dispatch exists to avoid.
  EXPECT_GT(outcome.dispatch_improvement_pct,
            outcome.single_improvement_pct + 0.5);
  EXPECT_GT(outcome.dispatch_improvement_pct, 0.0);
  EXPECT_GT(outcome.single_improvement_pct, -2.0);
}

TEST(PerContextTuning, SingleContextSectionDegeneratesGracefully) {
  const auto swim = workloads::make_workload("SWIM");
  const sim::MachineModel machine = sim::sparc2();
  const sim::FlagEffectModel effects(search::gcc33_o3_space());
  const PerContextOutcome outcome =
      tune_per_context(*swim, machine, effects);
  ASSERT_EQ(outcome.winners.size(), 1u);
  // With one context, dispatch and single-version deployment coincide.
  EXPECT_DOUBLE_EQ(outcome.dispatch_improvement_pct,
                   outcome.single_improvement_pct);
}

TEST(PerContextTuning, RejectsNonCbrSections) {
  const auto bzip2 = workloads::make_workload("BZIP2");
  const sim::MachineModel machine = sim::sparc2();
  const sim::FlagEffectModel effects(search::gcc33_o3_space());
  EXPECT_THROW(tune_per_context(*bzip2, machine, effects),
               support::CheckError);
}

}  // namespace
}  // namespace peak::core
