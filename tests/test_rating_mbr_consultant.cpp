#include <gtest/gtest.h>

#include "rating/consultant.hpp"
#include "rating/mbr.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace peak::rating {
namespace {

TEST(Mbr, PaperFigure2WorkedExample) {
  // Figure 2: Y = [11015 5508 6626 6044 8793], C row 1 = [100 50 60 55 80],
  // C row 2 = 1s. Regression yields T = [110.05, 3.75]; the first
  // component dominates, so the version's rating is T_1.
  MbrProfile profile;
  profile.dominant_component = 0;
  MbrPolicy policy;
  policy.min_samples_per_component = 2;
  ModelBasedRater rater(2, profile, policy);
  const double counts[5] = {100, 50, 60, 55, 80};
  const double times[5] = {11015, 5508, 6626, 6044, 8793};
  for (int i = 0; i < 5; ++i) rater.add({counts[i], 1.0}, times[i]);

  const Rating r = rater.rating();
  EXPECT_NEAR(r.eval, 110.05, 0.3);
  EXPECT_LT(r.var, 0.001);
  const std::vector<double> t = rater.component_times();
  ASSERT_EQ(t.size(), 2u);
  EXPECT_NEAR(t[0], 110.05, 0.3);
}

TEST(Mbr, RecoversPlantedComponentTimesUnderNoise) {
  support::Rng rng(11);
  MbrProfile profile;
  profile.c_avg = {50.0, 20.0, 1.0};
  ModelBasedRater rater(3, profile);
  const double t1 = 7.0, t2 = 30.0, tc = 500.0;
  for (int i = 0; i < 300; ++i) {
    const double c1 = rng.uniform(20, 100);
    const double c2 = rng.uniform(5, 40);
    const double y = (t1 * c1 + t2 * c2 + tc) * rng.lognormal(0.01);
    rater.add({c1, c2, 1.0}, y);
  }
  const std::vector<double> t = rater.component_times();
  ASSERT_EQ(t.size(), 3u);
  EXPECT_NEAR(t[0], t1, 0.5);
  EXPECT_NEAR(t[1], t2, 2.0);
  // EVAL = T_avg with the profiled average counts.
  const double expected_tavg = t1 * 50 + t2 * 20 + tc;
  EXPECT_NEAR(rater.rating().eval, expected_tavg, 0.03 * expected_tavg);
}

TEST(Mbr, ConstantOnlyModelDegeneratesToMean) {
  // Single-context sections have only the constant component; the paper
  // notes MBR then equals CBR/AVG. Convergence must still work (by the
  // standard error of the mean, not the residual ratio).
  MbrProfile profile;  // no dominant, no c_avg
  MbrPolicy policy;
  policy.min_samples_per_component = 8;
  ModelBasedRater rater(1, profile, policy);
  support::Rng rng(12);
  for (int i = 0; i < 400 && !rater.converged(); ++i)
    rater.add({1.0}, rng.normal(250.0, 2.0));
  EXPECT_TRUE(rater.converged());
  EXPECT_NEAR(rater.rating().eval, 250.0, 1.0);
}

TEST(Mbr, VarReportsUnexplainedResidual) {
  // Irregular behaviour (per-invocation factor uncorrelated with counts)
  // shows up as a large VAR — the paper's accuracy caveat for MBR.
  support::Rng rng(13);
  MbrProfile profile;
  profile.c_avg = {10.0, 1.0};
  ModelBasedRater rater(2, profile);
  for (int i = 0; i < 200; ++i) {
    const double c = rng.uniform(5, 15);
    rater.add({c, 1.0}, (5.0 * c + 50.0) * rng.lognormal(0.3));
  }
  EXPECT_GT(rater.rating().var, 0.2);
}

TEST(Mbr, TooFewSamplesNotConverged) {
  ModelBasedRater rater(2, MbrProfile{});
  rater.add({1.0, 1.0}, 10.0);
  const Rating r = rater.rating();
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.samples, 1u);
}

TEST(Mbr, RejectsArityMismatch) {
  ModelBasedRater rater(2, MbrProfile{});
  EXPECT_THROW(rater.add({1.0}, 10.0), support::CheckError);
}

TEST(Consultant, RegularFewContextSection) {
  ConsultantInputs in;
  in.cbr_context_scalars_only = true;
  in.num_contexts = 2;
  in.invocations = 3000;
  in.mbr_model_built = true;
  in.num_components = 2;
  in.rbr_no_side_effects = true;
  const MethodDecision d = decide_rating_methods(in);
  // Full chain, cheapest first — the paper's ordering CBR < MBR < RBR.
  ASSERT_EQ(d.chain.size(), 3u);
  EXPECT_EQ(d.chain[0], Method::kCBR);
  EXPECT_EQ(d.chain[1], Method::kMBR);
  EXPECT_EQ(d.chain[2], Method::kRBR);
  EXPECT_EQ(d.initial(), Method::kCBR);
}

TEST(Consultant, TooManyContextsSkipsCbr) {
  ConsultantInputs in;
  in.cbr_context_scalars_only = true;
  in.num_contexts = 500;
  in.invocations = 3000;
  in.mbr_model_built = true;
  in.num_components = 3;
  const MethodDecision d = decide_rating_methods(in);
  EXPECT_FALSE(d.applicable(Method::kCBR));
  EXPECT_EQ(d.initial(), Method::kMBR);
  EXPECT_NE(d.rationale.find("contexts"), std::string::npos);
}

TEST(Consultant, FewInvocationsPerContextSkipsCbr) {
  ConsultantInputs in;
  in.cbr_context_scalars_only = true;
  in.num_contexts = 20;
  in.invocations = 50;  // 2.5 per context < the "10s of times" rule
  in.mbr_model_built = false;
  const MethodDecision d = decide_rating_methods(in);
  EXPECT_FALSE(d.applicable(Method::kCBR));
  EXPECT_EQ(d.initial(), Method::kRBR);
}

TEST(Consultant, NonScalarContextAndIrregularModel) {
  ConsultantInputs in;
  in.cbr_context_scalars_only = false;
  in.mbr_model_built = false;
  in.rbr_no_side_effects = true;
  const MethodDecision d = decide_rating_methods(in);
  ASSERT_EQ(d.chain.size(), 1u);
  EXPECT_EQ(d.chain[0], Method::kRBR);
}

TEST(Consultant, SideEffectsRemoveRbr) {
  ConsultantInputs in;
  in.cbr_context_scalars_only = true;
  in.num_contexts = 1;
  in.invocations = 100;
  in.mbr_model_built = true;
  in.num_components = 1;
  in.rbr_no_side_effects = false;
  const MethodDecision d = decide_rating_methods(in);
  EXPECT_FALSE(d.applicable(Method::kRBR));
  EXPECT_EQ(d.chain.size(), 2u);
}

TEST(Consultant, TooManyComponentsSkipsMbr) {
  ConsultantInputs in;
  in.cbr_context_scalars_only = false;
  in.mbr_model_built = true;
  in.num_components = 12;
  const MethodDecision d = decide_rating_methods(in);
  EXPECT_FALSE(d.applicable(Method::kMBR));
}

TEST(Consultant, EmptyChainFallsBackToWhl) {
  MethodDecision d;
  EXPECT_EQ(d.initial(), Method::kWHL);
}

}  // namespace
}  // namespace peak::rating
