#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <numeric>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "support/table.hpp"
#include "support/thread_pool.hpp"

namespace peak::support {
namespace {

TEST(ThreadPool, SubmitReturnsResults) {
  ThreadPool pool(3);
  auto f1 = pool.submit([] { return 41 + 1; });
  auto f2 = pool.submit([] { return std::string("ok"); });
  EXPECT_EQ(f1.get(), 42);
  EXPECT_EQ(f2.get(), "ok");
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(0, hits.size(),
                    [&](std::size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ExceptionPropagates) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ParallelForSurvivesSkewedTaskCosts) {
  // Regression test for static chunking. Index 0 cannot finish until every
  // other index has run. With pre-assigned chunks (e.g. 17 indices over 8
  // chunks of 3), indices 1 and 2 sit *behind* index 0 in its chunk and
  // can never run — deadlock. Dynamic claiming lets the other workers (and
  // the calling thread) drain indices 1..16 while index 0 waits.
  ThreadPool pool(2);
  constexpr std::size_t kN = 17;
  std::atomic<std::size_t> others_done{0};
  std::atomic<bool> timed_out{false};
  pool.parallel_for(0, kN, [&](std::size_t i) {
    if (i != 0) {
      others_done.fetch_add(1);
      return;
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (others_done.load() < kN - 1) {
      if (std::chrono::steady_clock::now() > deadline) {
        timed_out.store(true);  // fail instead of hanging the suite
        return;
      }
      std::this_thread::yield();
    }
  });
  EXPECT_FALSE(timed_out.load())
      << "parallel_for stranded iterations behind a slow index";
  EXPECT_EQ(others_done.load(), kN - 1);
}

TEST(ThreadPool, ParallelForRunsEveryIterationDespiteExceptions) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(64);
  EXPECT_THROW(pool.parallel_for(0, hits.size(),
                                 [&](std::size_t i) {
                                   hits[i].fetch_add(1);
                                   if (i % 7 == 3)
                                     throw std::runtime_error("iteration");
                                 }),
               std::runtime_error);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ManySmallTasks) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  std::vector<std::future<void>> futs;
  for (int i = 1; i <= 200; ++i)
    futs.push_back(pool.submit([&sum, i] { sum.fetch_add(i); }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(sum.load(), 200 * 201 / 2);
}

TEST(Table, RendersHeaderSeparatorAndAlignment) {
  Table t("demo");
  t.row({"name", "value"});
  t.row({"alpha", "1.00"});
  t.row({"b", "12.50"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("== demo =="), std::string::npos);
  EXPECT_NE(out.find("| name  | value |"), std::string::npos);
  EXPECT_NE(out.find("|-------|-------|"), std::string::npos);
  EXPECT_NE(out.find("| alpha | 1.00  |"), std::string::npos);
}

TEST(Table, NumericHelpers) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::mean_sd(0.5, 1.25, 2), "0.50(1.25)");
}

TEST(Table, RowBuilder) {
  Table t;
  t.row({"a", "b"});
  t.add_row().cell("x").num(2.5, 1);
  EXPECT_EQ(t.rows(), 2u);
}

}  // namespace
}  // namespace peak::support
