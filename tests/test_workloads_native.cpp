#include <gtest/gtest.h>

#include "core/report.hpp"
#include "ir/interpreter.hpp"
#include "workloads/native.hpp"
#include "workloads/workload.hpp"

namespace peak::workloads {
namespace {

/// Cross-validation harness: bind a trace invocation into IR memory, copy
/// the relevant buffers, run the interpreter and the native kernel on the
/// same inputs, compare outputs.
class CrossValidation : public ::testing::Test {
protected:
  static ir::Memory bound_memory(const Workload& w,
                                 const sim::Invocation& inv) {
    ir::Memory mem = ir::Memory::for_function(w.function());
    inv.bind(mem);
    return mem;
  }
};

TEST_F(CrossValidation, SwimCalc3MatchesNative) {
  const auto w = make_workload("SWIM");
  const Trace trace = w->trace(DataSet::kTrain, 31);
  const ir::Function& fn = w->function();

  for (std::size_t k = 0; k < 3; ++k) {
    ir::Memory mem = bound_memory(*w, trace.invocations[k]);
    const auto n = static_cast<std::size_t>(mem.scalar(*fn.find_var("n")));
    const auto m = static_cast<std::size_t>(mem.scalar(*fn.find_var("m")));
    const double alpha = mem.scalar(*fn.find_var("alpha"));

    // Native copies of the mutable fields.
    auto u = mem.array(*fn.find_var("u"));
    auto uold = mem.array(*fn.find_var("uold"));
    auto v = mem.array(*fn.find_var("v"));
    auto vold = mem.array(*fn.find_var("vold"));
    auto p = mem.array(*fn.find_var("p"));
    auto pold = mem.array(*fn.find_var("pold"));
    native::calc3(n, m, alpha, u, uold, mem.array(*fn.find_var("unew")),
                  v, vold, mem.array(*fn.find_var("vnew")), p, pold,
                  mem.array(*fn.find_var("pnew")));

    ir::Interpreter(fn).run(mem);
    EXPECT_EQ(mem.array(*fn.find_var("u")), u);
    EXPECT_EQ(mem.array(*fn.find_var("uold")), uold);
    EXPECT_EQ(mem.array(*fn.find_var("v")), v);
    EXPECT_EQ(mem.array(*fn.find_var("p")), p);
    EXPECT_EQ(mem.array(*fn.find_var("pold")), pold);
  }
}

TEST_F(CrossValidation, EquakeSmvpMatchesNative) {
  const auto w = make_workload("EQUAKE");
  const Trace trace = w->trace(DataSet::kTrain, 32);
  const ir::Function& fn = w->function();

  for (std::size_t k = 0; k < 3; ++k) {
    ir::Memory mem = bound_memory(*w, trace.invocations[k]);
    const auto nodes =
        static_cast<std::size_t>(mem.scalar(*fn.find_var("nodes")));
    auto w_native = mem.array(*fn.find_var("w"));
    native::smvp(nodes, mem.array(*fn.find_var("Aindex")),
                 mem.array(*fn.find_var("Acol")),
                 mem.array(*fn.find_var("Aval")),
                 mem.array(*fn.find_var("v")), w_native);

    ir::Interpreter(fn).run(mem);
    const auto& w_ir = mem.array(*fn.find_var("w"));
    ASSERT_EQ(w_ir.size(), w_native.size());
    for (std::size_t i = 0; i < nodes; ++i)
      EXPECT_NEAR(w_ir[i], w_native[i], 1e-9) << "node " << i;
  }
}

TEST_F(CrossValidation, ArtMatchMatchesNative) {
  const auto w = make_workload("ART");
  const Trace trace = w->trace(DataSet::kTrain, 33);
  const ir::Function& fn = w->function();

  for (std::size_t k = 0; k < 3; ++k) {
    ir::Memory mem = bound_memory(*w, trace.invocations[k]);
    const auto f1s =
        static_cast<std::size_t>(mem.scalar(*fn.find_var("numf1s")));
    const auto f2s =
        static_cast<std::size_t>(mem.scalar(*fn.find_var("numf2s")));
    auto f1 = mem.array(*fn.find_var("f1"));
    auto y = mem.array(*fn.find_var("y"));
    native::art_match(f1s, f2s, mem.array(*fn.find_var("input")),
                      mem.array(*fn.find_var("bus")), f1, y);

    ir::Interpreter(fn).run(mem);
    const auto& y_ir = mem.array(*fn.find_var("y"));
    for (std::size_t j = 0; j < f2s; ++j)
      EXPECT_NEAR(y_ir[j], y[j], 1e-9) << "f2 " << j;
  }
}

TEST_F(CrossValidation, Bzip2FullGtUMatchesNative) {
  const auto w = make_workload("BZIP2");
  const Trace trace = w->trace(DataSet::kTrain, 34);
  const ir::Function& fn = w->function();

  for (std::size_t k = 0; k < 10; ++k) {
    ir::Memory mem = bound_memory(*w, trace.invocations[k]);
    const auto i1 = static_cast<std::size_t>(mem.scalar(*fn.find_var("i1")));
    const auto i2 = static_cast<std::size_t>(mem.scalar(*fn.find_var("i2")));
    const auto nblock =
        static_cast<std::size_t>(mem.scalar(*fn.find_var("nblock")));
    const double expected =
        native::full_gt_u(i1, i2, nblock, mem.array(*fn.find_var("block")));

    ir::Interpreter(fn).run(mem);
    EXPECT_DOUBLE_EQ(mem.scalar(*fn.find_var("result")), expected)
        << "invocation " << k;
  }
}

TEST_F(CrossValidation, MgridResidMatchesNative) {
  const auto w = make_workload("MGRID");
  const Trace trace = w->trace(DataSet::kTrain, 35);
  const ir::Function& fn = w->function();

  for (std::size_t k = 0; k < 4; ++k) {
    ir::Memory mem = bound_memory(*w, trace.invocations[k]);
    const auto n = static_cast<std::size_t>(mem.scalar(*fn.find_var("n")));
    const auto sweep =
        static_cast<std::size_t>(mem.scalar(*fn.find_var("sweep")));
    auto r = mem.array(*fn.find_var("r"));
    native::resid(n, sweep, mem.array(*fn.find_var("u")),
                  mem.array(*fn.find_var("v")), r);

    ir::Interpreter(fn).run(mem);
    const auto& r_ir = mem.array(*fn.find_var("r"));
    for (std::size_t i = 0; i < n * n * n; ++i)
      EXPECT_NEAR(r_ir[i], r[i], 1e-9) << "cell " << i << " n " << n;
  }
}

TEST(Report, CsvEscaping) {
  using core::csv_escape;
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(Report, CsvAndMarkdownRenderRuns) {
  core::BenchmarkResult result;
  result.benchmark = "SWIM";
  result.ts_name = "calc3";
  result.chosen = rating::Method::kCBR;
  core::MethodRun run;
  run.method = rating::Method::kCBR;
  run.tuned_on = DataSet::kTrain;
  run.ref_improvement_pct = 5.06;
  run.cost.simulated_time = 1.0e8;
  run.cost.invocations = 1234;
  run.cost.program_runs = 6.2;
  result.runs.push_back(run);
  core::MethodRun whl = run;
  whl.method = rating::Method::kWHL;
  whl.cost.simulated_time = 1.0e10;
  result.runs.push_back(whl);

  const std::string csv = core::to_csv({result});
  EXPECT_NE(csv.find("benchmark,section,method"), std::string::npos);
  EXPECT_NE(csv.find("SWIM,calc3,CBR,train,5.06"), std::string::npos);
  EXPECT_NE(csv.find(",yes"), std::string::npos);  // consultant choice

  const std::string md = core::to_markdown({result});
  EXPECT_NE(md.find("| SWIM | calc3 | CBR | train | 5.06 | 0.010 | ✔ |"),
            std::string::npos);
}

}  // namespace
}  // namespace peak::workloads
