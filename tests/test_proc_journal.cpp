#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/journal.hpp"
#include "core/profile.hpp"
#include "core/rating_cache.hpp"
#include "core/tuning_driver.hpp"
#include "obs/metrics.hpp"
#include "support/check.hpp"
#include "workloads/workload.hpp"

namespace peak::core {
namespace {

/// Durability tests for the two append-only JSONL stores: the tuning
/// journal (replay must survive a corrupt mid-file line in lenient mode
/// and refuse it in --journal-strict) and the rating cache (concurrent
/// writer processes must interleave whole lines, damaged lines cost only
/// themselves).
class ProcDurabilityTest : public ::testing::Test {
protected:
  ProcDurabilityTest()
      : machine_(sim::sparc2()), effects_(search::gcc33_o3_space()) {}

  struct Setup {
    std::unique_ptr<workloads::Workload> workload;
    workloads::Trace train;
    ProfileData profile;
  };

  Setup setup(const std::string& name) {
    Setup s;
    s.workload = workloads::make_workload(name);
    s.train = s.workload->trace(workloads::DataSet::kTrain, 42);
    s.profile = profile_workload(*s.workload, s.train, machine_);
    return s;
  }

  TuningOutcome tune(const Setup& s, const DriverOptions& options,
                     rating::Method method) {
    TuningDriver driver(*s.workload, s.profile, s.train, machine_,
                        effects_, options);
    return driver.tune(method);
  }

  static std::string temp_path(const std::string& name) {
    const std::string path = ::testing::TempDir() + name;
    std::remove(path.c_str());
    return path;
  }

  static std::vector<std::string> read_lines(const std::string& path) {
    std::vector<std::string> lines;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    return lines;
  }

  static void write_lines(const std::string& path,
                          const std::vector<std::string>& lines) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    for (const std::string& line : lines) out << line << '\n';
  }

  /// A journal whose middle line was damaged in place — the record lost
  /// its tail (torn write / bad sector), leaving a complete but
  /// unparseable line followed by intact records.
  std::string corrupted_journal(const Setup& s, const std::string& name,
                                TuningOutcome* outcome) {
    const std::string path = temp_path(name);
    DriverOptions options;
    options.search_threads = 1;
    options.fault.journal_path = path;
    *outcome = tune(s, options, rating::Method::kCBR);
    std::vector<std::string> lines = read_lines(path);
    EXPECT_GT(lines.size(), 4u);
    lines[lines.size() / 2] = R"({"type":"eval","base":"torn)";
    write_lines(path, lines);
    return path;
  }

  static std::uint64_t counter(const std::string& name) {
    return obs::counter(name).value();
  }

  sim::MachineModel machine_;
  sim::FlagEffectModel effects_;
};

TEST_F(ProcDurabilityTest, LenientLoadReplaysPrefixAndCountsTheTail) {
  Setup s = setup("SWIM");
  TuningOutcome original;
  const std::string path =
      corrupted_journal(s, "peak_journal_torn_load.jsonl", &original);
  const std::size_t total_lines = read_lines(path).size();

  const std::uint64_t before = counter("journal.corrupt_lines");
  TuningJournal::LoadStats stats;
  const auto segments =
      TuningJournal::load(path, /*strict=*/false, &stats);
  ASSERT_EQ(segments.size(), 1u);
  EXPECT_FALSE(segments[0].evals.empty());
  EXPECT_TRUE(stats.truncated);
  // The damaged line and everything after it count as lost: the eval
  // chain is sequence-checked, so the tail is unreplayable even where it
  // parses.
  EXPECT_GE(stats.corrupt_lines, 1u);
  EXPECT_LE(stats.corrupt_lines, total_lines);
  EXPECT_GT(stats.good_bytes, 0u);
  EXPECT_EQ(counter("journal.corrupt_lines"),
            before + stats.corrupt_lines);
}

TEST_F(ProcDurabilityTest, StrictLoadThrowsOnMidFileCorruption) {
  Setup s = setup("SWIM");
  TuningOutcome original;
  const std::string path =
      corrupted_journal(s, "peak_journal_torn_strict.jsonl", &original);
  EXPECT_THROW(TuningJournal::load(path, /*strict=*/true),
               support::CheckError);
}

TEST_F(ProcDurabilityTest, PartialTrailingLineIsFineEvenInStrictMode) {
  // A trailing partial line is the normal shape of a crash mid-append,
  // not corruption: strict mode tolerates it too.
  Setup s = setup("SWIM");
  const std::string path = temp_path("peak_journal_tail_strict.jsonl");
  DriverOptions options;
  options.search_threads = 1;
  options.fault.journal_path = path;
  (void)tune(s, options, rating::Method::kCBR);
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << R"({"type":"eval","base":"dead)";
  }
  TuningJournal::LoadStats stats;
  const auto segments = TuningJournal::load(path, /*strict=*/true, &stats);
  EXPECT_EQ(segments.size(), 1u);
  EXPECT_FALSE(stats.truncated);
  EXPECT_EQ(stats.corrupt_lines, 0u);
}

TEST_F(ProcDurabilityTest, ResumeFromTornJournalIsBitIdentical) {
  Setup s = setup("SWIM");
  TuningOutcome original;
  const std::string path =
      corrupted_journal(s, "peak_journal_torn_resume.jsonl", &original);

  // Lenient resume replays the good prefix and re-measures the rest
  // live; batch-mode ratings are content-seeded, so the re-measured tail
  // is the same as the recorded one and the outcome is bit-identical.
  DriverOptions resume;
  resume.search_threads = 1;
  resume.fault.journal_path = path;
  resume.fault.resume = true;
  EXPECT_EQ(tune(s, resume, rating::Method::kCBR), original);

  // The resumed run truncated the corrupt tail and appended its live
  // evals: a second resume of the same file replays clean.
  const std::uint64_t before = counter("journal.corrupt_lines");
  DriverOptions again = resume;
  EXPECT_EQ(tune(s, again, rating::Method::kCBR), original);
  EXPECT_EQ(counter("journal.corrupt_lines"), before);
}

TEST_F(ProcDurabilityTest, StrictResumeRefusesACorruptJournal) {
  Setup s = setup("SWIM");
  TuningOutcome original;
  const std::string path =
      corrupted_journal(s, "peak_journal_torn_refuse.jsonl", &original);
  DriverOptions resume;
  resume.search_threads = 1;
  resume.fault.journal_path = path;
  resume.fault.resume = true;
  resume.fault.journal_strict = true;
  EXPECT_THROW(tune(s, resume, rating::Method::kCBR),
               support::CheckError);
}

TEST_F(ProcDurabilityTest, CacheWriterProcessesInterleaveWholeLines) {
  const std::string path = temp_path("peak_cache_two_writers.jsonl");
  constexpr int kWriters = 2;
  constexpr int kEntries = 200;

  // Two child processes append concurrently to the same cache file.
  // flock + O_APPEND must keep every record a whole line, so the merged
  // file loads every entry from both writers.
  std::vector<pid_t> children;
  for (int w = 0; w < kWriters; ++w) {
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
      RatingCache cache(path);
      for (int i = 0; i < kEntries; ++i) {
        RatingCacheEntry entry;
        entry.r = 1.0 + w;
        entry.invocations = static_cast<std::uint64_t>(i);
        // Long-ish payload so a non-atomic append would tear visibly.
        entry.memo_added.emplace_back(std::string(120, 'a' + w),
                                      static_cast<double>(i));
        cache.store("w" + std::to_string(w) + "-" + std::to_string(i),
                    entry);
      }
      ::_exit(0);
    }
    children.push_back(pid);
  }
  for (pid_t pid : children) {
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);
  }

  const std::uint64_t corrupt_before = counter("search.cache.corrupt_lines");
  RatingCache merged(path);
  EXPECT_EQ(merged.size(),
            static_cast<std::size_t>(kWriters * kEntries));
  EXPECT_EQ(counter("search.cache.corrupt_lines"), corrupt_before);
  const auto entry = merged.lookup("w1-7");
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->r, 2.0);
}

TEST_F(ProcDurabilityTest, CacheSkipsAndCountsDamagedLines) {
  const std::string path = temp_path("peak_cache_damaged.jsonl");
  {
    RatingCache cache(path);
    for (int i = 0; i < 5; ++i) {
      RatingCacheEntry entry;
      entry.r = static_cast<double>(i);
      cache.store("k" + std::to_string(i), entry);
    }
  }
  // Damage the middle: one garbage line and one truncated record.
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 5u);
  lines.insert(lines.begin() + 2, "!!! not json at all");
  lines.insert(lines.begin() + 4, lines[4].substr(0, 10));
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    for (const std::string& line : lines) out << line << '\n';
  }

  // Cache entries are position-independent: a hole costs only itself.
  const std::uint64_t before = counter("search.cache.corrupt_lines");
  RatingCache damaged(path);
  EXPECT_EQ(damaged.size(), 5u);
  EXPECT_EQ(counter("search.cache.corrupt_lines"), before + 2);
  for (int i = 0; i < 5; ++i)
    EXPECT_TRUE(damaged.lookup("k" + std::to_string(i)).has_value()) << i;
}

}  // namespace
}  // namespace peak::core
