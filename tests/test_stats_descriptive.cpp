#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "stats/descriptive.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace peak::stats {
namespace {

TEST(Descriptive, MeanVarianceStddev) {
  const std::vector<double> xs = {2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(variance(xs), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_NEAR(stddev(xs), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Descriptive, EmptyAndSingleton) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(variance({}), 0.0);
  const std::vector<double> one = {3.5};
  EXPECT_DOUBLE_EQ(mean(one), 3.5);
  EXPECT_DOUBLE_EQ(variance(one), 0.0);
}

TEST(Descriptive, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4, 1, 3, 2}), 2.5);
}

TEST(Descriptive, MadEstimatesSigmaForNormalData) {
  support::Rng rng(5);
  std::vector<double> xs(20000);
  for (double& x : xs) x = rng.normal(10.0, 2.0);
  EXPECT_NEAR(mad(xs), 2.0, 0.1);
}

TEST(Descriptive, MadRobustToOutliers) {
  std::vector<double> xs(100, 1.0);
  for (int i = 0; i < 10; ++i) xs[static_cast<std::size_t>(i)] = 1000.0;
  EXPECT_LT(mad(xs), 1.0);  // unchanged by the 10% contamination
}

TEST(Descriptive, Percentile) {
  const std::vector<double> xs = {10, 20, 30, 40, 50};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 50.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 30.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 20.0);
}

TEST(Descriptive, MinMax) {
  const std::vector<double> xs = {3, -1, 7};
  EXPECT_DOUBLE_EQ(min(xs), -1.0);
  EXPECT_DOUBLE_EQ(max(xs), 7.0);
}

TEST(Welford, MatchesBatchComputation) {
  support::Rng rng(6);
  std::vector<double> xs(500);
  Welford acc;
  for (double& x : xs) {
    x = rng.uniform(0.0, 100.0);
    acc.add(x);
  }
  EXPECT_NEAR(acc.mean(), mean(xs), 1e-9);
  EXPECT_NEAR(acc.variance(), variance(xs), 1e-9);
  EXPECT_EQ(acc.count(), xs.size());
}

TEST(Welford, MergeEqualsSinglePass) {
  support::Rng rng(7);
  Welford all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(5.0, 3.0);
    all.add(x);
    (i < 400 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.count(), all.count());
}

TEST(SortedVariants, MedianSortedMatchesMedian) {
  support::Rng rng(11);
  for (int n = 0; n <= 64; ++n) {
    std::vector<double> xs;
    for (int i = 0; i < n; ++i)
      xs.push_back(rng.uniform(0, 10));  // duplicates likely
    std::vector<double> sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_DOUBLE_EQ(median_sorted(sorted), median(xs)) << "n=" << n;
  }
}

TEST(SortedVariants, MadSortedMatchesMad) {
  support::Rng rng(12);
  for (int n = 0; n <= 64; ++n) {
    std::vector<double> xs;
    for (int i = 0; i < n; ++i)
      xs.push_back(rng.lognormal(0.5) * (i % 5 == 0 ? 100.0 : 1.0));
    std::vector<double> sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_DOUBLE_EQ(mad_sorted(sorted), mad(xs)) << "n=" << n;
  }
}

TEST(SortedVariants, MadSortedHandlesConstantData) {
  const std::vector<double> xs(9, 4.2);
  EXPECT_DOUBLE_EQ(mad_sorted(xs), 0.0);
  EXPECT_DOUBLE_EQ(median_sorted(xs), 4.2);
}

TEST(SortedVariants, NonFiniteSamplesAreRejectedLoudly) {
  // A NaN poisons order-statistics silently (std::sort's ordering becomes
  // meaningless); the sorted variants must refuse the window instead of
  // returning a garbage estimate. NaN sorts to an end under the library's
  // upper_bound insertion, so the O(1) front/back check suffices.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  const std::vector<double> with_nan = {nan, 1.0, 2.0};
  const std::vector<double> with_inf = {1.0, 2.0, inf};
  EXPECT_THROW(median_sorted(with_nan), support::CheckError);
  EXPECT_THROW(median_sorted(with_inf), support::CheckError);
  EXPECT_THROW(mad_sorted(with_nan), support::CheckError);
  EXPECT_THROW(mad_sorted(with_inf), support::CheckError);
}

TEST(Welford, MergeWithEmpty) {
  Welford a, b;
  a.add(1.0);
  a.add(2.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

}  // namespace
}  // namespace peak::stats
