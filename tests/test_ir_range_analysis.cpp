#include <gtest/gtest.h>

#include "analysis/input_sets.hpp"
#include "core/profile.hpp"
#include "ir/builder.hpp"
#include "ir/range_analysis.hpp"
#include "runtime/snapshot.hpp"
#include "sim/machine.hpp"
#include "workloads/workload.hpp"

namespace peak::ir {
namespace {

TEST(IntervalArith, BasicOperations) {
  const Interval a{2, 5}, b{-1, 3};
  EXPECT_EQ(iv_add(a, b), (Interval{1, 8}));
  EXPECT_EQ(iv_sub(a, b), (Interval{-1, 6}));
  EXPECT_EQ(iv_mul(a, b), (Interval{-5, 15}));
  EXPECT_EQ(iv_neg(a), (Interval{-5, -2}));
  EXPECT_EQ(iv_abs(b), (Interval{0, 3}));
  EXPECT_EQ(hull(a, b), (Interval{-1, 5}));
  EXPECT_EQ(intersect(a, b), (Interval{2, 3}));
}

TEST(IntervalArith, DivisionThroughZeroIsTop) {
  EXPECT_TRUE(iv_div({1, 2}, {-1, 1}).is_top());
  EXPECT_EQ(iv_div({4, 8}, {2, 4}), (Interval{1, 4}));
}

TEST(IntervalArith, ModBounds) {
  const Interval r = iv_mod({0, 1000}, {16, 16});
  EXPECT_GE(r.lo, 0.0);
  EXPECT_LE(r.hi, 15.0);
}

TEST(RangeAnalysis, LoopInductionVariableBounded) {
  FunctionBuilder b("loop");
  const auto n = b.param_scalar("n");
  const auto arr = b.param_array("arr", 128, true);
  const auto i = b.scalar("i");
  b.for_loop(i, b.c(0.0), b.v(n), [&] {
    b.store(arr, b.v(i), b.v(i));
  });
  const Function fn = b.build();

  RangeAnalysis ranges(fn, {{n, Interval{0, 32}}});
  const auto& written = ranges.written_ranges();
  const auto it = written.find(arr);
  ASSERT_NE(it, written.end());
  EXPECT_TRUE(it->second.bounded);
  EXPECT_EQ(it->second.lo, 0u);
  // i < n <= 32; closure refinement allows i <= 32.
  EXPECT_LE(it->second.hi, 32u);
  EXPECT_GE(it->second.hi, 31u);
}

TEST(RangeAnalysis, UnknownParameterGivesUnbounded) {
  FunctionBuilder b("loop");
  const auto n = b.param_scalar("n");
  const auto arr = b.param_array("arr", 128, true);
  const auto i = b.scalar("i");
  b.for_loop(i, b.c(0.0), b.v(n), [&] { b.store(arr, b.v(i), b.v(i)); });
  const Function fn = b.build();

  RangeAnalysis ranges(fn);  // no entry bounds
  const auto it = ranges.written_ranges().find(arr);
  ASSERT_NE(it, ranges.written_ranges().end());
  EXPECT_FALSE(it->second.bounded);
}

TEST(RangeAnalysis, OffsetWritesGetSubrange) {
  // Writes land in arr[base .. base+n): with profiled bounds the slice is
  // a strict subset of the 4096-element buffer.
  FunctionBuilder b("offset");
  const auto base = b.param_scalar("base");
  const auto n = b.param_scalar("n");
  const auto arr = b.param_array("arr", 4096, true);
  const auto i = b.scalar("i");
  b.for_loop(i, b.c(0.0), b.v(n), [&] {
    b.store(arr, b.add(b.v(base), b.v(i)), b.c(1.0));
  });
  const Function fn = b.build();

  RangeAnalysis ranges(fn, {{base, Interval{256, 256}},
                            {n, Interval{64, 128}}});
  const auto it = ranges.written_ranges().find(arr);
  ASSERT_NE(it, ranges.written_ranges().end());
  ASSERT_TRUE(it->second.bounded);
  EXPECT_EQ(it->second.lo, 256u);
  EXPECT_LE(it->second.hi, 384u);
}

TEST(RangeAnalysis, DataDependentIndexUnbounded) {
  FunctionBuilder b("scatter");
  const auto n = b.param_scalar("n");
  const auto idx = b.param_array("idx", 64);
  const auto out = b.param_array("out", 64, true);
  const auto i = b.scalar("i");
  b.for_loop(i, b.c(0.0), b.v(n), [&] {
    b.store(out, b.at(idx, b.v(i)), b.c(1.0));
  });
  const Function fn = b.build();
  RangeAnalysis ranges(fn, {{n, Interval{0, 64}}});
  const auto it = ranges.written_ranges().find(out);
  ASSERT_NE(it, ranges.written_ranges().end());
  EXPECT_FALSE(it->second.bounded);  // idx contents are not tracked
}

TEST(RangeAnalysis, BranchRefinementOnGuards) {
  FunctionBuilder b("guard");
  const auto x = b.param_scalar("x");
  const auto arr = b.param_array("arr", 10, true);
  b.if_then(b.land(b.ge(b.v(x), b.c(2.0)), b.lt(b.v(x), b.c(8.0))),
            [&] { b.store(arr, b.v(x), b.c(1.0)); });
  const Function fn = b.build();
  RangeAnalysis ranges(fn);  // x unknown at entry
  const auto it = ranges.written_ranges().find(arr);
  ASSERT_NE(it, ranges.written_ranges().end());
  ASSERT_TRUE(it->second.bounded);
  EXPECT_EQ(it->second.lo, 2u);
  EXPECT_LE(it->second.hi, 8u);
}

TEST(CheckpointPlan, NarrowsModifiedInputToWrittenSlice) {
  // mgrid-like: r is read+written but only indices [0, n^3) of a much
  // larger buffer are touched.
  FunctionBuilder b("stencilish");
  const auto n = b.param_scalar("n");
  const auto r = b.param_array("r", 4096, true);
  const auto i = b.scalar("i");
  b.for_loop(i, b.c(0.0), b.mul(b.v(n), b.v(n)), [&] {
    b.store(r, b.v(i), b.mul(b.at(r, b.v(i)), b.c(0.5)));
  });
  const Function fn = b.build();

  const analysis::InputSetInfo inputs = analysis::analyze_input_sets(fn);
  RangeAnalysis ranges(fn, {{n, Interval{14, 14}}});
  const analysis::CheckpointPlan plan =
      analysis::plan_checkpoint(fn, inputs, ranges);

  ASSERT_EQ(plan.regions.size(), 1u);
  EXPECT_EQ(plan.regions[0].var, r);
  ASSERT_FALSE(plan.regions[0].whole);
  EXPECT_LE(plan.regions[0].hi, 196u);  // (closure: i <= n*n)
  EXPECT_LT(plan.bytes(fn), inputs.modified_input_bytes(fn) / 10);
  EXPECT_NE(plan.describe(fn).find("r[0.."), std::string::npos);
}

TEST(CheckpointPlan, SliceSnapshotRestoresExactly) {
  FunctionBuilder b("slice");
  const auto arr = b.param_array("arr", 100, true);
  b.store(arr, b.c(10.0), b.c(-1.0));
  const Function fn = b.build();
  Memory mem = Memory::for_function(fn);
  for (std::size_t i = 0; i < 100; ++i)
    mem.array(arr)[i] = static_cast<double>(i);

  runtime::MemorySnapshot snap(
      fn, mem,
      std::vector<runtime::SnapshotRegion>{
          runtime::SnapshotRegion::slice(arr, 8, 12)});
  EXPECT_EQ(snap.bytes(), 5 * sizeof(double));

  for (std::size_t i = 0; i < 100; ++i) mem.array(arr)[i] = -7.0;
  snap.restore(mem);
  for (std::size_t i = 8; i <= 12; ++i)
    EXPECT_DOUBLE_EQ(mem.array(arr)[i], static_cast<double>(i));
  EXPECT_DOUBLE_EQ(mem.array(arr)[7], -7.0);   // outside the slice
  EXPECT_DOUBLE_EQ(mem.array(arr)[13], -7.0);
}

TEST(CheckpointPlan, ProfileIntegrationShrinksMgridCheckpoint) {
  // End-to-end: the profile observes n <= 14, the range analysis bounds
  // the written region of r, and the checkpoint plan beats whole-array
  // Modified_Input by a wide margin.
  const auto workload = workloads::make_workload("MGRID");
  const workloads::Trace train =
      workload->trace(workloads::DataSet::kTrain, 42);
  const core::ProfileData profile =
      core::profile_workload(*workload, train, sim::sparc2());

  const ir::Function& fn = workload->function();
  const std::size_t whole = profile.input_sets.modified_input_bytes(fn);
  const std::size_t planned = profile.checkpoint_plan.bytes(fn);
  EXPECT_LT(planned, whole);
  EXPECT_GT(planned, 0u);
}

}  // namespace
}  // namespace peak::ir
