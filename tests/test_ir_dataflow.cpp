#include <gtest/gtest.h>

#include <algorithm>

#include "ir/builder.hpp"
#include "ir/liveness.hpp"
#include "ir/points_to.hpp"
#include "ir/use_def.hpp"

namespace peak::ir {
namespace {

bool contains(const std::vector<VarId>& vars, std::optional<VarId> v) {
  return v && std::find(vars.begin(), vars.end(), *v) != vars.end();
}

/// out = in * k; scratch initialized internally; arr updated in place.
Function mixed_fn() {
  FunctionBuilder b("mixed");
  const auto in = b.param_scalar("in");
  const auto k = b.param_scalar("k");
  const auto out = b.param_scalar("out");
  const auto arr = b.param_array("arr", 16, true);
  const auto untouched = b.param_array("untouched", 16, true);
  const auto scratch = b.scalar("scratch");
  const auto i = b.scalar("i");
  b.assign(scratch, b.mul(b.v(in), b.v(k)));
  b.assign(out, b.v(scratch));
  b.for_loop(i, b.c(0.0), b.c(8.0), [&] {
    b.store(arr, b.v(i),
            b.add(b.at(arr, b.v(i)), b.at(untouched, b.v(i))));
  });
  return b.build();
}

TEST(Liveness, InputSetIsLiveInAtEntry) {
  const Function fn = mixed_fn();
  const PointsTo pt(fn);
  const Liveness live(fn, pt);
  const std::vector<VarId> input = live.input_set();
  // in, k are read before any def; arr is weakly defined so its incoming
  // elements stay live; untouched is read-only.
  EXPECT_TRUE(contains(input, fn.find_var("in")));
  EXPECT_TRUE(contains(input, fn.find_var("k")));
  EXPECT_TRUE(contains(input, fn.find_var("arr")));
  EXPECT_TRUE(contains(input, fn.find_var("untouched")));
  // scratch and out are defined before use, i is loop-local.
  EXPECT_FALSE(contains(input, fn.find_var("scratch")));
  EXPECT_FALSE(contains(input, fn.find_var("out")));
  EXPECT_FALSE(contains(input, fn.find_var("i")));
}

TEST(Liveness, DefSetCoversStrongAndWeakDefs) {
  const Function fn = mixed_fn();
  const PointsTo pt(fn);
  const std::vector<VarId> defs = def_set(fn, pt);
  EXPECT_TRUE(contains(defs, fn.find_var("out")));
  EXPECT_TRUE(contains(defs, fn.find_var("scratch")));
  EXPECT_TRUE(contains(defs, fn.find_var("arr")));
  EXPECT_FALSE(contains(defs, fn.find_var("untouched")));
  EXPECT_FALSE(contains(defs, fn.find_var("in")));
}

TEST(Liveness, ModifiedInputIsIntersection) {
  // Paper Eq. 6: Modified_Input = Input ∩ Def. Here only `arr` is both
  // consumed (element reads) and written.
  const Function fn = mixed_fn();
  const PointsTo pt(fn);
  const std::vector<VarId> mi = modified_input_set(fn, pt);
  ASSERT_EQ(mi.size(), 1u);
  EXPECT_EQ(mi[0], *fn.find_var("arr"));
}

TEST(PointsTo, TracksAddressOfBindings) {
  FunctionBuilder b("pt");
  const auto a = b.param_array("a", 8);
  const auto c = b.param_array("c", 8);
  const auto p = b.pointer("p");
  const auto q = b.pointer("q");
  const auto cond = b.param_scalar("cond");
  b.if_else(b.gt(b.v(cond), b.c(0.0)),
            [&] { b.assign(p, b.address_of(a)); },
            [&] { b.assign(p, b.address_of(c)); });
  b.assign(q, b.v(p));  // copies the points-to set
  const Function fn = b.build();
  const PointsTo pt(fn);

  const VarId vp = *fn.find_var("p");
  const VarId vq = *fn.find_var("q");
  EXPECT_FALSE(pt.unknown(vp));
  EXPECT_EQ(pt.targets(vp).size(), 2u);
  EXPECT_EQ(pt.targets(vq).size(), 2u);
  EXPECT_TRUE(pt.pointer_modified(vp));
  EXPECT_TRUE(pt.pointer_modified(vq));
}

TEST(PointsTo, IncomingPointerIsUnknownButUnmodified) {
  FunctionBuilder b("pt2");
  const auto p = b.param_pointer("p");
  const auto out = b.param_scalar("out");
  b.assign(out, b.deref(p, b.c(0.0)));
  const Function fn = b.build();
  const PointsTo pt(fn);
  const VarId vp = *fn.find_var("p");
  EXPECT_TRUE(pt.unknown(vp));
  EXPECT_FALSE(pt.pointer_modified(vp));
  // Conservative: a store through it could hit any array.
  EXPECT_EQ(pt.may_store_targets(vp).size(), 0u);  // no arrays declared
}

TEST(UseDef, EntryDefinitionReachesFirstUse) {
  FunctionBuilder b("ud");
  const auto x = b.param_scalar("x");
  const auto y = b.param_scalar("y");
  b.assign(y, b.v(x));       // stmt 0: use of x sees the entry def
  b.assign(y, b.add(b.v(y), b.c(1.0)));  // stmt 1: use of y sees stmt 0
  const Function fn = b.build();
  const PointsTo pt(fn);
  const UseDefChains ud(fn, pt);

  const auto defs_x = ud.reaching_defs(*fn.find_var("x"), fn.entry(), 0);
  ASSERT_EQ(defs_x.size(), 1u);
  EXPECT_TRUE(defs_x[0].is_entry);

  const auto defs_y = ud.reaching_defs(*fn.find_var("y"), fn.entry(), 1);
  ASSERT_EQ(defs_y.size(), 1u);
  EXPECT_FALSE(defs_y[0].is_entry);
  EXPECT_EQ(defs_y[0].stmt, 0u);
}

TEST(UseDef, LoopCarriedDefsMerge) {
  FunctionBuilder b("loop");
  const auto n = b.param_scalar("n");
  const auto acc = b.scalar("acc");
  const auto i = b.scalar("i");
  b.assign(acc, b.c(0.0));
  b.for_loop(i, b.c(0.0), b.v(n), [&] {
    b.assign(acc, b.add(b.v(acc), b.v(i)));
  });
  const Function fn = b.build();
  const PointsTo pt(fn);
  const UseDefChains ud(fn, pt);

  // Inside the loop body, the use of acc can see both the init def and
  // the loop-carried def.
  BlockId body = kNoBlock;
  for (BlockId blk = 0; blk < fn.num_blocks(); ++blk)
    if (fn.block(blk).is_loop_body) body = blk;
  ASSERT_NE(body, kNoBlock);
  const auto defs = ud.reaching_defs(*fn.find_var("acc"), body, 0);
  EXPECT_EQ(defs.size(), 2u);
  for (const DefSite& d : defs) EXPECT_FALSE(d.is_entry);
}

TEST(UseDef, StrongDefKillsEntryDef) {
  FunctionBuilder b("kill");
  const auto x = b.param_scalar("x");
  b.assign(x, b.c(5.0));
  b.assign(x, b.add(b.v(x), b.c(1.0)));
  const Function fn = b.build();
  const PointsTo pt(fn);
  const UseDefChains ud(fn, pt);
  const auto defs = ud.reaching_defs(*fn.find_var("x"), fn.entry(), 1);
  ASSERT_EQ(defs.size(), 1u);
  EXPECT_FALSE(defs[0].is_entry);
}

TEST(UseDef, WeakArrayDefsDoNotKill) {
  FunctionBuilder b("weak");
  const auto a = b.param_array("a", 8);
  const auto out = b.param_scalar("out");
  b.store(a, b.c(0.0), b.c(1.0));
  b.assign(out, b.at(a, b.c(3.0)));
  const Function fn = b.build();
  const PointsTo pt(fn);
  const UseDefChains ud(fn, pt);
  const auto defs = ud.reaching_defs(*fn.find_var("a"), fn.entry(), 1);
  // Both the entry def (other elements) and the store reach.
  EXPECT_EQ(defs.size(), 2u);
}

}  // namespace
}  // namespace peak::ir
