#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "fault/fault.hpp"
#include "fault/guarded_executor.hpp"
#include "fault/injector.hpp"
#include "fault/quarantine.hpp"
#include "sim/exec_backend.hpp"
#include "workloads/workload.hpp"

namespace peak::fault {
namespace {

class GuardedTest : public ::testing::Test {
protected:
  GuardedTest()
      : workload_(workloads::make_workload("SWIM")),
        machine_(sim::sparc2()),
        effects_(search::gcc33_o3_space()),
        trace_(workload_->trace(workloads::DataSet::kTrain, 11)),
        o3_(search::o3_config(effects_.space())),
        exp_(search::o3_config(effects_.space())) {
    exp_.set(0, false);  // a distinct experimental version
  }

  std::unique_ptr<sim::SimExecutionBackend> make_backend(
      std::uint64_t seed = 1) {
    auto backend = std::make_unique<sim::SimExecutionBackend>(
        workload_->function(), workload_->traits(), machine_, effects_,
        seed);
    backend->set_checkpoint_bytes(8192, 2048);
    return backend;
  }

  /// Script `kind` for exp_ at the given invocation of the trace.
  FaultInjector scripted(FaultKind kind, std::size_t trace_index,
                         bool sticky) const {
    FaultInjector injector;
    ScriptedFault sf;
    sf.config_key = exp_.key();
    sf.invocation_id = trace_.invocations[trace_index].id;
    sf.kind = kind;
    sf.sticky = sticky;
    injector.script(sf);
    return injector;
  }

  std::unique_ptr<workloads::Workload> workload_;
  sim::MachineModel machine_;
  sim::FlagEffectModel effects_;
  workloads::Trace trace_;
  search::FlagConfig o3_;
  search::FlagConfig exp_;
};

TEST_F(GuardedTest, UnguardedHangThrowsHangFault) {
  auto backend = make_backend();
  const FaultInjector injector =
      scripted(FaultKind::kHang, 0, /*sticky=*/true);
  backend->set_fault_injector(&injector);
  // No deadline armed: the hang has infinite-loop semantics.
  EXPECT_THROW(backend->invoke(exp_, trace_.invocations[0]), HangFault);
}

TEST_F(GuardedTest, GuardedHangHitsDeadlineAndEventuallyQuarantines) {
  auto backend = make_backend();
  const FaultInjector injector =
      scripted(FaultKind::kHang, 0, /*sticky=*/true);
  backend->set_fault_injector(&injector);

  Quarantine quarantine;
  GuardedExecutor guard(*backend, quarantine);  // quarantine_after = 2
  guard.set_reference(o3_);
  std::vector<FaultEvent> events;
  guard.set_on_fault([&](const FaultEvent& ev) { events.push_back(ev); });

  const sim::Invocation& inv = trace_.invocations[0];
  const double deadline =
      guard.policy().deadline_factor * backend->expected_time(o3_, inv);

  // First failure: deadline paid, config not yet quarantined.
  try {
    guard.invoke(exp_, inv);
    FAIL() << "expected ConfigFailed";
  } catch (const ConfigFailed& e) {
    EXPECT_EQ(e.kind(), FaultKind::kHang);
    EXPECT_FALSE(e.quarantined());
  }
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FaultKind::kHang);
  EXPECT_TRUE(events[0].gave_up);  // hangs are deterministic: no retry
  EXPECT_FALSE(events[0].quarantined);
  EXPECT_GE(backend->breakdown().faulted, deadline * 0.99);
  EXPECT_FALSE(quarantine.contains(exp_.key()));

  // Second failure crosses the threshold.
  try {
    guard.invoke(exp_, inv);
    FAIL() << "expected ConfigFailed";
  } catch (const ConfigFailed& e) {
    EXPECT_TRUE(e.quarantined());
  }
  ASSERT_EQ(events.size(), 2u);
  EXPECT_TRUE(events[1].quarantined);
  EXPECT_TRUE(quarantine.contains(exp_.key()));
  EXPECT_EQ(quarantine.kind_of(exp_.key()), FaultKind::kHang);

  // Quarantined configs are rejected without running anything.
  const double before = backend->accumulated_time();
  EXPECT_THROW(guard.invoke(exp_, inv), ConfigFailed);
  EXPECT_EQ(backend->accumulated_time(), before);
  EXPECT_EQ(events.size(), 2u);
}

TEST_F(GuardedTest, TransientCrashIsRetriedWithBackoffAndSucceeds) {
  auto backend = make_backend();
  const FaultInjector injector =
      scripted(FaultKind::kCrash, 0, /*sticky=*/false);
  backend->set_fault_injector(&injector);

  Quarantine quarantine;
  GuardedExecutor guard(*backend, quarantine);
  guard.set_reference(o3_);
  std::vector<FaultEvent> events;
  guard.set_on_fault([&](const FaultEvent& ev) { events.push_back(ev); });

  const sim::InvocationResult r =
      guard.invoke(exp_, trace_.invocations[0]);
  EXPECT_TRUE(std::isfinite(r.time));
  EXPECT_GT(r.time, 0.0);

  // One transient failure, retried (not given up), not quarantined.
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, FaultKind::kCrash);
  EXPECT_FALSE(events[0].gave_up);
  EXPECT_FALSE(events[0].quarantined);
  EXPECT_FALSE(quarantine.contains(exp_.key()));
  // The partial crashed run was charged to the faulted phase, the
  // backoff wait before the re-measurement to the retry phase.
  EXPECT_GT(backend->breakdown().faulted, 0.0);
  EXPECT_GT(backend->breakdown().retry, 0.0);
}

TEST_F(GuardedTest, RetriedTransientFaultDoesNotSkewTheMeasurement) {
  // The fault path consumes no randomness, so the post-retry measurement
  // equals the fault-free one bit for bit.
  auto clean = make_backend(42);
  const double clean_time =
      clean->invoke(exp_, trace_.invocations[0]).time;

  auto faulty = make_backend(42);
  const FaultInjector injector =
      scripted(FaultKind::kCrash, 0, /*sticky=*/false);
  faulty->set_fault_injector(&injector);
  Quarantine quarantine;
  GuardedExecutor guard(*faulty, quarantine);
  guard.set_reference(o3_);
  EXPECT_EQ(guard.invoke(exp_, trace_.invocations[0]).time, clean_time);
}

TEST_F(GuardedTest, StickyTransientFaultExhaustsRetriesAndFails) {
  auto backend = make_backend();
  const FaultInjector injector =
      scripted(FaultKind::kCrash, 0, /*sticky=*/true);
  backend->set_fault_injector(&injector);

  Quarantine quarantine;
  GuardPolicy policy;
  policy.max_retries = 2;
  policy.quarantine_after = 3;
  GuardedExecutor guard(*backend, quarantine, policy);
  guard.set_reference(o3_);
  std::vector<FaultEvent> events;
  guard.set_on_fault([&](const FaultEvent& ev) { events.push_back(ev); });

  EXPECT_THROW(guard.invoke(exp_, trace_.invocations[0]), ConfigFailed);
  // 1 + max_retries attempts, each one a failure; only the last gave up.
  ASSERT_EQ(events.size(), 3u);
  EXPECT_FALSE(events[0].gave_up);
  EXPECT_FALSE(events[1].gave_up);
  EXPECT_TRUE(events[2].gave_up);
  EXPECT_EQ(quarantine.failures_of(exp_.key()), 3u);
  EXPECT_TRUE(quarantine.contains(exp_.key()));
}

TEST_F(GuardedTest, MiscompileCorruptsDigestAndValidationQuarantines) {
  auto backend = make_backend();
  const FaultInjector injector =
      scripted(FaultKind::kMiscompile, 0, /*sticky=*/true);
  backend->set_fault_injector(&injector);
  const sim::Invocation& inv = trace_.invocations[0];

  // The miscompiled run completes and times normally...
  const sim::InvocationResult r = backend->invoke(exp_, inv);
  EXPECT_TRUE(std::isfinite(r.time));
  // ...but its output digest is wrong.
  EXPECT_NE(r.output_digest, backend->reference_digest(inv));
  // A healthy config's digest matches the reference.
  EXPECT_EQ(backend->invoke(o3_, inv).output_digest,
            backend->reference_digest(inv));

  Quarantine quarantine;
  GuardedExecutor guard(*backend, quarantine);
  guard.set_reference(o3_);
  try {
    guard.validate(exp_, inv);
    FAIL() << "expected ConfigFailed";
  } catch (const ConfigFailed& e) {
    EXPECT_EQ(e.kind(), FaultKind::kMiscompile);
    EXPECT_TRUE(e.quarantined());  // immediate: wrong answers disqualify
  }
  EXPECT_TRUE(quarantine.contains(exp_.key()));
  EXPECT_EQ(quarantine.kind_of(exp_.key()), FaultKind::kMiscompile);
}

TEST_F(GuardedTest, ValidationPassesForCorrectConfigs) {
  auto backend = make_backend();
  Quarantine quarantine;
  GuardedExecutor guard(*backend, quarantine);
  guard.set_reference(o3_);
  EXPECT_NO_THROW(guard.validate(exp_, trace_.invocations[0]));
  EXPECT_FALSE(quarantine.contains(exp_.key()));
}

TEST_F(GuardedTest, TimerGlitchReportsInfinityUnguardedAndIsRetried) {
  {
    auto backend = make_backend();
    const FaultInjector injector =
        scripted(FaultKind::kTimerGlitch, 0, /*sticky=*/true);
    backend->set_fault_injector(&injector);
    // Unguarded, the absurd reading flows straight into the sample
    // stream (the rating window's non-finite guard must catch it).
    const sim::InvocationResult r =
        backend->invoke(exp_, trace_.invocations[0]);
    EXPECT_TRUE(std::isinf(r.time));
  }
  {
    auto backend = make_backend();
    const FaultInjector injector =
        scripted(FaultKind::kTimerGlitch, 0, /*sticky=*/false);
    backend->set_fault_injector(&injector);
    Quarantine quarantine;
    GuardedExecutor guard(*backend, quarantine);
    guard.set_reference(o3_);
    // Guarded, the glitch is discarded and the retry reads a sane timer.
    const sim::InvocationResult r =
        guard.invoke(exp_, trace_.invocations[0]);
    EXPECT_TRUE(std::isfinite(r.time));
  }
}

TEST_F(GuardedTest, CheckpointCorruptionFailsRbrBatchGuarded) {
  auto backend = make_backend();
  const FaultInjector injector =
      scripted(FaultKind::kCheckpointCorrupt, 0, /*sticky=*/true);
  backend->set_fault_injector(&injector);
  Quarantine quarantine;
  GuardedExecutor guard(*backend, quarantine);
  guard.set_reference(o3_);
  sim::RbrOptions opts;
  try {
    guard.invoke_rbr_batch(o3_, exp_, trace_.invocations[0], opts);
    FAIL() << "expected ConfigFailed";
  } catch (const ConfigFailed& e) {
    EXPECT_EQ(e.kind(), FaultKind::kCheckpointCorrupt);
  }
  // The corrupt save was still paid for.
  EXPECT_GT(backend->breakdown().checkpoint, 0.0);
}

TEST_F(GuardedTest, GuardIsBitIdenticalToBareBackendWhenFaultFree) {
  auto bare = make_backend(7);
  auto wrapped = make_backend(7);
  Quarantine quarantine;
  GuardedExecutor guard(*wrapped, quarantine);
  guard.set_reference(o3_);
  for (std::size_t i = 0; i < 20 && i < trace_.invocations.size(); ++i) {
    const sim::Invocation& inv = trace_.invocations[i];
    EXPECT_EQ(bare->invoke(exp_, inv).time, guard.invoke(exp_, inv).time);
  }
  EXPECT_EQ(bare->accumulated_time(), wrapped->accumulated_time());
}

}  // namespace
}  // namespace peak::fault
