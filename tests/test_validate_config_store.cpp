#include <gtest/gtest.h>

#include <cstdio>

#include "core/config_store.hpp"
#include "ir/builder.hpp"
#include "ir/fuzz.hpp"
#include "ir/validate.hpp"
#include "rating/consultant.hpp"
#include "workloads/workload.hpp"

namespace peak {
namespace {

TEST(Validate, BuilderOutputIsClean) {
  for (const auto& w : workloads::all_workloads()) {
    const ir::ValidationReport report = ir::validate(w->function());
    EXPECT_TRUE(report.ok()) << w->full_name() << "\n"
                             << report.to_string();
  }
}

TEST(Validate, FuzzedProgramsAreClean) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const ir::Function fn = ir::fuzz_function(seed);
    const ir::ValidationReport report = ir::validate(fn);
    EXPECT_TRUE(report.ok()) << "seed " << seed << "\n"
                             << report.to_string();
  }
}

TEST(Validate, CatchesBadBranchTarget) {
  ir::FunctionBuilder b("bad");
  const auto x = b.param_scalar("x");
  b.assign(x, b.c(1));
  ir::Function fn = b.build();
  // Corrupt the terminator.
  fn.block(fn.entry()).term =
      ir::Terminator{ir::TermKind::kJump, ir::kNoExpr, 99, ir::kNoBlock};
  const ir::ValidationReport report = ir::validate(fn);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("target out of range"),
            std::string::npos);
}

TEST(Validate, CatchesKindMismatches) {
  ir::FunctionBuilder b("kinds");
  const auto arr = b.param_array("arr", 4);
  const auto x = b.param_scalar("x");
  b.assign(x, b.at(arr, b.c(0)));
  ir::Function fn = b.build();
  // Corrupt: make the ArrayRef base a scalar.
  for (ir::ExprId e = 0; e < fn.num_exprs(); ++e) {
    if (fn.expr(e).op == ir::ExprOp::kArrayRef)
      fn.expr_mut(e).var = x;
  }
  const ir::ValidationReport report = ir::validate(fn);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("not an array"), std::string::npos);
}

TEST(Validate, WarnsOnUnreachableBlocks) {
  ir::FunctionBuilder b("unreach");
  const auto x = b.param_scalar("x");
  b.if_else(b.gt(b.v(x), b.c(0)), [&] { b.assign(x, b.c(1)); },
            [&] { b.assign(x, b.c(2)); });
  ir::Function fn = b.build();
  // Short-circuit the branch: else arm becomes unreachable.
  auto& term = fn.block(fn.entry()).term;
  const ir::BlockId then_target = term.on_true;
  term = ir::Terminator{ir::TermKind::kJump, ir::kNoExpr, then_target,
                        ir::kNoBlock};
  const ir::ValidationReport report = ir::validate(fn);
  EXPECT_TRUE(report.ok());  // warnings only
  EXPECT_NE(report.to_string().find("unreachable"), std::string::npos);
}

TEST(ConfigStore, RoundTripsThroughText) {
  const auto& space = search::gcc33_o3_space();
  core::ConfigStore store(space);

  core::StoredConfig entry;
  entry.config = search::o3_config(space);
  entry.config.set(*space.index_of("-fstrict-aliasing"), false);
  entry.config.set(*space.index_of("-fgcse"), false);
  entry.method = rating::Method::kRBR;
  entry.improvement_pct = 174.27;
  store.put("ART.match", "p4", entry);

  core::StoredConfig swim;
  swim.config = search::o3_config(space);
  swim.config.set(*space.index_of("-fschedule-insns"), false);
  swim.method = rating::Method::kCBR;
  swim.improvement_pct = 5.06;
  store.put("SWIM.calc3", "sparc2", swim);

  const std::string text = store.serialize();
  EXPECT_NE(text.find("[ART.match @ p4]"), std::string::npos);
  EXPECT_NE(text.find("-fstrict-aliasing"), std::string::npos);

  core::ConfigStore loaded(space);
  ASSERT_TRUE(loaded.deserialize(text));
  EXPECT_EQ(loaded.size(), 2u);
  const auto art = loaded.get("ART.match", "p4");
  ASSERT_TRUE(art.has_value());
  EXPECT_EQ(art->config, entry.config);
  EXPECT_EQ(art->method, rating::Method::kRBR);
  EXPECT_NEAR(art->improvement_pct, 174.27, 1e-9);
  EXPECT_FALSE(loaded.get("ART.match", "sparc2").has_value());
}

TEST(ConfigStore, RejectsUnknownFlagsAndGarbage) {
  const auto& space = search::gcc33_o3_space();
  core::ConfigStore store(space);
  EXPECT_FALSE(store.deserialize("[X @ m]\ndisabled = -fnot-a-flag\n"));
  EXPECT_FALSE(store.deserialize("[missing-at]\nmethod = CBR\n"));
  EXPECT_FALSE(store.deserialize("[X @ m]\nnonsense line\n"));
  EXPECT_FALSE(store.deserialize("[X @ m]\nmethod = XYZ\n"));
  EXPECT_EQ(store.size(), 0u);  // failed loads leave the store untouched
}

TEST(ConfigStore, QuarantineRecordsRoundTrip) {
  const auto& space = search::gcc33_o3_space();
  core::ConfigStore store(space);

  search::FlagConfig broken = search::o3_config(space);
  broken.set(0, false);
  search::FlagConfig hung = search::o3_config(space);
  hung.set(1, false);

  core::StoredConfig entry;
  entry.config = search::o3_config(space);
  entry.method = rating::Method::kCBR;
  entry.quarantined.push_back(
      {broken.key(), fault::FaultKind::kMiscompile, 1});
  entry.quarantined.push_back({hung.key(), fault::FaultKind::kHang, 2});
  store.put("SWIM.calc3", "sparc2", entry);

  const std::string text = store.serialize();
  EXPECT_NE(text.find("quarantine = miscompile 1 " + broken.key()),
            std::string::npos);

  core::ConfigStore loaded(space);
  ASSERT_TRUE(loaded.deserialize(text));
  const auto got = loaded.get("SWIM.calc3", "sparc2");
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(got->quarantined, entry.quarantined);

  // Bad quarantine lines reject the whole file (no silent data loss).
  EXPECT_FALSE(store.deserialize("[X @ m]\nquarantine = nope 1 00ff\n"));
  EXPECT_FALSE(store.deserialize("[X @ m]\nquarantine = none 1 00ff\n"));
  EXPECT_FALSE(store.deserialize("[X @ m]\nquarantine = crash\n"));
}

TEST(ConfigStore, FileRoundTrip) {
  const auto& space = search::gcc33_o3_space();
  core::ConfigStore store(space);
  core::StoredConfig entry;
  entry.config = search::o3_config(space);
  entry.method = rating::Method::kMBR;
  store.put("MGRID.resid", "sparc2", entry);

  const std::string path = "/tmp/peak_config_store_test.txt";
  ASSERT_TRUE(store.save_file(path));
  core::ConfigStore loaded(space);
  ASSERT_TRUE(loaded.load_file(path));
  EXPECT_TRUE(loaded.get("MGRID.resid", "sparc2").has_value());
  std::remove(path.c_str());
  EXPECT_FALSE(loaded.load_file("/nonexistent/nope.txt"));
}

TEST(ConsultantOverheads, EstimatesOrderCbrMbrRbrNormally) {
  rating::ConsultantInputs in;
  in.num_contexts = 2;
  in.num_components = 2;
  in.avg_invocation_cycles = 10'000.0;
  in.checkpoint_cycles = 2'000.0;
  in.counter_cycles = 5.0;
  const auto costs = rating::estimate_overheads(in);
  ASSERT_EQ(costs.size(), 3u);
  double cbr = 0, mbr = 0, rbr = 0;
  for (const auto& c : costs) {
    if (c.method == rating::Method::kCBR) cbr = c.cycles_per_rating;
    if (c.method == rating::Method::kMBR) mbr = c.cycles_per_rating;
    if (c.method == rating::Method::kRBR) rbr = c.cycles_per_rating;
  }
  EXPECT_LT(cbr, rbr);
  EXPECT_LT(mbr, rbr);
}

TEST(ConsultantOverheads, ManyContextsMakeCbrExpensive) {
  rating::ConsultantInputs in;
  in.cbr_context_scalars_only = true;
  in.num_contexts = 30;       // admissible but pricey
  in.invocations = 3000;
  in.mbr_model_built = true;
  in.num_components = 2;
  in.avg_invocation_cycles = 10'000.0;
  const rating::MethodDecision d = rating::decide_rating_methods(in);
  // All three apply, but MBR is now the cheapest and leads the chain.
  ASSERT_GE(d.chain.size(), 2u);
  EXPECT_EQ(d.chain.front(), rating::Method::kMBR);
  EXPECT_TRUE(d.applicable(rating::Method::kCBR));
}

}  // namespace
}  // namespace peak
