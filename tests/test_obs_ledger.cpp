#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/peak.hpp"
#include "json_checker.hpp"
#include "obs/attribution.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/progress.hpp"
#include "workloads/workload.hpp"

namespace peak::obs {
namespace {

using testutil::JsonChecker;

TEST(Ledger, ChargePropagatesTotalsUpThePath) {
  Ledger ledger;
  ledger.charge({"m", "bench", "ts", "CBR", "timed"}, 100.0, 5.0);
  ledger.charge({"m", "bench", "ts", "CBR", "checkpoint"}, 20.0);
  ledger.charge({"m", "bench", "ts", "profile"}, 7.0, 1.0);

  const Ledger::Node root = ledger.snapshot();
  EXPECT_EQ(root.name, "all");
  EXPECT_DOUBLE_EQ(root.total_cycles, 127.0);
  EXPECT_DOUBLE_EQ(root.total_wall_us, 6.0);
  EXPECT_DOUBLE_EQ(root.self_cycles, 0.0);

  const Ledger::Node* ts = root.child("m")->child("bench")->child("ts");
  ASSERT_NE(ts, nullptr);
  EXPECT_DOUBLE_EQ(ts->total_cycles, 127.0);
  const Ledger::Node* method = ts->child("CBR");
  ASSERT_NE(method, nullptr);
  EXPECT_DOUBLE_EQ(method->total_cycles, 120.0);
  EXPECT_DOUBLE_EQ(method->child("timed")->self_cycles, 100.0);
  EXPECT_DOUBLE_EQ(method->child("checkpoint")->self_cycles, 20.0);
  EXPECT_DOUBLE_EQ(ts->child("profile")->self_cycles, 7.0);
  EXPECT_EQ(ledger.charges(), 3u);

  EXPECT_LE(conservation_error(root), 1e-12);
  EXPECT_DOUBLE_EQ(phase_total_cycles(root, "timed"), 100.0);
  EXPECT_DOUBLE_EQ(phase_total_cycles(root, "profile"), 7.0);
  EXPECT_DOUBLE_EQ(phase_total_cycles(root, "missing"), 0.0);
}

TEST(Ledger, ConservationErrorDetectsTamperedTotals) {
  Ledger ledger;
  ledger.charge({"a", "b"}, 50.0);
  Ledger::Node root = ledger.snapshot();
  root.children[0].total_cycles = 10.0;  // break a == self + Σ children
  EXPECT_GT(conservation_error(root), 0.1);
}

TEST(Ledger, FoldedOutputMatchesFlamegraphGrammar) {
  Ledger ledger;
  ledger.charge({"sparc2", "SWIM", "calc1", "RBR", "timed"}, 1234.6);
  ledger.charge({"sparc2", "SWIM", "calc1", "RBR", "checkpoint"}, 10.0);
  // Components with folded-format metacharacters get sanitized.
  ledger.charge({"weird name", "a;b"}, 5.0);
  // Wall-only charges (search_overhead) round to zero cycles: no line.
  ledger.charge({"sparc2", "SWIM", "calc1", "search_overhead"}, 0.0, 99.0);

  std::ostringstream os;
  write_folded(ledger.snapshot(), os);
  const std::string out = os.str();
  EXPECT_NE(out.find("all;sparc2;SWIM;calc1;RBR;timed 1235\n"),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("all;sparc2;SWIM;calc1;RBR;checkpoint 10\n"),
            std::string::npos);
  EXPECT_NE(out.find("all;weird_name;a_b 5\n"), std::string::npos);
  EXPECT_EQ(out.find("search_overhead"), std::string::npos);

  // Every line is "semicolon-joined-frames space integer".
  std::istringstream lines(out);
  std::string line;
  while (std::getline(lines, line)) {
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string value = line.substr(space + 1);
    EXPECT_FALSE(value.empty());
    for (char c : value) EXPECT_TRUE(std::isdigit(c)) << line;
    EXPECT_EQ(line.find(' '), space) << "frames must not contain spaces";
  }
}

TEST(Ledger, JsonExportIsWellFormed) {
  Ledger ledger;
  ledger.charge({"sparc2", "SWIM \"q\"", "calc1", "CBR", "timed"}, 42.0,
                3.5);
  std::ostringstream os;
  write_ledger_json(ledger.snapshot(), os);
  const std::string doc = os.str();
  EXPECT_TRUE(JsonChecker(doc).valid()) << doc;
  EXPECT_NE(doc.find("\"cycles_total\":42"), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"SWIM \\\"q\\\"\""), std::string::npos);
}

TEST(Ledger, ConcurrentChargesFromManyThreadsStayConserved) {
  Ledger ledger;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&ledger, t] {
      const std::string section = "ts" + std::to_string(t);
      for (int i = 0; i < 1000; ++i)
        ledger.charge({"m", "bench", section, "CBR", "timed"}, 1.0, 0.25);
    });
  }
  for (std::thread& t : threads) t.join();
  const Ledger::Node root = ledger.snapshot();
  EXPECT_DOUBLE_EQ(root.total_cycles, 4000.0);
  EXPECT_DOUBLE_EQ(root.total_wall_us, 1000.0);
  EXPECT_LE(conservation_error(root), 1e-9);
  EXPECT_EQ(ledger.charges(), 4000u);
}

TEST(Attribution, ScopesComposeIntoLedgerPaths) {
  Ledger::global().reset();
  {
    AttributionScope machine("m1");
    AttributionScope bench("b1");
    charge_phase("profile", 10.0);
    {
      AttributionScope section("s1");
      AttributionScope method("RBR");
      charge_phase("timed", 90.0, 2.0);
    }
  }
  const Ledger::Node root = Ledger::global().snapshot();
  const Ledger::Node* b1 = root.child("m1")->child("b1");
  ASSERT_NE(b1, nullptr);
  EXPECT_DOUBLE_EQ(b1->child("profile")->self_cycles, 10.0);
  EXPECT_DOUBLE_EQ(
      b1->child("s1")->child("RBR")->child("timed")->self_cycles, 90.0);
  EXPECT_LE(conservation_error(root), 1e-12);
  Ledger::global().reset();
}

TEST(Attribution, PathIsThreadLocal) {
  Ledger::global().reset();
  AttributionScope outer("main-thread");
  std::thread worker([] {
    // A fresh thread starts with an empty path — it does not inherit
    // (or disturb) the spawning thread's scopes.
    AttributionScope scope("worker-thread");
    charge_phase("timed", 5.0);
  });
  worker.join();
  charge_phase("timed", 7.0);

  const Ledger::Node root = Ledger::global().snapshot();
  EXPECT_DOUBLE_EQ(root.child("worker-thread")->total_cycles, 5.0);
  EXPECT_DOUBLE_EQ(root.child("main-thread")->total_cycles, 7.0);
  Ledger::global().reset();
}

TEST(Progress, FrameRendersCountersAndHotSections) {
  MetricsRegistry::Snapshot metrics;
  metrics.counters["search.configs_evaluated"] = 12;
  metrics.counters["rating.started"] = 10;
  metrics.counters["rating.converged"] = 9;
  metrics.counters["rating.invocations"] = 4567;

  Ledger ledger;
  ledger.charge({"sparc2", "SWIM", "calc1", "RBR", "timed"}, 9.0e8);
  ledger.charge({"sparc2", "SWIM", "calc2", "CBR", "timed"}, 1.0e8);
  ledger.charge({"sparc2", "SWIM", "calc1", "profile"}, 0.0, 50.0);

  const std::string frame =
      render_progress_frame(metrics, ledger.snapshot());
  EXPECT_NE(frame.find("12 configs"), std::string::npos) << frame;
  EXPECT_NE(frame.find("10 ratings"), std::string::npos);
  EXPECT_NE(frame.find("90.0% converged"), std::string::npos);
  EXPECT_NE(frame.find("4567 invocations"), std::string::npos);
  EXPECT_NE(frame.find("timed 100.0%"), std::string::npos);
  // Hottest section first, with its share of total cycles.
  const std::size_t calc1 = frame.find("sparc2/SWIM/calc1");
  const std::size_t calc2 = frame.find("sparc2/SWIM/calc2");
  ASSERT_NE(calc1, std::string::npos);
  ASSERT_NE(calc2, std::string::npos);
  EXPECT_LT(calc1, calc2);
  EXPECT_NE(frame.find("(90.0%)"), std::string::npos) << frame;
  EXPECT_NE(frame.find("900M"), std::string::npos);
}

TEST(Progress, EmptyFrameIsStillRenderable) {
  const std::string frame =
      render_progress_frame(MetricsRegistry::Snapshot{}, Ledger::Node{});
  EXPECT_NE(frame.find("0 configs"), std::string::npos);
  EXPECT_NE(frame.find("no cycles charged yet"), std::string::npos);
}

TEST(Progress, ViewStartStopWritesFramesToStream) {
  std::ostringstream os;
  ProgressView::Options options;
  options.interval = std::chrono::milliseconds(5);
  options.out = &os;
  options.ansi = false;
  ProgressView view(options);
  view.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  view.stop();
  view.stop();  // idempotent
  EXPECT_NE(os.str().find("configs"), std::string::npos);
}

TEST(LedgerIntegration, TuningRunConservesAndReconcilesWithGauges) {
  // The acceptance invariant for the cost ledger: after a real tuning
  // run, (1) every node's total equals self + Σ children within 0.1%,
  // and (2) the ledger's per-phase cycles reconcile with the sim.cycles_*
  // and profile.cycles gauges the driver publishes.
  Ledger::global().reset();
  MetricsRegistry::global().reset();

  core::Peak peak(sim::sparc2());
  auto w = workloads::make_workload("SWIM");
  const core::MethodRun run = peak.tune_with_consultant(*w);
  EXPECT_GT(run.cost.invocations, 0u);

  const Ledger::Node root = Ledger::global().snapshot();
  EXPECT_GT(root.total_cycles, 0.0);
  EXPECT_GT(root.total_wall_us, 0.0);
  EXPECT_LE(conservation_error(root), 1e-3);

  const MetricsRegistry::Snapshot metrics =
      MetricsRegistry::global().snapshot();
  const struct {
    const char* phase;
    const char* gauge;
  } kReconcile[] = {
      {"timed", "sim.cycles_timed"},
      {"precondition", "sim.cycles_precondition"},
      {"checkpoint", "sim.cycles_checkpoint"},
      {"faulted", "sim.cycles_faulted"},
      {"retry", "sim.cycles_retry"},
      {"whole_program", "sim.cycles_whole_program_surcharge"},
      {"profile", "profile.cycles"},
  };
  double gauge_total = 0.0;
  for (const auto& [phase, gauge_name] : kReconcile) {
    const auto it = metrics.gauges.find(gauge_name);
    const double gauge = it == metrics.gauges.end() ? 0.0 : it->second;
    gauge_total += gauge;
    EXPECT_NEAR(phase_total_cycles(root, phase), gauge,
                1e-3 * std::max(gauge, 1.0))
        << "phase " << phase << " does not reconcile with " << gauge_name;
  }
  // Grand total: every simulated cycle the backend charged is attributed
  // somewhere in the tree (search_overhead is wall-only, so the gauges
  // cover everything).
  EXPECT_NEAR(root.total_cycles, gauge_total,
              1e-3 * std::max(gauge_total, 1.0));
  EXPECT_GT(phase_total_cycles(root, "timed"), 0.0);
  EXPECT_GT(phase_total_cycles(root, "profile"), 0.0);

  Ledger::global().reset();
}

}  // namespace
}  // namespace peak::obs
