#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "stats/regression.hpp"
#include "support/rng.hpp"

namespace peak::stats {
namespace {

TEST(Regression, ExactLinearSystem) {
  // y = 2*x1 + 3*x2 exactly.
  Matrix a{{1, 0}, {0, 1}, {1, 1}, {2, 1}};
  const std::vector<double> y = {2, 3, 5, 7};
  const RegressionResult fit = least_squares(a, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.coefficients[0], 2.0, 1e-10);
  EXPECT_NEAR(fit.coefficients[1], 3.0, 1e-10);
  EXPECT_NEAR(fit.ss_residual, 0.0, 1e-18);
  EXPECT_NEAR(fit.var_ratio(), 0.0, 1e-12);
}

TEST(Regression, PaperFigure2Example) {
  // The worked MBR example of Figure 2: Y and C from the paper; the
  // regression must recover T = [110.05, 3.75] (component times).
  Matrix design(5, 2);
  const double counts[5] = {100, 50, 60, 55, 80};
  const double times[5] = {11015, 5508, 6626, 6044, 8793};
  for (int i = 0; i < 5; ++i) {
    design(static_cast<std::size_t>(i), 0) = counts[i];
    design(static_cast<std::size_t>(i), 1) = 1.0;
  }
  const std::vector<double> y(times, times + 5);
  const RegressionResult fit = least_squares(design, y);
  ASSERT_TRUE(fit.ok);
  // The paper rounds to 110.05 and 3.75.
  EXPECT_NEAR(fit.coefficients[0], 110.05, 0.3);
  EXPECT_NEAR(fit.coefficients[1], 3.75, 25.0);  // intercept poorly pinned
  EXPECT_GT(fit.r_squared(), 0.999);
}

TEST(Regression, NoisyRecoveryWithinTolerance) {
  support::Rng rng(21);
  const std::size_t n = 200;
  Matrix a(n, 3);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, 0) = rng.uniform(0, 100);
    a(i, 1) = rng.uniform(0, 10);
    a(i, 2) = 1.0;
    y[i] = 5.0 * a(i, 0) + 40.0 * a(i, 1) + 700.0 + rng.normal(0, 2.0);
  }
  const RegressionResult fit = least_squares(a, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.coefficients[0], 5.0, 0.05);
  EXPECT_NEAR(fit.coefficients[1], 40.0, 0.5);
  EXPECT_NEAR(fit.coefficients[2], 700.0, 5.0);
}

TEST(Regression, DetectsRankDeficiency) {
  // Second column is 2x the first: rank 1.
  Matrix a{{1, 2}, {2, 4}, {3, 6}, {4, 8}};
  const std::vector<double> y = {1, 2, 3, 4};
  const RegressionResult fit = least_squares(a, y);
  EXPECT_FALSE(fit.ok);
  EXPECT_EQ(fit.rank, 1u);
}

TEST(Regression, UnderdeterminedRejected) {
  Matrix a(2, 3);
  const std::vector<double> y = {1, 2};
  EXPECT_FALSE(least_squares(a, y).ok);
}

TEST(Regression, NonNegativeClampsAndRefits) {
  // True model: y = 10*x1 + 0*x2 but noise would fit x2 slightly negative.
  support::Rng rng(22);
  const std::size_t n = 100;
  Matrix a(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, 0) = rng.uniform(1, 10);
    a(i, 1) = 1.0;
    y[i] = 10.0 * a(i, 0) - 0.5 + rng.normal(0, 0.1);
  }
  const RegressionResult fit = least_squares_nonneg(a, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_GE(fit.coefficients[0], 0.0);
  EXPECT_GE(fit.coefficients[1], 0.0);
  EXPECT_DOUBLE_EQ(fit.coefficients[1], 0.0);  // clamped
  EXPECT_NEAR(fit.coefficients[0], 10.0, 0.2);
}

TEST(Regression, VarRatioRobustToIdenticalObservations) {
  Matrix a(40, 1, 1.0);
  const std::vector<double> y(40, 83121.3);
  const RegressionResult fit = least_squares(a, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_DOUBLE_EQ(fit.var_ratio(), 0.0);  // no 0/0 artifacts
}

TEST(Regression, FunctionalStdErrorShrinksWithSamples) {
  support::Rng rng(23);
  auto run = [&](std::size_t n) {
    Matrix a(n, 2);
    std::vector<double> y(n);
    for (std::size_t i = 0; i < n; ++i) {
      a(i, 0) = rng.uniform(0, 50);
      a(i, 1) = 1.0;
      y[i] = 3.0 * a(i, 0) + 20.0 + rng.normal(0, 1.0);
    }
    const RegressionResult fit = least_squares(a, y);
    return functional_std_error(a, fit, {1.0, 0.0});
  };
  const double se_small = run(20);
  const double se_large = run(2000);
  ASSERT_GT(se_small, 0.0);
  ASSERT_GT(se_large, 0.0);
  EXPECT_LT(se_large, se_small / 3.0);
}

TEST(Regression, GramInverseMatchesIdentity) {
  Matrix a{{2, 0}, {0, 3}, {1, 1}};
  const auto inv = gram_inverse(a);
  ASSERT_TRUE(inv.has_value());
  const Matrix g = a.gram();
  // G * G^-1 == I.
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 2; ++j) {
      double sum = 0.0;
      for (std::size_t k = 0; k < 2; ++k) sum += g(i, k) * (*inv)(k, j);
      EXPECT_NEAR(sum, i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

TEST(Regression, GramInverseSingular) {
  Matrix a{{1, 2}, {2, 4}};
  EXPECT_FALSE(gram_inverse(a).has_value());
}

class RegressionScaleSweep : public ::testing::TestWithParam<double> {};

TEST_P(RegressionScaleSweep, StableAcrossMagnitudes) {
  // MBR systems are badly scaled: counts in the thousands against a ones
  // column. The QR path must stay accurate across magnitudes.
  const double scale = GetParam();
  support::Rng rng(31);
  const std::size_t n = 60;
  Matrix a(n, 2);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, 0) = scale * rng.uniform(0.5, 1.5);
    a(i, 1) = 1.0;
    y[i] = 7.0 * a(i, 0) + 11.0;
  }
  const RegressionResult fit = least_squares(a, y);
  ASSERT_TRUE(fit.ok);
  EXPECT_NEAR(fit.coefficients[0], 7.0, 1e-6);
  EXPECT_NEAR(fit.coefficients[1], 11.0, 1e-4 * scale);
}

INSTANTIATE_TEST_SUITE_P(Magnitudes, RegressionScaleSweep,
                         ::testing::Values(1.0, 1e3, 1e6, 1e9));

TEST(Regression, NonFiniteInputsFailTheFitInsteadOfPoisoningIt) {
  // A single Inf sample (a glitched timer feeding MBR) must not leak NaN
  // coefficients out of the QR solve: the fit reports ok = false and the
  // caller falls back to "rating did not converge".
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  Matrix a{{1, 0}, {0, 1}, {1, 1}, {2, 1}};
  {
    const std::vector<double> y = {2, 3, inf, 7};
    EXPECT_FALSE(least_squares(a, y).ok);
  }
  {
    const std::vector<double> y = {2, nan, 5, 7};
    EXPECT_FALSE(least_squares(a, y).ok);
  }
  {
    Matrix bad = a;
    bad(2, 0) = nan;
    const std::vector<double> y = {2, 3, 5, 7};
    EXPECT_FALSE(least_squares(bad, y).ok);
  }
}

}  // namespace
}  // namespace peak::stats
