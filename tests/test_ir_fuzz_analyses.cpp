#include <gtest/gtest.h>

#include "analysis/context_analysis.hpp"
#include "analysis/input_sets.hpp"
#include "ir/fuzz.hpp"
#include "ir/interpreter.hpp"
#include "ir/liveness.hpp"
#include "ir/loops.hpp"
#include "ir/range_analysis.hpp"
#include "ir/use_def.hpp"

namespace peak::ir {
namespace {

TEST(Fuzzer, DeterministicAndRunnable) {
  const Function a = fuzz_function(7);
  const Function b = fuzz_function(7);
  EXPECT_EQ(a.num_blocks(), b.num_blocks());
  EXPECT_EQ(a.num_exprs(), b.num_exprs());

  Memory mem = fuzz_memory(a, 7);
  const RunResult run = Interpreter(a).run(mem);
  EXPECT_GT(run.steps, 0u);
}

class AnalysisFuzz : public ::testing::TestWithParam<int> {
protected:
  const std::uint64_t seed_ = static_cast<std::uint64_t>(GetParam());
  const Function fn_ = fuzz_function(seed_ + 1000);
};

TEST_P(AnalysisFuzz, AllAnalysesCompleteWithoutError) {
  const PointsTo pt(fn_);
  const Liveness live(fn_, pt);
  const UseDefChains ud(fn_, pt);
  const analysis::ContextAnalysisResult ctx =
      analysis::analyze_context_variables(fn_, pt, ud);
  const analysis::InputSetInfo inputs = analysis::analyze_input_sets(fn_, pt);
  const LoopInfo loops = find_natural_loops(fn_);
  (void)ctx;
  // Modified input is always a subset of input.
  for (VarId v : inputs.modified_input) {
    EXPECT_NE(std::find(inputs.input.begin(), inputs.input.end(), v),
              inputs.input.end());
    EXPECT_NE(std::find(inputs.defs.begin(), inputs.defs.end(), v),
              inputs.defs.end());
  }
  // Loop headers are members of their own loops.
  for (const NaturalLoop& loop : loops.loops)
    EXPECT_TRUE(loop.contains(loop.header));
}

TEST_P(AnalysisFuzz, LivenessCoversActualReads) {
  // Soundness spot-check: every variable the interpreter actually reads
  // before writing must be in the analysis' input set.
  const PointsTo pt(fn_);
  const Liveness live(fn_, pt);
  const std::vector<VarId> input = live.input_set();

  // Two runs with different values for a candidate variable: if changing
  // an out-of-input-set param changes any observable output, liveness was
  // wrong. (Weak but effective differential probe.)
  for (VarId p : fn_.params()) {
    if (fn_.var(p).kind != VarKind::kScalar) continue;
    const bool in_input =
        std::find(input.begin(), input.end(), p) != input.end();
    if (in_input) continue;  // nothing to check

    Memory m1 = fuzz_memory(fn_, seed_);
    Memory m2 = fuzz_memory(fn_, seed_);
    m2.scalar(p) = m1.scalar(p) + 17.0;  // perturb a "dead-in" param
    Interpreter(fn_).run(m1);
    Interpreter(fn_).run(m2);
    m2.scalar(p) = m1.scalar(p);  // ignore the param slot itself
    for (VarId q : fn_.params()) {
      if (fn_.var(q).kind == VarKind::kScalar && q != p) {
        EXPECT_DOUBLE_EQ(m1.scalar(q), m2.scalar(q)) << "seed " << seed_;
      }
      if (fn_.var(q).kind == VarKind::kArray) {
        EXPECT_EQ(m1.array(q), m2.array(q)) << "seed " << seed_;
      }
    }
  }
}

TEST_P(AnalysisFuzz, RangeAnalysisWrittenRangesAreSound) {
  // Every index the interpreter actually stores to must lie within the
  // analysis' written range (or the range must be unbounded).
  std::map<VarId, Interval> bounds;
  Memory mem = fuzz_memory(fn_, seed_);
  for (VarId p : fn_.params())
    if (fn_.var(p).kind == VarKind::kScalar)
      bounds[p] = Interval::constant(mem.scalar(p));
  const RangeAnalysis ranges(fn_, bounds);

  InterpreterOptions opts;
  std::vector<std::string> violations;
  opts.write_hook = [&](VarId array, std::size_t index, double) {
    const auto it = ranges.written_ranges().find(array);
    if (it == ranges.written_ranges().end()) {
      violations.push_back("write to array without range entry");
      return;
    }
    if (!it->second.bounded) return;
    if (index < it->second.lo || index > it->second.hi)
      violations.push_back(
          fn_.var(array).name + "[" + std::to_string(index) +
          "] outside [" + std::to_string(it->second.lo) + ", " +
          std::to_string(it->second.hi) + "]");
  };
  Interpreter(fn_, opts).run(mem);
  EXPECT_TRUE(violations.empty())
      << "seed " << seed_ << ": " << violations.front();
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, AnalysisFuzz,
                         ::testing::Range(1, 31));

}  // namespace
}  // namespace peak::ir
