#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/thread_pool.hpp"

namespace peak::support {
namespace {

/// Determinism stress tests for ThreadPool::slotted_for — the schedule
/// batched evaluation rides on. The item → slot mapping, the per-slot
/// item order, and the choice of rethrown exception must all be pure
/// functions of (n, slots), independent of worker interleaving.

TEST(SlottedFor, AssignsItemsToSlotsByModulusInOrder) {
  ThreadPool pool(4);
  constexpr std::size_t kItems = 37;
  constexpr std::size_t kSlots = 4;
  // One sequence per slot; slots never run concurrently with themselves,
  // so per-slot vectors need no locking.
  std::vector<std::vector<std::size_t>> per_slot(kSlots);
  pool.slotted_for(kItems, kSlots, [&](std::size_t i, std::size_t slot) {
    per_slot[slot].push_back(i);
  });
  for (std::size_t s = 0; s < kSlots; ++s) {
    std::vector<std::size_t> expected;
    for (std::size_t i = s; i < kItems; i += kSlots) expected.push_back(i);
    EXPECT_EQ(per_slot[s], expected) << "slot " << s;
  }
}

TEST(SlottedFor, EveryItemRunsExactlyOnceUnderContention) {
  ThreadPool pool(8);
  for (int rep = 0; rep < 20; ++rep) {
    constexpr std::size_t kItems = 101;
    std::vector<std::atomic<int>> runs(kItems);
    pool.slotted_for(kItems, 8, [&](std::size_t i, std::size_t slot) {
      EXPECT_EQ(slot, i % 8);
      runs[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kItems; ++i)
      ASSERT_EQ(runs[i].load(), 1) << "item " << i << " rep " << rep;
  }
}

TEST(SlottedFor, ResultsIndependentOfSlotAndPoolWidth) {
  // A pure per-item computation must produce the same result vector for
  // every (pool width, slot count) combination — the property that makes
  // batch-merge ordering equal to serial ordering.
  constexpr std::size_t kItems = 64;
  auto run = [&](unsigned pool_width, std::size_t slots) {
    ThreadPool pool(pool_width);
    std::vector<std::uint64_t> out(kItems);
    pool.slotted_for(kItems, slots, [&](std::size_t i, std::size_t) {
      std::uint64_t v = i;
      for (int k = 0; k < 1000; ++k) v = v * 6364136223846793005ULL + i;
      out[i] = v;
    });
    return out;
  };
  const std::vector<std::uint64_t> reference = run(1, 1);
  EXPECT_EQ(run(2, 2), reference);
  EXPECT_EQ(run(4, 4), reference);
  EXPECT_EQ(run(8, 3), reference);
  EXPECT_EQ(run(4, 64), reference);
}

TEST(SlottedFor, RethrowsLowestItemIndexException) {
  ThreadPool pool(4);
  // Items 5, 12, and 31 throw; every repetition must surface item 5's
  // exception regardless of which worker hit which failure first, and
  // every non-throwing item must still have run.
  for (int rep = 0; rep < 20; ++rep) {
    std::vector<std::atomic<int>> runs(40);
    std::string what;
    try {
      pool.slotted_for(40, 4, [&](std::size_t i, std::size_t) {
        runs[i].fetch_add(1, std::memory_order_relaxed);
        if (i == 5 || i == 12 || i == 31)
          throw std::runtime_error("item " + std::to_string(i));
      });
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      what = e.what();
    }
    EXPECT_EQ(what, "item 5") << "rep " << rep;
    for (std::size_t i = 0; i < 40; ++i)
      ASSERT_EQ(runs[i].load(), 1) << "item " << i;
  }
}

TEST(SlottedFor, ClampsSlotsAndHandlesEmptyRange) {
  ThreadPool pool(2);
  bool ran = false;
  pool.slotted_for(0, 4, [&](std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
  // More slots than items: slot index never exceeds n - 1.
  std::vector<std::size_t> slots_seen;
  std::mutex mu;
  pool.slotted_for(3, 16, [&](std::size_t i, std::size_t slot) {
    std::lock_guard lock(mu);
    EXPECT_EQ(slot, i);  // clamped to 3 slots, i % 3 == i
    slots_seen.push_back(slot);
  });
  EXPECT_EQ(slots_seen.size(), 3u);
}

}  // namespace
}  // namespace peak::support
