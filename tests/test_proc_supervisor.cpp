#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "proc/supervisor.hpp"
#include "proc/worker_table.hpp"
#include "support/shutdown.hpp"

namespace peak::proc {
namespace {

using namespace std::chrono_literals;

/// Policies for raw-task tests: throwaway supervisors that should not
/// publish rows to the global worker table, with timings tightened so
/// watchdog paths run in milliseconds instead of the production seconds.
SupervisorPolicy test_policy(std::size_t workers) {
  SupervisorPolicy policy;
  policy.workers = workers;
  policy.update_worker_table = false;
  policy.heartbeat_interval = 10ms;
  policy.stall_timeout = 2000ms;
  policy.term_grace = 100ms;
  return policy;
}

TEST(Supervisor, RunsTasksInOrderAcrossWorkers) {
  Supervisor sup(
      [](std::size_t task, std::size_t) {
        return "result-" + std::to_string(task);
      },
      test_policy(3));
  const std::vector<TaskOutcome> outcomes = sup.run(10);
  ASSERT_EQ(outcomes.size(), 10u);
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    EXPECT_TRUE(outcomes[i].ok) << i;
    EXPECT_EQ(outcomes[i].payload, "result-" + std::to_string(i));
    EXPECT_EQ(outcomes[i].attempts, 1u);
    EXPECT_TRUE(outcomes[i].failures.empty());
  }
  EXPECT_EQ(sup.stats().spawned, 3u);
  EXPECT_EQ(sup.stats().respawned, 0u);
  EXPECT_EQ(sup.stats().tasks_failed, 0u);
}

TEST(Supervisor, MoreWorkersThanTasksIsFine) {
  Supervisor sup(
      [](std::size_t task, std::size_t) { return std::to_string(task); },
      test_policy(8));
  const std::vector<TaskOutcome> outcomes = sup.run(2);
  ASSERT_EQ(outcomes.size(), 2u);
  EXPECT_TRUE(outcomes[0].ok);
  EXPECT_TRUE(outcomes[1].ok);
}

TEST(Supervisor, ZeroTasksReturnsEmpty) {
  Supervisor sup([](std::size_t, std::size_t) { return std::string(); },
                 test_policy(2));
  EXPECT_TRUE(sup.run(0).empty());
}

TEST(Supervisor, TransientAbortIsRetriedOnAFreshWorker) {
  // Task 1 abort()s on its first attempt only; the respawned worker's
  // retry succeeds. The outcome carries the classified failure history.
  Supervisor sup(
      [](std::size_t task, std::size_t attempt) {
        if (task == 1 && attempt == 0) std::abort();
        return "ok-" + std::to_string(task);
      },
      test_policy(2));
  const std::vector<TaskOutcome> outcomes = sup.run(4);
  ASSERT_EQ(outcomes.size(), 4u);
  for (const TaskOutcome& outcome : outcomes) EXPECT_TRUE(outcome.ok);
  EXPECT_EQ(outcomes[1].attempts, 2u);
  ASSERT_EQ(outcomes[1].failures.size(), 1u);
  EXPECT_EQ(outcomes[1].failures[0].cls, ExitClass::kSignal);
  EXPECT_EQ(outcomes[1].failures[0].detail, SIGABRT);
  EXPECT_EQ(outcomes[1].failures[0].signature,
            "signal:" + std::to_string(SIGABRT));
  EXPECT_GE(outcomes[1].failures[0].burned_wall_us, 0.0);
  EXPECT_EQ(sup.stats().respawned, 1u);
  EXPECT_EQ(sup.stats().exits_signal, 1u);
  EXPECT_EQ(sup.stats().tasks_retried, 1u);
  EXPECT_EQ(sup.stats().tasks_failed, 0u);
}

TEST(Supervisor, DeterministicCrasherFailsWithIdenticalSignatures) {
  Supervisor sup(
      [](std::size_t task, std::size_t) {
        if (task == 0) std::abort();
        return std::string("fine");
      },
      test_policy(2));
  const std::vector<TaskOutcome> outcomes = sup.run(3);
  ASSERT_EQ(outcomes.size(), 3u);
  EXPECT_FALSE(outcomes[0].ok);
  EXPECT_EQ(outcomes[0].attempts, test_policy(2).max_task_attempts);
  ASSERT_EQ(outcomes[0].failures.size(),
            test_policy(2).max_task_attempts);
  EXPECT_TRUE(outcomes[0].failures_identical());
  // The other tasks were unaffected by their neighbour's crashes.
  EXPECT_TRUE(outcomes[1].ok);
  EXPECT_TRUE(outcomes[2].ok);
  EXPECT_EQ(sup.stats().tasks_failed, 1u);
}

TEST(Supervisor, TaskExceptionClassifiesAsNonzeroExit) {
  Supervisor sup(
      [](std::size_t task, std::size_t) -> std::string {
        if (task == 0) throw std::runtime_error("boom");
        return "fine";
      },
      test_policy(1));
  const std::vector<TaskOutcome> outcomes = sup.run(2);
  EXPECT_FALSE(outcomes[0].ok);
  ASSERT_FALSE(outcomes[0].failures.empty());
  EXPECT_EQ(outcomes[0].failures[0].cls, ExitClass::kNonzero);
  EXPECT_EQ(outcomes[0].failures[0].detail, kExitTaskError);
  EXPECT_EQ(outcomes[0].failures[0].signature,
            "exit:" + std::to_string(kExitTaskError));
  EXPECT_TRUE(outcomes[1].ok);
}

TEST(Supervisor, ExplicitExitStatusClassifiesAsNonzero) {
  Supervisor sup(
      [](std::size_t, std::size_t) -> std::string {
        ::_exit(7);
      },
      test_policy(1));
  const std::vector<TaskOutcome> outcomes = sup.run(1);
  EXPECT_FALSE(outcomes[0].ok);
  ASSERT_FALSE(outcomes[0].failures.empty());
  EXPECT_EQ(outcomes[0].failures[0].cls, ExitClass::kNonzero);
  EXPECT_EQ(outcomes[0].failures[0].detail, 7);
  EXPECT_TRUE(outcomes[0].failures_identical());
}

TEST(Supervisor, WatchdogKillsAStalledWorkerAsTimeout) {
  SupervisorPolicy policy = test_policy(1);
  policy.stall_timeout = 150ms;
  policy.max_task_attempts = 2;
  Supervisor sup(
      [](std::size_t, std::size_t) -> std::string {
        for (;;) ::pause();  // never returns, heartbeats keep flowing
      },
      policy);
  const std::vector<TaskOutcome> outcomes = sup.run(1);
  EXPECT_FALSE(outcomes[0].ok);
  ASSERT_EQ(outcomes[0].failures.size(), 2u);
  EXPECT_EQ(outcomes[0].failures[0].cls, ExitClass::kTimeout);
  EXPECT_EQ(outcomes[0].failures[0].signature, "timeout");
  EXPECT_TRUE(outcomes[0].failures_identical());
  EXPECT_GE(sup.stats().term_kills + sup.stats().kill_kills, 1u);
  EXPECT_GE(sup.stats().exits_timeout, 2u);
}

TEST(Supervisor, WatchdogEscalatesToSigkillWhenSigtermIsBlocked) {
  SupervisorPolicy policy = test_policy(1);
  policy.stall_timeout = 150ms;
  policy.term_grace = 50ms;
  policy.max_task_attempts = 1;
  Supervisor sup(
      [](std::size_t, std::size_t) -> std::string {
        ::signal(SIGTERM, SIG_IGN);  // a wedged worker that won't die nicely
        for (;;) ::pause();
      },
      policy);
  const std::vector<TaskOutcome> outcomes = sup.run(1);
  EXPECT_FALSE(outcomes[0].ok);
  ASSERT_FALSE(outcomes[0].failures.empty());
  EXPECT_EQ(outcomes[0].failures[0].cls, ExitClass::kTimeout);
  EXPECT_GE(sup.stats().kill_kills, 1u);
}

// Sanitizer runtimes mmap huge shadow regions that RLIMIT_AS forbids,
// so the forked child dies in the runtime before the allocation hog
// ever runs — the classification under test is unreachable there.
#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define PEAK_NO_RLIMIT_AS 1
#endif
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define PEAK_NO_RLIMIT_AS 1
#endif

TEST(Supervisor, AddressSpaceLimitClassifiesAsOom) {
#ifdef PEAK_NO_RLIMIT_AS
  GTEST_SKIP() << "RLIMIT_AS is incompatible with sanitizer shadow memory";
#endif
  SupervisorPolicy policy = test_policy(1);
  policy.limits.address_space_bytes = 256u << 20;
  policy.max_task_attempts = 1;
  Supervisor sup(
      [](std::size_t, std::size_t) -> std::string {
        std::vector<std::string> hog;
        for (;;) hog.emplace_back(8u << 20, 'x');
      },
      policy);
  const std::vector<TaskOutcome> outcomes = sup.run(1);
  EXPECT_FALSE(outcomes[0].ok);
  ASSERT_FALSE(outcomes[0].failures.empty());
  EXPECT_EQ(outcomes[0].failures[0].cls, ExitClass::kOom);
  EXPECT_EQ(outcomes[0].failures[0].signature, "oom");
  EXPECT_EQ(sup.stats().exits_oom, 1u);
}

TEST(Supervisor, CpuLimitKillsASpinningWorkerAsTimeout) {
  SupervisorPolicy policy = test_policy(1);
  policy.limits.cpu_seconds = 1;
  policy.stall_timeout = 60'000ms;  // the watchdog must NOT be the killer
  policy.max_task_attempts = 1;
  Supervisor sup(
      [](std::size_t, std::size_t) -> std::string {
        volatile std::uint64_t sink = 0;
        for (;;) sink = sink + 1;
      },
      policy);
  const std::vector<TaskOutcome> outcomes = sup.run(1);
  EXPECT_FALSE(outcomes[0].ok);
  ASSERT_FALSE(outcomes[0].failures.empty());
  EXPECT_EQ(outcomes[0].failures[0].cls, ExitClass::kTimeout);
  EXPECT_EQ(sup.stats().exits_timeout, 1u);
}

TEST(Supervisor, ShutdownRequestMidRoundThrowsAfterReapingTheFleet) {
  support::reset_shutdown();
  Supervisor sup(
      [](std::size_t task, std::size_t) {
        if (task >= 2) ::usleep(50'000);
        return std::to_string(task);
      },
      test_policy(2));
  std::thread trigger([] {
    ::usleep(20'000);
    support::request_shutdown();
  });
  EXPECT_THROW(sup.run(64), support::ShutdownRequested);
  trigger.join();
  support::reset_shutdown();
}

TEST(TaskOutcomeFailures, IdenticalRequiresAtLeastOneAndUniformity) {
  TaskOutcome outcome;
  EXPECT_FALSE(outcome.failures_identical());  // no failures at all
  WorkerFailure a;
  a.signature = "signal:6";
  outcome.failures.push_back(a);
  EXPECT_TRUE(outcome.failures_identical());
  WorkerFailure b;
  b.signature = "timeout";
  outcome.failures.push_back(b);
  EXPECT_FALSE(outcome.failures_identical());
}

TEST(ExitClassNames, CoverEveryClass) {
  EXPECT_STREQ(to_string(ExitClass::kClean), "clean");
  EXPECT_STREQ(to_string(ExitClass::kSignal), "signal");
  EXPECT_STREQ(to_string(ExitClass::kTimeout), "timeout");
  EXPECT_STREQ(to_string(ExitClass::kOom), "oom");
  EXPECT_STREQ(to_string(ExitClass::kNonzero), "nonzero");
}

TEST(WorkerTableRows, TracksSpawnRespawnAndFailureHistory) {
  WorkerTable table;
  table.spawned(0, 100, /*respawn=*/false);
  table.running(0, 7);
  auto rows = table.snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].pid, 100);
  EXPECT_EQ(rows[0].state, "running");
  EXPECT_EQ(rows[0].current_task, 7u);

  table.died(0, "signal:11");
  table.spawned(0, 101, /*respawn=*/true);
  rows = table.snapshot();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0].pid, 101);
  EXPECT_EQ(rows[0].respawns, 1u);
  EXPECT_EQ(rows[0].last_failure, "signal:11");
  EXPECT_EQ(rows[0].state, "idle");

  table.finished(0, 9);
  rows = table.snapshot();
  EXPECT_EQ(rows[0].state, "done");
  EXPECT_EQ(rows[0].tasks_done, 9u);
  EXPECT_TRUE(table.live_pids().empty());

  table.clear();
  EXPECT_TRUE(table.snapshot().empty());
}

TEST(WorkerTableRows, JsonListsWorkersWithCounts) {
  WorkerTable table;
  table.spawned(0, 100, false);
  table.running(0, 3);
  table.spawned(1, 101, false);
  const std::string json = table.json();
  EXPECT_NE(json.find("\"workers\":["), std::string::npos);
  EXPECT_NE(json.find("\"slot\":0"), std::string::npos);
  EXPECT_NE(json.find("\"state\":\"running\""), std::string::npos);
  EXPECT_NE(json.find("\"slot\":1"), std::string::npos);
  const auto pids = table.live_pids();
  ASSERT_EQ(pids.size(), 2u);
}

}  // namespace
}  // namespace peak::proc
