#include <gtest/gtest.h>

#include <vector>

#include "support/rng.hpp"

namespace peak::support {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += a.next_u64() == b.next_u64();
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsIndependentOfParentState) {
  Rng parent(42);
  const Rng fork1 = parent.fork("stream-a");
  // Consuming the parent must not change what a fork would have produced.
  Rng parent2(42);
  (void)parent2;
  Rng parent3(42);
  for (int i = 0; i < 10; ++i) parent3.next_u64();
  // fork is computed from state, so fork after consumption differs — but
  // two forks from identical states with the same label agree.
  Rng p1(7), p2(7);
  Rng f1 = p1.fork("x"), f2 = p2.fork("x");
  for (int i = 0; i < 20; ++i) EXPECT_EQ(f1.next_u64(), f2.next_u64());
  // Different labels give different streams.
  Rng p3(7);
  Rng f3 = p3.fork("y");
  Rng p4(7);
  Rng f4 = p4.fork("x");
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += f3.next_u64() == f4.next_u64();
  EXPECT_LT(equal, 2);
  (void)fork1;
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(10);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= v == 3;
    saw_hi |= v == 7;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMoments) {
  Rng rng(11);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(12);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(Rng, LognormalMeanNearOne) {
  Rng rng(13);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += rng.lognormal(0.05);
  // E[lognormal(sigma)] = exp(sigma^2/2) ≈ 1.00125 for sigma = 0.05.
  EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(StableHash, DeterministicAndSpread) {
  EXPECT_EQ(stable_hash("peak"), stable_hash("peak"));
  EXPECT_NE(stable_hash("peak"), stable_hash("peek"));
  EXPECT_NE(stable_hash(""), stable_hash("a"));
}

}  // namespace
}  // namespace peak::support
