#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <memory>
#include <string>

#include "core/profile.hpp"
#include "core/tuning_driver.hpp"
#include "support/shutdown.hpp"
#include "workloads/workload.hpp"

namespace peak::support {
namespace {

/// Every test leaves the process-wide flag clean for its neighbours.
class ShutdownTest : public ::testing::Test {
protected:
  void SetUp() override { reset_shutdown(); }
  void TearDown() override { reset_shutdown(); }
};

TEST_F(ShutdownTest, CheckShutdownIsANoOpUntilRequested) {
  EXPECT_FALSE(shutdown_requested());
  EXPECT_EQ(shutdown_signal(), 0);
  EXPECT_NO_THROW(check_shutdown());
}

TEST_F(ShutdownTest, RequestShutdownMakesCheckThrowWithSigint) {
  request_shutdown();
  EXPECT_TRUE(shutdown_requested());
  EXPECT_EQ(shutdown_signal(), SIGINT);
  try {
    check_shutdown();
    FAIL() << "check_shutdown did not throw";
  } catch (const ShutdownRequested& e) {
    EXPECT_EQ(e.signal(), SIGINT);
  }
  // Still pending until reset: graceful unwinding may poll repeatedly.
  EXPECT_THROW(check_shutdown(), ShutdownRequested);
  reset_shutdown();
  EXPECT_NO_THROW(check_shutdown());
}

TEST_F(ShutdownTest, FirstRealSignalSetsTheFlagGracefully) {
  // In a forked child (signals aimed at the test runner would be rude):
  // install the handlers, raise SIGINT once, and verify the process is
  // still alive with the flag set.
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    install_shutdown_handlers();
    ::raise(SIGINT);
    ::usleep(10'000);
    const bool ok = shutdown_requested() && shutdown_signal() == SIGINT;
    ::_exit(ok ? 0 : 1);
  }
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

TEST_F(ShutdownTest, SecondSignalForceExitsWithConventionalStatus) {
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    install_shutdown_handlers();
    ::raise(SIGINT);   // first: graceful flag
    ::raise(SIGINT);   // second: _exit(128 + SIGINT)
    ::_exit(99);       // unreachable if escalation works
  }
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 128 + SIGINT);
}

TEST_F(ShutdownTest, SigtermIsHandledLikeSigint) {
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    install_shutdown_handlers();
    ::raise(SIGTERM);
    ::usleep(10'000);
    const bool ok = shutdown_requested() && shutdown_signal() == SIGTERM;
    ::raise(SIGTERM);  // escalation works for SIGTERM too
    ::_exit(ok ? 98 : 1);
  }
  int status = 0;
  while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
  }
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 128 + SIGTERM);
}

/// Interrupting a journaled tune and resuming it must land on the
/// bit-identical outcome — the acceptance contract behind the CLI's
/// "resume with: peak tune ... --resume" hint.
TEST_F(ShutdownTest, InterruptedJournaledTuneResumesBitIdentical) {
  const sim::MachineModel machine = sim::sparc2();
  const sim::FlagEffectModel effects(search::gcc33_o3_space());
  const auto workload = workloads::make_workload("SWIM");
  const workloads::Trace train =
      workload->trace(workloads::DataSet::kTrain, 42);
  const core::ProfileData profile =
      core::profile_workload(*workload, train, machine);

  const auto tune = [&](const core::DriverOptions& options) {
    core::TuningDriver driver(*workload, profile, train, machine, effects,
                              options);
    return driver.tune(rating::Method::kCBR);
  };

  core::DriverOptions plain;
  plain.search_threads = 1;
  const core::TuningOutcome baseline = tune(plain);

  const std::string path = ::testing::TempDir() + "peak_shutdown.jsonl";
  std::remove(path.c_str());

  // A shutdown already pending when the tune starts: the driver must
  // unwind via ShutdownRequested at its first safe boundary, leaving at
  // most a valid journal prefix behind.
  core::DriverOptions interrupted;
  interrupted.search_threads = 1;
  interrupted.fault.journal_path = path;
  request_shutdown();
  EXPECT_THROW(tune(interrupted), ShutdownRequested);
  reset_shutdown();

  // Resume from whatever the interrupted run left: bit-identical end
  // state, as if the interruption never happened.
  core::DriverOptions resume;
  resume.search_threads = 1;
  resume.fault.journal_path = path;
  resume.fault.resume = true;
  EXPECT_EQ(tune(resume), baseline);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace peak::support
